//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the `proptest` API its property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, integer
//! range and tuple strategies, [`collection::vec`], [`strategy::Just`],
//! [`prop_oneof!`], the `prop_assert*` / [`prop_assume!`] macros, and
//! [`test_runner::Config`] (`ProptestConfig`).
//!
//! Semantics: each test runs `cases` deterministic randomized cases.
//! Failing cases panic with the case number so they can be replayed (the
//! RNG is seeded from the case number alone).  There is **no shrinking** —
//! a deliberate simplification; failures report the generated values via
//! the assertion message instead.

/// Deterministic RNG and per-test configuration.
pub mod test_runner {
    /// SplitMix64 generator driving all value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case, seeded by case number.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (which must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Per-`proptest!` configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of randomized cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; this stand-in runs fewer because
            // the repository's suites sort hundreds of rows per case and
            // run in debug CI.
            Config { cases: 64 }
        }
    }

    /// Why a test case did not complete normally.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// An assertion failed.
        Fail(String),
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a [`TestRng`].
    ///
    /// Unlike upstream there is no value tree / shrinking: a strategy is
    /// just a deterministic function of the RNG state.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from boxed alternatives; panics when empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Permitted element counts for [`fn@vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of `element`-generated values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The customary `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a `proptest!` body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Reject the current case's inputs (the case is retried, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($option) ),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        // The `#[test]` attribute comes with the user's `$meta` (upstream
        // proptest requires it written inside the macro too).
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut ran: u32 = 0;
            let mut case: u64 = 0;
            let max_attempts = (config.cases as u64) * 20 + 100;
            while ran < config.cases && case < max_attempts {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                case += 1;
                $(
                    let $pat =
                        $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                )+
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest case {} failed: {}",
                        case - 1,
                        msg
                    ),
                }
            }
            assert!(
                ran == config.cases,
                "too many rejected cases ({} ran of {})",
                ran,
                config.cases
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            let v = (1u64..5).new_value(&mut rng);
            assert!((1..5).contains(&v));
            let w = (0usize..=4).new_value(&mut rng);
            assert!(w <= 4);
        }
        let vs = crate::collection::vec(0u64..6, 2..10).new_value(&mut rng);
        assert!((2..10).contains(&vs.len()));
        assert!(vs.iter().all(|&x| x < 6));
    }

    #[test]
    fn map_tuple_just_and_union() {
        let mut rng = TestRng::for_case(5);
        let s = (0u64..3, 0u64..3).prop_map(|(a, b)| a + b);
        for _ in 0..50 {
            assert!(s.new_value(&mut rng) <= 4);
        }
        let u = prop_oneof![Just(1u32), Just(2u32)];
        for _ in 0..50 {
            let v = u.new_value(&mut rng);
            assert!(v == 1 || v == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, assume, and asserts all wire up.
        #[test]
        fn macro_smoke((a, b) in (0u64..10, 0u64..10), n in 1usize..4) {
            prop_assume!(a != 9);
            prop_assert!(a < 10, "a out of range: {}", a);
            prop_assert_eq!(n.min(3), n);
            prop_assert_ne!(a, 10);
            let _ = b;
        }
    }
}
