//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand` 0.8 API its tests, benches, and workload
//! generators actually use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], and [`Rng::gen_range`] over half-open integer ranges.
//!
//! The generator is SplitMix64 — statistically solid for test-data
//! synthesis and fully deterministic per seed, which is all the repository
//! relies on (every workload is seeded).  It makes no attempt at
//! reproducing upstream `rand`'s value sequences or its wider API.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//! let mut rng = StdRng::seed_from_u64(42);
//! let a = rng.gen_range(0..10u64);
//! assert!(a < 10);
//! let b: u32 = rng.gen();
//! let mut rng2 = StdRng::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(0..10u64), a);
//! let _ = b;
//! ```

/// Concrete generators.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-advance once so seed 0 does not start at state 0.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64_impl();
        StdRng {
            state: rng.state ^ seed.rotate_left(17),
        }
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Build a value from one raw 64-bit draw.
    fn from_u64(raw: u64) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_u64(raw: u64) -> u64 {
        raw
    }
}

impl Standard for u32 {
    #[inline]
    fn from_u64(raw: u64) -> u32 {
        (raw >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn from_u64(raw: u64) -> usize {
        raw as usize
    }
}

impl Standard for bool {
    #[inline]
    fn from_u64(raw: u64) -> bool {
        raw & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform-ish draw from `[lo, hi)`; panics when the range is empty.
    fn sample(lo: Self, hi: Self, raw: u64) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`] (half-open and inclusive).
pub trait SampleRange<T> {
    /// Draw a value from the range using one raw 64-bit draw.
    fn sample_from(self, raw: u64) -> T;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(lo: $t, hi: $t, raw: u64) -> $t {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi - lo) as u64;
                lo + (raw % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, raw: u64) -> $t {
                <$t as SampleUniform>::sample(self.start, self.end, raw)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, raw: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (raw % span.max(1)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(lo: $t, hi: $t, raw: u64) -> $t {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((raw % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, raw: u64) -> $t {
                <$t as SampleUniform>::sample(self.start, self.end, raw)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, raw: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                lo.wrapping_add((raw % span.max(1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Random-value methods (subset of `rand::Rng`).
pub trait Rng {
    /// One raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A value of any [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A value uniform in `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }

    /// A biased coin flip.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_usize_and_u32() {
        let mut rng = StdRng::seed_from_u64(2);
        let _: u32 = rng.gen();
        let _: usize = rng.gen_range(0..5usize);
    }
}
