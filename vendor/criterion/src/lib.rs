//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal wall-clock harness exposing the `criterion` 0.5 API subset
//! its benches use: [`Criterion::benchmark_group`], group knobs
//! ([`BenchmarkGroup::sample_size`], [`BenchmarkGroup::throughput`]),
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement strategy: warm up briefly, auto-scale the per-sample
//! iteration count to a target sample duration, take `sample_size`
//! samples, and report the median per-iteration time (plus throughput if
//! configured).  No statistics beyond that — enough to compare variants
//! in the same process run, which is all this repository's benches do.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle (one per `criterion_group!` target).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// Units processed per benchmark iteration, reported as a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Run a benchmark against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.id);
        match bencher.median() {
            None => println!("{label:<56} (no measurement)"),
            Some(per_iter) => {
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  {:>12.0} elem/s", n as f64 / per_iter.as_secs_f64())
                    }
                    Throughput::Bytes(n) => {
                        format!("  {:>12.0} B/s", n as f64 / per_iter.as_secs_f64())
                    }
                });
                println!(
                    "{label:<56} {:>12}{}",
                    format_duration(per_iter),
                    rate.unwrap_or_default()
                );
            }
        }
    }

    /// Finish the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Passed to every benchmark closure; drives the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: warm-up, auto-scaled iteration counts, then
    /// `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-sample iteration scaling: target ~5 ms samples.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// Bundle benchmark functions into a runner, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = false;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn format_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
    }
}
