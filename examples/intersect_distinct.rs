//! Figures 5 and 6: "select B from T1 intersect select B from T2",
//! hash-based plan vs sort-based plan.
//!
//! Prints both plan shapes, runs both at a laptop-friendly scale with the
//! paper's 10:1 input-to-memory ratio, and reports wall time, spill
//! volume, and comparison counts.  Scale with an argument:
//! `cargo run --release --example intersect_distinct -- 2000000`

use std::sync::Arc;
use std::time::Instant;

use ovc_baseline::hash_intersect_distinct;
use ovc_bench::workload::intersect_tables;
use ovc_core::Stats;
use ovc_exec::plans::{sort_intersect_distinct, IntersectConfig};
use ovc_sort::MemoryRunStorage;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500_000);
    let mem = n / 10;

    println!("=== Figure 5: the two query plans ===\n");
    println!("hash-based plan                sort-based plan");
    println!("---------------                ---------------");
    println!("      intersect                      intersect");
    println!("     (hash join)                   (merge join, consumes OVCs)");
    println!("      /       \\                      /       \\");
    println!(" hash agg   hash agg          in-sort agg   in-sort agg");
    println!(" (dedup)    (dedup)           (dedup via offset == arity)");
    println!("    |           |                  |           |");
    println!("  scan T1    scan T2            scan T1     scan T2");
    println!();
    println!("blocking operators: 3 (hash)   vs   2 (sort)\n");

    println!("=== Figure 6: performance at N = {n} rows/table, memory = {mem} rows ===\n");
    let (t1, t2) = intersect_tables(n, 42);

    // Hash-based plan.
    let hs = Stats::new_shared();
    let start = Instant::now();
    let hash_out = hash_intersect_distinct(t1.clone(), t2.clone(), mem, &hs);
    let hash_time = start.elapsed();

    // Sort-based plan.
    let ss = Stats::new_shared();
    let mut s1 = MemoryRunStorage::new(Arc::clone(&ss));
    let mut s2 = MemoryRunStorage::new(Arc::clone(&ss));
    let cfg = IntersectConfig {
        key_len: 1,
        memory_rows: mem,
        fan_in: 128,
    };
    let start = Instant::now();
    let sort_out = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &ss);
    let sort_time = start.elapsed();

    assert_eq!(hash_out.len(), sort_out.len(), "plans must agree");

    println!("result rows: {}\n", sort_out.len());
    println!("{:<28} {:>14} {:>14}", "", "hash plan", "sort plan");
    println!(
        "{:<28} {:>12.1?} {:>12.1?}",
        "wall time", hash_time, sort_time
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "rows spilled",
        hs.rows_spilled(),
        ss.rows_spilled()
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "rows spilled / input row",
        format!("{:.2}", hs.rows_spilled() as f64 / (2 * n) as f64),
        format!("{:.2}", ss.rows_spilled() as f64 / (2 * n) as f64)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "column comparisons",
        hs.col_value_cmps(),
        ss.col_value_cmps()
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "code comparisons",
        hs.ovc_cmps(),
        ss.ovc_cmps()
    );
    println!();
    println!("\"In a hash-based plan, duplicate removal and join spill to temporary");
    println!("storage such that many rows are spilled twice. In contrast, the");
    println!("sort-based plan spills each input row only once.\" — Section 6");
}
