//! Quickstart: offset-value codes on the paper's own running example.
//!
//! Reproduces Table 1 (code derivation in a sorted stream), Table 3
//! (codes after a filter), and shows the basic sort → dedup → group
//! pipeline carrying codes between operators.
//!
//! Run with: `cargo run --release --example quickstart`

use ovc_core::derive::derive_codes;
use ovc_core::desc::{derive_desc_code, DescOvc};
use ovc_core::{table1, Row, Stats, VecStream};
use ovc_exec::{Aggregate, Dedup, Filter, GroupAggregate};

fn main() {
    println!("=== Table 1: offset-value codes in a sorted stream ===\n");
    let rows = table1::rows();
    let asc = derive_codes(&rows, table1::ARITY);
    let stats = Stats::default();

    println!(
        "{:<16} {:>6} {:>9} {:>8} {:>9} {:>8}",
        "row", "offset", "desc-code", "", "asc-code", ""
    );
    println!(
        "{:<16} {:>6} {:>9} {:>8} {:>9} {:>8}",
        "", "", "(paper)", "", "(paper)", "(u64)"
    );
    let mut prev: Option<&Row> = None;
    for (row, code) in rows.iter().zip(&asc) {
        let desc = match prev {
            None => DescOvc::initial(row.key(4)),
            Some(p) => derive_desc_code(p.key(4), row.key(4), &stats),
        };
        println!(
            "{:<16} {:>6} {:>9} {:>8} {:>9} {:#8x}",
            format!("{:?}", row.cols()),
            code.offset(4),
            desc.paper_decimal(4, table1::DOMAIN),
            "",
            code.paper_decimal(),
            code.raw(),
        );
        prev = Some(row);
    }

    println!("\n=== Table 3: codes after a filter (keep first & last row) ===\n");
    let keep = [rows[0].clone(), rows[6].clone()];
    let input = VecStream::from_sorted_rows(rows.clone(), 4);
    for r in Filter::new(input, |row| keep.contains(row), Stats::new_shared()) {
        println!(
            "{:<16} asc-code {:>4}  (offset {})",
            format!("{:?}", r.row.cols()),
            r.code.paper_decimal(),
            r.code.offset(4)
        );
    }

    println!("\n=== Duplicate removal by code inspection ===\n");
    let input = VecStream::from_sorted_rows(rows.clone(), 4);
    let distinct: Vec<_> = Dedup::new(input).collect();
    println!(
        "{} rows in, {} rows out — the duplicate (5,9,2,7) was found by the\nsingle integer test `offset == arity`, no column comparisons.",
        rows.len(),
        distinct.len()
    );

    println!("\n=== Grouping on the first two columns ===\n");
    let input = VecStream::from_sorted_rows(rows, 4);
    for r in GroupAggregate::new(input, 2, vec![Aggregate::Count], Stats::new_shared()) {
        println!(
            "group {:?} -> count {}  (output code offset {})",
            r.row.key(2),
            r.row.cols()[2],
            r.code.offset(2)
        );
    }
    println!("\nGroup boundaries were detected by `offset < 2` on input codes —");
    println!("the mechanism Figure 4 of the paper benchmarks.");
}
