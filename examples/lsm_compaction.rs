//! The Napa scenario (Sections 1, 2, 7): a log-structured merge-forest
//! where "ingestion (run generation), compaction (merging), and query
//! processing … rely heavily on sorting and merging", all carrying
//! offset-value codes.
//!
//! Ingests batches into an LSM forest, lets stepped-merge compaction run,
//! then answers a grouped query over a merged scan — printing the
//! comparison budget at every stage.
//!
//! Run with: `cargo run --release --example lsm_compaction`

use std::sync::Arc;

use ovc_bench::workload::{table, TableSpec};
use ovc_core::Stats;
use ovc_exec::{Aggregate, GroupAggregate};
use ovc_storage::{LsmConfig, LsmForest};

fn main() {
    let batches: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let batch_rows = 10_000;
    let key_cols = 3;

    println!("=== LSM forest: ingest, compact, scan (the Napa workload) ===\n");
    let stats = Stats::new_shared();
    let mut forest = LsmForest::new(key_cols, LsmConfig { fanout: 4 }, Arc::clone(&stats));

    for i in 0..batches {
        let spec = TableSpec {
            rows: batch_rows,
            key_cols,
            payload_cols: 1,
            distinct_per_col: 16,
            seed: i as u64,
        };
        forest.ingest(table(spec));
    }
    let n = forest.len() as u64;
    let k = key_cols as u64;
    let after_ingest = stats.snapshot();
    println!("ingested {} rows in {} batches", n, batches);
    println!(
        "forest shape: {} levels, {} runs resident",
        forest.depth(),
        forest.run_count()
    );
    println!(
        "ingest+compaction column comparisons: {} ({:.2} x N*K; bound is depth+1 = {})",
        after_ingest.col_value_cmps,
        after_ingest.col_value_cmps as f64 / (n * k) as f64,
        forest.depth() + 1,
    );
    println!(
        "write amplification: {:.2} (rows spilled / rows ingested)\n",
        after_ingest.rows_spilled as f64 / n as f64
    );

    // Query processing: merged scan -> in-stream aggregation, both on codes.
    println!("query: select k1, k2, count(*) group by k1, k2\n");
    let scan = forest.scan();
    let before = stats.snapshot();
    let grouped = GroupAggregate::new(scan, 2, vec![Aggregate::Count], Arc::clone(&stats));
    let mut groups = 0usize;
    let mut max_count = 0u64;
    for g in grouped {
        groups += 1;
        max_count = max_count.max(g.row.cols()[2]);
    }
    let delta = stats.snapshot().since(&before);
    println!("groups: {groups}, largest group: {max_count}");
    println!(
        "scan+aggregate column comparisons: {} (<= N*K = {}), code comparisons: {}",
        delta.col_value_cmps,
        n * k,
        delta.ovc_cmps
    );

    // Major compaction collapses the forest to one run; the next scan is
    // a single cursor with stored codes — zero comparisons.
    let before = stats.snapshot();
    forest.major_compact();
    let delta = stats.snapshot().since(&before);
    println!(
        "\nmajor compaction: {} column comparisons for {} rows",
        delta.col_value_cmps, n
    );
    let before = stats.snapshot();
    let _ = forest.scan().count();
    let delta = stats.snapshot().since(&before);
    println!(
        "post-compaction scan: {} column comparisons (codes come from storage)",
        delta.col_value_cmps
    );
}
