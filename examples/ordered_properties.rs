//! The ordering/partitioning properties API, end to end:
//!
//! 1. a mixed `[c0 asc, c1 desc]` query planned and executed with
//!    direction-aware codes;
//! 2. a descending demand over an ascending-stored table satisfied by
//!    `Reverse` (opposite-order reuse) instead of a sort;
//! 3. a merge join bracketed with explicit `Exchange` nodes running
//!    partition-parallel, byte-identical to the serial plan.
//!
//! ```bash
//! cargo run --release --example ordered_properties -- 30000
//! ```

use std::time::Instant;

use ovc_repro::core::{Direction, OvcRow, Row, SortSpec, Stats};
use ovc_repro::plan::exec::{execute, ExecOptions};
use ovc_repro::plan::{Catalog, JoinType, LogicalPlan, Planner, PlannerConfig, Preference, Table};

fn rows(n: usize, domain: u64, seed: u64) -> Vec<Row> {
    use ovc_repro::bench::workload::{table, TableSpec};
    table(TableSpec {
        rows: n,
        key_cols: 2,
        payload_cols: 0,
        distinct_per_col: domain,
        seed,
    })
}

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000usize);

    // --- 1. Mixed-direction sort --------------------------------------
    let mut catalog = Catalog::new();
    catalog.register("t", Table::unsorted(rows(n, 1000, 42)));
    let spec = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]);
    let q = LogicalPlan::scan("t").sort_by(spec);
    let plan = Planner::new(
        &catalog,
        PlannerConfig::default().with_memory_rows(n / 10 + 1),
    )
    .plan(&q)
    .expect("plans");
    println!("--- mixed [c0 asc, c1 desc] sort ---\n{plan}");
    let stats = Stats::new_shared();
    let t0 = Instant::now();
    let out = execute(&plan, &catalog, &stats, &ExecOptions::default()).into_coded();
    println!(
        "rows: {}   wall: {:.1?}   col cmps: {}\n",
        out.len(),
        t0.elapsed(),
        stats.col_value_cmps()
    );

    // --- 2. Opposite-order reuse --------------------------------------
    let mut sorted = rows(n, 1000, 43);
    sorted.sort();
    catalog.register("asc_stored", Table::sorted(sorted, 2));
    let q = LogicalPlan::scan("asc_stored").sort_by(SortSpec::desc(2));
    let plan = Planner::new(&catalog, PlannerConfig::default())
        .plan(&q)
        .expect("plans");
    println!("--- descending demand over ascending storage ---\n{plan}");
    let stats = Stats::new_shared();
    let out = execute(&plan, &catalog, &stats, &ExecOptions::default()).into_coded();
    println!(
        "rows: {}   Reverse nodes: {}   SortOvc nodes: {}\n",
        out.len(),
        plan.count_op("Reverse"),
        plan.count_op("SortOvc")
    );

    // --- 3. Exchange-parallel merge join ------------------------------
    catalog.register("l", Table::unsorted(rows(n, (n / 4).max(2) as u64, 44)));
    catalog.register("r", Table::unsorted(rows(n, (n / 4).max(2) as u64, 45)));
    let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, JoinType::Inner);
    let base = PlannerConfig::default()
        .with_memory_rows(n / 10 + 1)
        .with_preference(Preference::ForceSortBased);
    let run = |cfg: PlannerConfig, label: &str| -> Vec<OvcRow> {
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        let stats = Stats::new_shared();
        let t0 = Instant::now();
        let out = execute(&plan, &catalog, &stats, &ExecOptions::default()).into_coded();
        println!("--- {label} ---\n{plan}");
        println!(
            "rows: {}   wall: {:.1?}   exchanges: {}\n",
            out.len(),
            t0.elapsed(),
            plan.exchanges().len()
        );
        out
    };
    let serial = run(base, "merge join, serial");
    let parallel = run(
        base.with_dop(4).with_parallel_threshold(1),
        "merge join, explicit exchanges (dop=4)",
    );
    assert_eq!(serial, parallel, "rows and codes must be byte-identical");
    println!("serial and exchange-parallel outputs are byte-identical ✓");
}
