//! Section 4.3's segmented sorting scenario: "a stream sorted on (A, B)
//! but required sorted on (A, C)" — re-sort only within segments of
//! distinct A, finding segment boundaries by code inspection alone.
//!
//! Compares the segmented sort against a full re-sort of the whole
//! stream, in wall time and column comparisons.
//!
//! Run with: `cargo run --release --example segmented_sort`

use std::sync::Arc;
use std::time::Instant;

use ovc_core::{Row, Stats, VecStream};
use ovc_sort::{sort_rows_ovc, SegmentedSort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500_000);
    let segments = 64u64;

    // Columns (A, C, B): the stream arrives sorted on (A, B) = cols (0, 2);
    // the consumer needs (A, C) = cols (0, 1).
    let mut rng = StdRng::seed_from_u64(3);
    let mut input: Vec<Row> = (0..n)
        .map(|_| {
            Row::new(vec![
                rng.gen_range(0..segments),
                rng.gen_range(0..1000u64),
                rng.gen_range(0..1000u64),
            ])
        })
        .collect();
    input.sort_by(|x, y| (x.cols()[0], x.cols()[2]).cmp(&(y.cols()[0], y.cols()[2])));

    println!("=== Segmented sorting (Section 4.3) ===\n");
    println!("{n} rows sorted on (A, B), needed on (A, C); {segments} distinct A values\n");

    // Segmented: boundaries by code inspection, per-segment suffix sort.
    let stats_seg = Stats::new_shared();
    let stream = VecStream::from_sorted_rows(input.clone(), 1);
    let start = Instant::now();
    let seg = SegmentedSort::new(stream, 1, 2, Arc::clone(&stats_seg));
    let seg_out: Vec<_> = seg.collect();
    let t_seg = start.elapsed();

    // Full re-sort of the entire stream on (A, C).
    let stats_full = Stats::new_shared();
    let start = Instant::now();
    let full = sort_rows_ovc(input, 2, &stats_full);
    let t_full = start.elapsed();

    assert_eq!(seg_out.len(), full.len());
    let seg_keys: Vec<&[u64]> = seg_out.iter().map(|r| r.row.key(2)).collect();
    let full_keys: Vec<&[u64]> = (0..full.len()).map(|i| &full.row(i)[..2]).collect();
    assert_eq!(seg_keys, full_keys, "both orders must agree");

    println!(
        "{:<24} {:>12} {:>20}",
        "", "wall time", "column comparisons"
    );
    println!(
        "{:<24} {:>10.1?} {:>20}",
        "segmented sort",
        t_seg,
        stats_seg.col_value_cmps()
    );
    println!(
        "{:<24} {:>10.1?} {:>20}",
        "full re-sort",
        t_full,
        stats_full.col_value_cmps()
    );
    println!("\nsegment boundaries cost zero comparisons (\"inspection of these");
    println!("code values suffices\"), and each segment sorts only its suffix.");
}
