//! `EXPLAIN ANALYZE` end to end: plan a query, run it with per-operator
//! profiling, and print estimates next to measurements.
//!
//! Three renderings of the paper's Figure 5 workload:
//!
//! 1. the sort-based serial plan — watch the in-sort distincts resolve
//!    comparisons by code (`code cmps`) while the column comparisons
//!    (`col cmps`) stay near the `N × K` bound;
//! 2. the same query on pre-sorted coded inputs — the elided sorts
//!    (`TrustSorted`) report zero comparison work of their own;
//! 3. the dop=4 parallel plan — `Exchange` operators show per-channel
//!    rows, send/recv waits, and peak queue occupancy.
//!
//! Run with: `cargo run --release --example explain_analyze -- 200000`

use ovc_bench::workload::intersect_tables;
use ovc_plan::exec::ExecOptions;
use ovc_plan::figure5::{catalog_sorted, catalog_unsorted, plan_intersect};
use ovc_plan::{PlannerConfig, Preference};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let (t1, t2) = intersect_tables(n, 42);
    let mem = (n / 10).max(64);
    let base = PlannerConfig::default()
        .with_memory_rows(mem)
        .with_preference(Preference::ForceSortBased);
    let options = ExecOptions::default();

    println!("=== EXPLAIN ANALYZE: sort-based plan, unsorted inputs (N = {n}) ===\n");
    let catalog = catalog_unsorted(t1.clone(), t2.clone());
    let plan = plan_intersect(&catalog, base).expect("plans");
    print!("{}", plan.explain_analyze(&catalog, &options));

    println!("\n=== EXPLAIN ANALYZE: pre-sorted coded inputs (sorts elided) ===\n");
    let catalog = catalog_sorted(t1, t2);
    let plan = plan_intersect(&catalog, base).expect("plans");
    print!("{}", plan.explain_analyze(&catalog, &options));

    println!("\n=== EXPLAIN ANALYZE: dop=4 exchange plan (channel gauges) ===\n");
    let catalog = {
        let (t1, t2) = intersect_tables(n, 42);
        catalog_unsorted(t1, t2)
    };
    let plan =
        plan_intersect(&catalog, base.with_dop(4).with_parallel_threshold(1)).expect("plans");
    print!("{}", plan.explain_analyze(&catalog, &options));

    println!("\nAll figures are inclusive of each operator's subtree (the Postgres");
    println!("EXPLAIN ANALYZE convention); `code cmps` are comparisons resolved by");
    println!("offset-value-code inspection alone — the paper's saved column accesses.");
}
