//! A query planned end-to-end by `ovc-plan`: logical algebra in,
//! cost-chosen physical plan out, executed on the OVC operator library.
//!
//! Runs the paper's Figure 5 workload through the planner in three
//! regimes — unsorted inputs with plenty of memory, unsorted inputs with
//! a tenth of the memory (the Figure 6 regime), and pre-sorted coded
//! inputs (where every sort is elided) — printing the chosen plan with
//! inferred properties, estimated costs, and the measured counters.
//! Scale with an argument:
//! `cargo run --release --example planned_query -- 500000`

use std::time::Instant;

use ovc_bench::workload::intersect_tables;
use ovc_core::{CostWeights, Stats};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::figure5::{catalog_sorted, catalog_unsorted, intersect_distinct_query};
use ovc_plan::{Aggregate, Catalog, LogicalPlan, Planner, PlannerConfig, Predicate, Table};

fn run_case(title: &str, catalog: &Catalog, config: PlannerConfig) {
    println!("--- {title} ---");
    let planner = Planner::new(catalog, config);
    let query = intersect_distinct_query();
    let plan = planner.plan(&query).expect("plans");
    print!("{plan}");
    let weights = CostWeights::default();
    println!("estimated cost: {:.0}", plan.cost.total(&weights));

    let stats = Stats::new_shared();
    let start = Instant::now();
    let rows = execute(&plan, catalog, &stats, &ExecOptions::default()).into_rows();
    let elapsed = start.elapsed();
    println!(
        "result rows: {}   wall: {:.1?}   measured cost: {:.0}   spilled rows: {}   elided sorts: {}\n",
        rows.len(),
        elapsed,
        stats.snapshot().weighted_cost(&weights),
        stats.rows_spilled(),
        plan.elided_sorts().len(),
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    println!("=== ovc-plan: one logical query, three planning regimes ===\n");
    println!("query (Figure 5): select B from T1 intersect select B from T2\n");

    let (t1, t2) = intersect_tables(n, 42);

    run_case(
        "unsorted inputs, memory ample (no spilling anywhere)",
        &catalog_unsorted(t1.clone(), t2.clone()),
        PlannerConfig::default().with_memory_rows(2 * n),
    );

    run_case(
        "unsorted inputs, memory = n/10 (the Figure 6 spill regime)",
        &catalog_unsorted(t1.clone(), t2.clone()),
        PlannerConfig::default().with_memory_rows(n / 10),
    );

    run_case(
        "pre-sorted coded inputs (interesting orderings available)",
        &catalog_sorted(t1.clone(), t2.clone()),
        PlannerConfig::default().with_memory_rows(n / 10),
    );

    // Parallel regime: same query, same answer, same codes — the planner
    // stamps dop=4 into the blocking sorts (look for `dop=4` in the
    // EXPLAIN) and the executor runs run generation on real threads
    // behind the order-preserving exchange.
    run_case(
        "unsorted inputs, memory = n/10, dop = 4 (parallel run generation)",
        &catalog_unsorted(t1.clone(), t2.clone()),
        PlannerConfig::default()
            .with_memory_rows(n / 10)
            .with_dop(4),
    );

    // Beyond Figure 5: the same planner handles arbitrary compositions.
    println!("--- a composed query: filter, join, group-by, top-k ---");
    let mut catalog = Catalog::new();
    catalog.register("facts", Table::unsorted(t1));
    catalog.register("dims", Table::sorted_from_unsorted(t2));
    let query = LogicalPlan::scan("facts")
        .filter(Predicate::ColLt(0, 1_000_000))
        .join(LogicalPlan::scan("dims"), 1, ovc_plan::JoinType::Inner)
        .group_by(1, vec![Aggregate::Count])
        .top_k(1, 5);
    let plan = Planner::new(&catalog, PlannerConfig::default().with_memory_rows(n / 10))
        .plan(&query)
        .expect("plans");
    print!("{plan}");
    let stats = Stats::new_shared();
    let top = execute(&plan, &catalog, &stats, &ExecOptions::default()).into_rows();
    println!("top-5 groups by key: {top:?}");
}
