//! Figure 4's motivating query: `select ..., count(distinct ...) group
//! by ...` over web-analysis-shaped data — "many rows and many key
//! columns, each key column an 8-byte integer with only a few distinct
//! values".
//!
//! The two-step process the paper describes: a sort on (group key,
//! distinct column) whose codes then drive (1) distinct-counting by
//! `offset == arity` and (2) group-boundary detection by
//! `offset < group key length`, compared against the full-column-compare
//! baseline.
//!
//! Run with: `cargo run --release --example web_analytics`

use std::sync::Arc;
use std::time::Instant;

use ovc_baseline::GroupFullCompare;
use ovc_bench::workload::grouped_sorted_table;
use ovc_core::{Stats, VecStream};
use ovc_exec::{Aggregate, Dedup, GroupCountDistinct};

fn main() {
    let rows_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let key_cols = 4;
    let group_len = 2;

    println!("=== select g1, g2, count(distinct k3, k4) group by g1, g2 ===\n");
    println!("input: {rows_n} rows, {key_cols} key columns, few distinct values each\n");

    for ratio in [1usize, 10, 100] {
        let rows = grouped_sorted_table(rows_n, key_cols, ratio, 7);
        println!("--- rows per group: {ratio} ---");

        // Step 1 (shared): the input is sorted on all key columns; the
        // codes from that sort drive everything downstream.
        let input = VecStream::from_sorted_rows(rows.clone(), key_cols);

        // Step 2, OVC version: count(distinct) via `offset == arity` and
        // group boundaries via `offset < group_len` — integer tests only,
        // in one operator (GroupCountDistinct).
        let stats_ovc = Stats::new_shared();
        let start = Instant::now();
        let grouped = GroupCountDistinct::new(input, group_len, Arc::clone(&stats_ovc));
        let groups_ovc: usize = grouped.count();
        let t_ovc = start.elapsed();

        // Baseline: full comparisons of the grouping columns per row.
        let input = VecStream::from_sorted_rows(rows, key_cols);
        let stats_full = Stats::new_shared();
        let start = Instant::now();
        let distinct = Dedup::new(input); // dedup kept identical; boundary test differs
        let grouped = GroupFullCompare::new(
            distinct,
            group_len,
            vec![Aggregate::Count],
            Arc::clone(&stats_full),
        );
        let groups_full: usize = grouped.count();
        let t_full = start.elapsed();

        assert_eq!(groups_ovc, groups_full);
        println!("  output groups:            {groups_ovc}");
        println!(
            "  OVC boundary test:        {t_ovc:>10.1?}  ({} column comparisons)",
            stats_ovc.col_value_cmps()
        );
        println!(
            "  full-compare boundaries:  {t_full:>10.1?}  ({} column comparisons)",
            stats_full.col_value_cmps()
        );
        println!();
    }
    println!("\"testing the offset against the count of grouping columns is much");
    println!("faster than full comparisons of multiple key columns\" — Section 6");
}
