//! A full analytical query pipeline carrying offset-value codes across
//! seven operators — the "interesting orderings taken to their full
//! potential" picture of Section 7.
//!
//! Query (star-schema flavoured):
//!
//! ```sql
//! SELECT f.region, d.tier, COUNT(*), SUM(f.amount)
//! FROM   fact f JOIN dim d ON f.region = d.region
//! WHERE  f.amount <> 0
//! GROUP  BY f.region, d.tier
//! ```
//!
//! Plan: RLE column-store scan (free codes) → filter (filter theorem) →
//! merge join (codes decide merge comparisons) → order-preserving split →
//! per-partition grouping → order-preserving merge — with the comparison
//! budget printed per stage.
//!
//! Run with: `cargo run --release --example query_pipeline`

use std::sync::Arc;

use ovc_bench::workload::{table, TableSpec};
use ovc_core::derive::assert_codes_exact;
use ovc_core::{Row, Stats, VecStream};
use ovc_exec::{exchange, Aggregate, Filter, GroupAggregate, JoinType, MergeJoin};
use ovc_storage::RleColumnStore;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    // Fact table: (region, amount); dimension: (region, tier).
    let mut fact = table(TableSpec {
        rows: n,
        key_cols: 1,
        payload_cols: 1,
        distinct_per_col: 32,
        seed: 1,
    });
    fact.sort();
    let mut dim: Vec<Row> = (0..32u64).map(|r| Row::new(vec![r, r % 3])).collect();
    dim.sort();

    let stats = Stats::new_shared();
    let fact_store = RleColumnStore::build(&fact, 1);
    println!(
        "fact: {} rows (RLE key compression ratio {:.4}); dim: {} rows\n",
        fact.len(),
        fact_store.key_compression_ratio(),
        dim.len()
    );

    // 1. Scan: codes for free.
    let scan = fact_store.scan();
    let mark = stats.snapshot();

    // 2. Filter: codes by the filter theorem.
    let filtered = Filter::new(scan, |r: &Row| r.cols()[1] != 0, Arc::clone(&stats));

    // 3. Merge join with the dimension (sorted stream with derived codes).
    let dim_stream = VecStream::from_sorted_rows(dim, 1);
    let joined = MergeJoin::new(
        filtered,
        dim_stream,
        1,
        JoinType::Inner,
        2,
        2,
        Arc::clone(&stats),
    );

    // 4. Order-preserving split into 4 partitions by region.
    let parts = exchange::split(joined, 4, exchange::partition::by_hash(0, 4));
    let after_split = stats.snapshot().since(&mark);

    // 5. Per-partition grouping on (region); tier rides along as Min
    //    (single-valued per region in this dimension).
    let mut grouped_parts = Vec::new();
    for p in parts {
        let grouped: Vec<_> = GroupAggregate::new(
            p,
            1,
            vec![Aggregate::Min(1), Aggregate::Count, Aggregate::Sum(2)],
            Arc::clone(&stats),
        )
        .collect();
        grouped_parts.push(VecStream::from_coded(grouped, 1));
    }

    // 6. Order-preserving merge back to one sorted result stream.
    let merged = exchange::merge(grouped_parts, 1, &stats);
    let result: Vec<_> = merged.collect();
    let total = stats.snapshot().since(&mark);

    let pairs: Vec<_> = result.iter().map(|r| (r.row.clone(), r.code)).collect();
    assert_codes_exact(&pairs, 1);

    println!("result groups: {}", result.len());
    for r in result.iter().take(8) {
        println!(
            "  region {:>2} tier {} count {:>8} sum {:>12}",
            r.row.cols()[0],
            r.row.cols()[1],
            r.row.cols()[2],
            r.row.cols()[3]
        );
    }
    if result.len() > 8 {
        println!("  ... ({} more)", result.len() - 8);
    }

    println!("\ncomparison budget:");
    println!(
        "  scan+filter+join+split: {} column comparisons (bound N*K = {})",
        after_split.col_value_cmps, n
    );
    println!(
        "  whole pipeline:         {} column comparisons, {} code comparisons",
        total.col_value_cmps, total.ovc_cmps
    );
    println!("\nevery operator consumed its input's codes and produced exact codes");
    println!("for the next one — verified by the end-to-end exactness check.");
}
