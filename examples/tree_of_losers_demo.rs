//! Figures 1–3: a tree-of-losers priority queue merging sorted string
//! runs, with offset-value codes deciding the comparisons.
//!
//! The paper's figures show twelve runs of three-character strings; the
//! right half (runs 8–11, visible in Figure 1) contains the keys 061,
//! 087, 092, 154, 503 discussed in the text.  Strings become rows with
//! one column per character, so the walkthrough in Section 3 — "092"
//! rising past "503" and losing to "087" with *zero* string comparisons —
//! can be traced in the comparison counters.
//!
//! Run with: `cargo run --release --example tree_of_losers_demo`

use std::sync::Arc;

use ovc_core::{Row, Stats, VecStream};
use ovc_sort::TreeOfLosers;

/// A 3-character string as a row of char columns.
fn key(s: &str) -> Row {
    Row::new(s.chars().map(|c| c.to_digit(10).unwrap() as u64).collect())
}

fn show(row: &Row) -> String {
    row.cols().iter().map(|c| c.to_string()).collect()
}

fn main() {
    println!("=== Tree-of-losers priority queue (Figures 1-3) ===\n");

    // Four sorted runs modelled on the right half of Figure 1: the merge
    // first produces "061"; its successor "092" then rises along the same
    // leaf-to-root path past "503" and loses to "087".
    let runs: Vec<Vec<Row>> = vec![
        vec![key("154"), key("170"), key("426")],
        vec![key("087"), key("170"), key("817")],
        vec![key("503"), key("612")],
        vec![key("061"), key("092"), key("512")],
    ];

    let stats = Stats::new_shared();
    let cursors: Vec<VecStream> = runs
        .iter()
        .map(|r| VecStream::from_sorted_rows(r.clone(), 3))
        .collect();
    let tree = TreeOfLosers::new(cursors, 3, Arc::clone(&stats));

    println!("merging {} runs of 3-character strings\n", runs.len());
    println!(
        "{:<8} {:>8} {:>7} {:>14} {:>14}",
        "output", "offset", "value", "code-cmps", "col-cmps"
    );
    let mut before = stats.snapshot();
    for out in tree {
        let delta = stats.snapshot().since(&before);
        before = stats.snapshot();
        println!(
            "{:<8} {:>8} {:>7} {:>14} {:>14}",
            show(&out.row),
            if out.code.is_duplicate() {
                3
            } else {
                out.code.offset(3)
            },
            if out.code.is_duplicate() {
                "-".to_string()
            } else {
                out.code.value().to_string()
            },
            delta.ovc_cmps,
            delta.col_value_cmps,
        );
    }

    let total = stats.snapshot();
    println!(
        "\ntotals: {} code comparisons, {} column comparisons for {} rows x 3 columns",
        total.ovc_cmps,
        total.col_value_cmps,
        runs.iter().map(Vec::len).sum::<usize>(),
    );
    println!(
        "the N x K bound ({}) holds with room to spare — \"offset-value codes\ndecide many comparisons in a tree-of-losers priority queue\" (Section 3)",
        runs.iter().map(Vec::len).sum::<usize>() * 3
    );

    // The Section 3 walkthrough, replayed precisely.
    println!("\n=== Section 3 walkthrough: the pass after \"061\" ===\n");
    let stats = Stats::default();
    let winner = key("061");
    let k092 = key("092");
    let k503 = key("503");
    let k087 = key("087");
    let k154 = key("154");
    let mut c092 = ovc_core::compare::derive_code(winner.key(3), k092.key(3), &stats);
    let mut c503 = ovc_core::compare::derive_code(winner.key(3), k503.key(3), &stats);
    let mut c087 = ovc_core::compare::derive_code(winner.key(3), k087.key(3), &stats);
    let mut c154 = ovc_core::compare::derive_code(winner.key(3), k154.key(3), &stats);
    let col_cmps_before = stats.col_value_cmps();

    use ovc_core::compare::compare_same_base;
    let o1 = compare_same_base(k092.key(3), k503.key(3), &mut c092, &mut c503, &stats);
    println!(
        "\"092\" vs \"503\": offsets 1 vs 0 decide -> {:?} (\"092\" wins)",
        o1
    );
    let o2 = compare_same_base(k092.key(3), k087.key(3), &mut c092, &mut c087, &stats);
    println!(
        "\"092\" vs \"087\": equal offsets, values 9 vs 8 decide -> {:?} (\"087\" wins)",
        o2
    );
    let o3 = compare_same_base(k087.key(3), k154.key(3), &mut c087, &mut c154, &stats);
    println!(
        "\"087\" vs \"154\": offsets 1 vs 0 decide -> {:?} (\"087\" reaches the root)",
        o3
    );
    println!(
        "\ncolumn comparisons used in this leaf-to-root pass: {}",
        stats.col_value_cmps() - col_cmps_before
    );
    println!("\"Not a single string comparison is required and not a single");
    println!("offset-value code needs re-calculation.\" — Section 3");
}
