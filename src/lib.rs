//! # ovc-repro — reproduction of "Offset-value coding in database query
//! processing" (Graefe & Do, EDBT 2023)
//!
//! This facade re-exports the workspace crates for the examples and
//! integration tests.  See `README.md` for the architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the paper mapping.

pub use ovc_baseline as baseline;
pub use ovc_bench as bench;
pub use ovc_core as core;
pub use ovc_exec as exec;
pub use ovc_plan as plan;
pub use ovc_sort as sort;
pub use ovc_storage as storage;
