//! # ovc-repro — reproduction of "Offset-value coding in database query
//! processing" (Graefe & Do, EDBT 2023)
//!
//! This facade re-exports the workspace crates for the examples and
//! integration tests.  See `README.md` for the architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the paper mapping.

pub use ovc_baseline as baseline;
pub use ovc_bench as bench;
pub use ovc_core as core;
pub use ovc_exec as exec;
pub use ovc_plan as plan;
pub use ovc_server as server;
pub use ovc_sort as sort;
pub use ovc_storage as storage;

// The physical-property vocabulary of the ordering/partitioning API —
// re-exported at the root so downstream code matches on one canonical
// set of types.  `PhysOp`, `PlanError`, and `Logical` are
// `#[non_exhaustive]`: downstream `match` arms need a wildcard and
// survive future variants.
pub use ovc_core::{Direction, SortSpec};
pub use ovc_plan::logical::Logical;
pub use ovc_plan::{Partitioning, PhysOp, PhysicalPlan, PhysicalProps, PlanError};
