//! Bench snapshots (`BENCH_<name>.json`) must stay parseable and
//! schema-conformant: CI runs the figures binary in `--quick` mode and
//! validates the emitted file with the same
//! [`ovc_bench::snapshot::validate_snapshot`] exercised here.

use ovc_bench::snapshot::{validate_snapshot, BenchEntry, BenchSnapshot, Json, SCHEMA_VERSION};

/// An emitted snapshot round-trips through the hand-rolled parser and
/// passes schema validation, with the environment stanza intact.
#[test]
fn emitted_snapshot_round_trips_and_validates() {
    let mut snap = BenchSnapshot::new("integration");
    snap.push(
        BenchEntry::new("figure_6", "sort_plan")
            .metric("result_rows", 8082.0)
            .metric("wall_ns", 9_900_000.0)
            .metric("rows_spilled", 38161.0),
    );
    snap.push(BenchEntry::new("figure_4", "ratio_10").metric("speedup", 2.5));

    let dir = std::env::temp_dir();
    let path = snap.write_to(&dir).expect("snapshot written");
    let text = std::fs::read_to_string(&path).expect("snapshot readable");
    let _ = std::fs::remove_file(&path);

    let doc = Json::parse(&text).expect("snapshot parses");
    validate_snapshot(&doc).expect("snapshot conforms to schema");

    assert_eq!(
        doc.get("schema_version").unwrap().as_num(),
        Some(SCHEMA_VERSION as f64)
    );
    assert_eq!(doc.get("name").unwrap().as_str(), Some("integration"));
    let env = doc.get("environment").expect("environment stanza");
    let cores = env
        .get("available_parallelism")
        .and_then(Json::as_num)
        .expect("parallelism recorded");
    assert!(cores >= 1.0);
    assert_eq!(
        env.get("single_core").and_then(Json::as_bool),
        Some(cores == 1.0),
        "single-core hosts must be flagged in the snapshot itself"
    );
    assert_eq!(
        env.get("debug_assertions").and_then(Json::as_bool),
        Some(cfg!(debug_assertions))
    );
    let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(
        entries[0]
            .get("metrics")
            .and_then(|m| m.get("rows_spilled"))
            .and_then(Json::as_num),
        Some(38161.0)
    );
}

/// Any `BENCH_*.json` checked into (or left in) the repository root
/// must conform — the guard that keeps committed seeds and CI artifacts
/// honest.
#[test]
fn any_repo_root_snapshots_conform() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    for entry in std::fs::read_dir(root).expect("repo root readable") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("snapshot readable");
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        validate_snapshot(&doc).unwrap_or_else(|e| panic!("{name}: schema violation: {e}"));
    }
}
