//! Property tests of parallel execution: any degree of parallelism must
//! be invisible in the output — byte-identical rows *and* byte-identical
//! exact offset-value codes against the serial implementation, because
//! exact codes are a function of the output row sequence alone.

use ovc_core::derive::assert_codes_exact;
use ovc_core::{CodedBatch, Ovc, OvcRow, Row, Stats, VecStream};
use ovc_exec::exchange::{self, partition};
use ovc_exec::parallel::{merge_threaded, repartition_threaded, split_threaded};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::{figure5, PlannerConfig, Preference};
use ovc_sort::external::external_sort_collect;
use ovc_sort::parallel::{parallel_sort, parallel_sort_distinct};
use ovc_sort::SortConfig;
use proptest::prelude::*;

fn rows_strategy(width: usize, max_rows: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(prop::collection::vec(0u64..40, width), 0..max_rows)
        .prop_map(|v| v.into_iter().map(Row::new).collect())
}

fn exact(pairs: &[(Row, Ovc)], key_len: usize) {
    assert_codes_exact(pairs, key_len);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel sort ≡ serial sort, rows and codes, threads ∈ {2, 4}.
    #[test]
    fn parallel_sort_equals_serial(rows in rows_strategy(2, 400), mem in 16usize..96) {
        let serial = external_sort_collect(
            rows.clone(),
            SortConfig::new(2, mem),
            &Stats::new_shared(),
        );
        for threads in [2usize, 4] {
            let stats = Stats::new_shared();
            let par: Vec<OvcRow> =
                parallel_sort(rows.clone(), 2, threads, mem, 64, &stats).collect();
            prop_assert_eq!(&par, &serial, "threads={}", threads);
            let pairs: Vec<(Row, Ovc)> = par.into_iter().map(|r| (r.row, r.code)).collect();
            exact(&pairs, 2);
        }
    }

    /// Parallel in-sort distinct ≡ sorted-dedup reference, with codes.
    #[test]
    fn parallel_distinct_equals_serial(rows in rows_strategy(2, 400)) {
        let mut expect = rows.clone();
        expect.sort();
        expect.dedup();
        for threads in [2usize, 4] {
            let out: Vec<OvcRow> =
                parallel_sort_distinct(rows.clone(), 2, threads, 32, 8, &Stats::new_shared())
                    .collect();
            let got: Vec<Row> = out.iter().map(|r| r.row.clone()).collect();
            prop_assert_eq!(&got, &expect, "threads={}", threads);
            let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
            exact(&pairs, 2);
        }
    }

    /// The threaded exchange matches the serial exchange partition by
    /// partition — including under extreme skew (every row to one
    /// partition, the others empty) — and a threaded split/merge round
    /// trip reproduces the input stream exactly.
    #[test]
    fn threaded_exchange_equals_serial(
        rows in rows_strategy(2, 300),
        parts in 2usize..5,
        skew_sel in 0usize..2,
    ) {
        let skewed = skew_sel == 1;
        let mut sorted = rows;
        sorted.sort();
        let make_part = |parts: usize, skewed: bool| -> Box<dyn FnMut(&Row) -> usize + Send> {
            if skewed {
                // One hot partition, the rest empty.
                Box::new(move |_: &Row| parts - 1)
            } else {
                Box::new(partition::by_hash(0, parts))
            }
        };

        let serial = exchange::split(
            VecStream::from_sorted_rows(sorted.clone(), 2),
            parts,
            make_part(parts, skewed),
        );
        let threaded = split_threaded(
            CodedBatch::from_sorted_rows(sorted.clone(), 2),
            parts,
            make_part(parts, skewed),
            8,
        )
        .collect_all();
        prop_assert_eq!(threaded.len(), parts);
        let mut batches = Vec::new();
        for (t, s) in threaded.into_iter().zip(serial) {
            let s_rows: Vec<OvcRow> = s.collect();
            prop_assert_eq!(t.to_ovc_rows(), s_rows);
            batches.push(t);
        }
        if skewed {
            prop_assert!(batches[..parts - 1].iter().all(|b| b.is_empty()));
            prop_assert_eq!(batches[parts - 1].len(), sorted.len());
        }

        // Round trip: merging the partitions restores the input stream.
        let merged: Vec<OvcRow> =
            merge_threaded(batches, 2, 8, &Stats::new_shared()).collect();
        let expect: Vec<OvcRow> = VecStream::from_sorted_rows(sorted, 2).collect();
        prop_assert_eq!(merged, expect);
    }

    /// Many-to-many repartitioning (N splitters, P mergers, all threaded)
    /// matches the serial many-to-many shuffle output for output.
    #[test]
    fn threaded_repartition_equals_serial(
        a in rows_strategy(2, 200),
        b in rows_strategy(2, 200),
        parts_out in 2usize..4,
    ) {
        let (mut a, mut b) = (a, b);
        a.sort();
        b.sort();
        let stats = Stats::new_shared();
        let threaded = repartition_threaded(
            vec![
                CodedBatch::from_sorted_rows(a.clone(), 2),
                CodedBatch::from_sorted_rows(b.clone(), 2),
            ],
            2,
            parts_out,
            || partition::by_hash(1, parts_out),
            8,
            &stats,
        );
        let serial = exchange::many_to_many(
            vec![
                VecStream::from_sorted_rows(a, 2),
                VecStream::from_sorted_rows(b, 2),
            ],
            parts_out,
            || partition::by_hash(1, parts_out),
            &Stats::new_shared(),
        );
        for (t, s) in threaded.into_iter().zip(serial) {
            let s_rows: Vec<OvcRow> = s.collect();
            prop_assert_eq!(t.into_rows(), s_rows);
        }
    }

    /// The acceptance property: the Figure-5 query planned with dop ∈
    /// {2, 4} executes to byte-identical rows and exact codes as the
    /// dop=1 plan, with every elided sort still passing the trusted-
    /// stream audit.
    #[test]
    fn figure5_parallel_plans_equal_serial(
        t1 in rows_strategy(1, 300),
        t2 in rows_strategy(1, 300),
    ) {
        let catalog = figure5::catalog_unsorted(t1, t2);
        let base = PlannerConfig::default()
            .with_memory_rows(48)
            .with_fan_in(8)
            .with_preference(Preference::ForceSortBased);
        let run = |cfg: PlannerConfig| -> Vec<OvcRow> {
            let plan = figure5::plan_intersect(&catalog, cfg).expect("plans");
            let stats = Stats::new_shared();
            execute(&plan, &catalog, &stats, &ExecOptions { verify_trusted: true }).into_coded()
        };
        let serial = run(base);
        let pairs: Vec<(Row, Ovc)> =
            serial.iter().map(|r| (r.row.clone(), r.code)).collect();
        exact(&pairs, 1);
        for dop in [2usize, 4] {
            let parallel = run(base.with_dop(dop).with_parallel_threshold(1));
            prop_assert_eq!(&parallel, &serial, "dop={}", dop);
        }
    }
}

/// The ISSUE 3 acceptance criterion: a planned merge join over two
/// hash-co-partitioned inputs runs with explicit `Exchange` nodes in
/// EXPLAIN — split both inputs on the join key, join partition pairs on
/// worker threads, gather with the order-preserving merging shuffle —
/// and returns byte-identical rows *and exact codes* vs the serial
/// single-thread plan.
#[test]
fn planned_merge_join_with_explicit_exchanges_matches_serial() {
    use ovc_core::Row;
    use ovc_plan::{Catalog, JoinType, LogicalPlan, Planner, Table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0xE8C4A);
    let mk = |rng: &mut StdRng, n: usize| -> Vec<Row> {
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..25u64), rng.gen_range(0..50u64)]))
            .collect()
    };
    for join_type in [JoinType::Inner, JoinType::LeftOuter, JoinType::LeftSemi] {
        let mut catalog = Catalog::new();
        catalog.register("l", Table::unsorted(mk(&mut rng, 400)));
        catalog.register("r", Table::unsorted(mk(&mut rng, 350)));
        let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, join_type);
        let base = PlannerConfig::default()
            .with_memory_rows(64)
            .with_fan_in(8)
            .with_preference(Preference::ForceSortBased);

        // Serial plan: no exchanges anywhere.
        let serial_plan = Planner::new(&catalog, base).plan(&q).expect("plans");
        assert_eq!(serial_plan.count_op("Exchange"), 0, "{serial_plan}");

        // Parallel plan: split both join inputs, gather above the join.
        let par_cfg = base.with_dop(4).with_parallel_threshold(1);
        let par_plan = Planner::new(&catalog, par_cfg).plan(&q).expect("plans");
        assert_eq!(
            par_plan.count_op("Exchange"),
            3,
            "two splits + one gather ({join_type:?}):\n{par_plan}"
        );
        assert_eq!(par_plan.exchanges().len(), 3, "{par_plan}");
        let ex = par_plan.explain();
        assert!(ex.contains("Exchange -> hash(c0)x4"), "{ex}");
        assert!(ex.contains("Exchange -> single"), "{ex}");
        assert!(ex.contains("part=hash(c0)x4"), "{ex}");

        let run = |plan: &ovc_plan::PhysicalPlan| -> Vec<OvcRow> {
            let stats = Stats::new_shared();
            execute(
                plan,
                &catalog,
                &stats,
                &ExecOptions {
                    verify_trusted: true,
                },
            )
            .into_coded()
        };
        let serial = run(&serial_plan);
        let parallel = run(&par_plan);
        assert_eq!(parallel, serial, "{join_type:?}: rows and codes");
        // All three plans sort their inputs on the 1-column join key, so
        // the join output (semi included) is coded at arity 1.
        let pairs: Vec<(Row, Ovc)> = serial.into_iter().map(|r| (r.row, r.code)).collect();
        exact(&pairs, 1);
    }
}

/// Regression (code review): the partitioning enforcer must not shuffle
/// streams whose trusted order is longer than the ascending join prefix
/// — a table stored `[c0 asc, c1 desc]` satisfies an ascending 1-column
/// join requirement via TrustSorted, but the threaded exchange path is
/// ascending-only, so the join stays serial (and correct) despite the
/// dop directive.
#[test]
fn mixed_direction_trusted_inputs_keep_joins_serial() {
    use ovc_core::{Direction, Row, SortSpec};
    use ovc_plan::{Catalog, JoinType, LogicalPlan, Planner, Table};

    let spec = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]);
    let mk = |seed: u64| -> Vec<Row> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..300)
            .map(|_| Row::new(vec![rng.gen_range(0..15u64), rng.gen_range(0..15u64)]))
            .collect();
        rows.sort_by(|a, b| spec.cmp_keys(a.key(2), b.key(2)));
        rows
    };
    let mut catalog = Catalog::new();
    catalog.register("l", Table::sorted_by(mk(7), spec.clone()));
    catalog.register("r", Table::sorted_by(mk(8), spec.clone()));
    for join_type in [JoinType::Inner, JoinType::LeftSemi] {
        let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, join_type);
        let cfg = PlannerConfig::default()
            .with_preference(Preference::ForceSortBased)
            .with_dop(4)
            .with_parallel_threshold(1);
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        assert_eq!(
            plan.count_op("Exchange"),
            0,
            "mixed-direction trusted inputs must not be shuffled:\n{plan}"
        );
        assert_eq!(plan.elided_sorts().len(), 2, "{plan}");
        let stats = Stats::new_shared();
        let out = execute(
            &plan,
            &catalog,
            &stats,
            &ExecOptions {
                verify_trusted: true,
            },
        )
        .into_coded();
        // Semi joins preserve the left spec; inner joins code at the
        // ascending join arity.
        match join_type {
            JoinType::LeftSemi => {
                let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
                ovc_core::derive::assert_codes_exact_spec(&pairs, &spec);
            }
            _ => {
                let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
                exact(&pairs, 1);
            }
        }
    }
}

/// Deterministic spot-check of the planner threshold: small inputs stay
/// serial even when a dop is configured, large ones go parallel.
#[test]
fn dop_threshold_gates_parallel_sorts() {
    let rows: Vec<Row> = (0..100).map(|i| Row::new(vec![i % 7])).collect();
    let catalog = figure5::catalog_unsorted(rows.clone(), rows);
    let cfg = PlannerConfig::default()
        .with_preference(Preference::ForceSortBased)
        .with_dop(8)
        .with_parallel_threshold(1000);
    let plan = figure5::plan_intersect(&catalog, cfg).expect("plans");
    assert_eq!(plan.props.dop, 1, "below threshold stays serial:\n{plan}");
    let plan = figure5::plan_intersect(&catalog, cfg.with_parallel_threshold(10)).expect("plans");
    assert_eq!(plan.props.dop, 8, "above threshold goes parallel:\n{plan}");
    assert!(plan.explain().contains("dop=8"), "{plan}");
}
