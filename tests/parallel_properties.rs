//! Property tests of parallel execution: any degree of parallelism must
//! be invisible in the output — byte-identical rows *and* byte-identical
//! exact offset-value codes against the serial implementation, because
//! exact codes are a function of the output row sequence alone.

use ovc_core::derive::assert_codes_exact;
use ovc_core::{CodedBatch, Ovc, OvcRow, Row, Stats, VecStream};
use ovc_exec::exchange::{self, partition};
use ovc_exec::parallel::{merge_threaded, repartition_threaded, split_threaded};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::{figure5, PlannerConfig, Preference};
use ovc_sort::external::external_sort_collect;
use ovc_sort::parallel::{parallel_sort, parallel_sort_distinct};
use ovc_sort::SortConfig;
use proptest::prelude::*;

fn rows_strategy(width: usize, max_rows: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(prop::collection::vec(0u64..40, width), 0..max_rows)
        .prop_map(|v| v.into_iter().map(Row::new).collect())
}

fn exact(pairs: &[(Row, Ovc)], key_len: usize) {
    assert_codes_exact(pairs, key_len);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel sort ≡ serial sort, rows and codes, threads ∈ {2, 4}.
    #[test]
    fn parallel_sort_equals_serial(rows in rows_strategy(2, 400), mem in 16usize..96) {
        let serial = external_sort_collect(
            rows.clone(),
            SortConfig::new(2, mem),
            &Stats::new_shared(),
        );
        for threads in [2usize, 4] {
            let stats = Stats::new_shared();
            let par: Vec<OvcRow> =
                parallel_sort(rows.clone(), 2, threads, mem, 64, &stats).collect();
            prop_assert_eq!(&par, &serial, "threads={}", threads);
            let pairs: Vec<(Row, Ovc)> = par.into_iter().map(|r| (r.row, r.code)).collect();
            exact(&pairs, 2);
        }
    }

    /// Parallel in-sort distinct ≡ sorted-dedup reference, with codes.
    #[test]
    fn parallel_distinct_equals_serial(rows in rows_strategy(2, 400)) {
        let mut expect = rows.clone();
        expect.sort();
        expect.dedup();
        for threads in [2usize, 4] {
            let out: Vec<OvcRow> =
                parallel_sort_distinct(rows.clone(), 2, threads, 32, 8, &Stats::new_shared())
                    .collect();
            let got: Vec<Row> = out.iter().map(|r| r.row.clone()).collect();
            prop_assert_eq!(&got, &expect, "threads={}", threads);
            let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
            exact(&pairs, 2);
        }
    }

    /// The threaded exchange matches the serial exchange partition by
    /// partition — including under extreme skew (every row to one
    /// partition, the others empty) — and a threaded split/merge round
    /// trip reproduces the input stream exactly.
    #[test]
    fn threaded_exchange_equals_serial(
        rows in rows_strategy(2, 300),
        parts in 2usize..5,
        skew_sel in 0usize..2,
    ) {
        let skewed = skew_sel == 1;
        let mut sorted = rows;
        sorted.sort();
        let make_part = |parts: usize, skewed: bool| -> Box<dyn FnMut(&Row) -> usize + Send> {
            if skewed {
                // One hot partition, the rest empty.
                Box::new(move |_: &Row| parts - 1)
            } else {
                Box::new(partition::by_hash(0, parts))
            }
        };

        let serial = exchange::split(
            VecStream::from_sorted_rows(sorted.clone(), 2),
            parts,
            make_part(parts, skewed),
        );
        let threaded = split_threaded(
            CodedBatch::from_sorted_rows(sorted.clone(), 2),
            parts,
            make_part(parts, skewed),
            8,
        )
        .collect_all();
        prop_assert_eq!(threaded.len(), parts);
        let mut batches = Vec::new();
        for (t, s) in threaded.into_iter().zip(serial) {
            let s_rows: Vec<OvcRow> = s.collect();
            prop_assert_eq!(t.to_ovc_rows(), s_rows);
            batches.push(t);
        }
        if skewed {
            prop_assert!(batches[..parts - 1].iter().all(|b| b.is_empty()));
            prop_assert_eq!(batches[parts - 1].len(), sorted.len());
        }

        // Round trip: merging the partitions restores the input stream.
        let merged: Vec<OvcRow> =
            merge_threaded(batches, 2, 8, &Stats::new_shared()).collect();
        let expect: Vec<OvcRow> = VecStream::from_sorted_rows(sorted, 2).collect();
        prop_assert_eq!(merged, expect);
    }

    /// Many-to-many repartitioning (N splitters, P mergers, all threaded)
    /// matches the serial many-to-many shuffle output for output.
    #[test]
    fn threaded_repartition_equals_serial(
        a in rows_strategy(2, 200),
        b in rows_strategy(2, 200),
        parts_out in 2usize..4,
    ) {
        let (mut a, mut b) = (a, b);
        a.sort();
        b.sort();
        let stats = Stats::new_shared();
        let threaded = repartition_threaded(
            vec![
                CodedBatch::from_sorted_rows(a.clone(), 2),
                CodedBatch::from_sorted_rows(b.clone(), 2),
            ],
            2,
            parts_out,
            || partition::by_hash(1, parts_out),
            8,
            &stats,
        );
        let serial = exchange::many_to_many(
            vec![
                VecStream::from_sorted_rows(a, 2),
                VecStream::from_sorted_rows(b, 2),
            ],
            parts_out,
            || partition::by_hash(1, parts_out),
            &Stats::new_shared(),
        );
        for (t, s) in threaded.into_iter().zip(serial) {
            let s_rows: Vec<OvcRow> = s.collect();
            prop_assert_eq!(t.into_rows(), s_rows);
        }
    }

    /// Partition-parallel grouping ≡ serial grouping, rows and codes,
    /// for arbitrary inputs (few distinct keys leave partitions empty;
    /// the hash on the group key may park everything on one worker).
    #[test]
    fn partitioned_group_by_equals_serial(
        rows in rows_strategy(2, 300),
        parts in 2usize..5,
    ) {
        use ovc_exec::{group_partitions, Aggregate, GroupAggregate};
        let mut rows = rows;
        rows.sort();
        let aggs = vec![Aggregate::Count, Aggregate::Sum(1), Aggregate::Last(1)];
        let serial: Vec<OvcRow> = GroupAggregate::new(
            VecStream::from_sorted_rows(rows.clone(), 2),
            1,
            aggs.clone(),
            Stats::new_shared(),
        )
        .collect();
        let stats = Stats::new_shared();
        let split = split_threaded(
            CodedBatch::from_sorted_rows(rows, 2),
            parts,
            partition::by_key_hash(1, parts),
            8,
        )
        .collect_all();
        let grouped = group_partitions(split, 1, aggs, &stats);
        let gathered: Vec<OvcRow> = merge_threaded(grouped, 1, 8, &stats).collect();
        prop_assert_eq!(gathered, serial, "parts={}", parts);
    }

    /// Partition-parallel count-distinct (partials hashed on the full
    /// sort key, summed by the final merge) ≡ the serial operator.
    #[test]
    fn partitioned_count_distinct_equals_serial(
        rows in rows_strategy(2, 300),
        parts in 2usize..5,
    ) {
        use ovc_exec::parallel::count_distinct_partitions_partial;
        use ovc_exec::{Aggregate, GroupCountDistinct, GroupFinal};
        let mut rows = rows;
        rows.sort();
        let serial: Vec<OvcRow> = GroupCountDistinct::new(
            VecStream::from_sorted_rows(rows.clone(), 2),
            1,
            Stats::new_shared(),
        )
        .collect();
        let stats = Stats::new_shared();
        let split = split_threaded(
            CodedBatch::from_sorted_rows(rows, 2),
            parts,
            partition::by_key_hash(2, parts),
            8,
        )
        .collect_all();
        let partials = count_distinct_partitions_partial(split, 1, &stats);
        let gathered = merge_threaded(partials, 2, 8, &stats);
        let out: Vec<OvcRow> =
            GroupFinal::new(gathered, 1, vec![Aggregate::Count], std::sync::Arc::clone(&stats))
                .collect();
        prop_assert_eq!(out, serial, "parts={}", parts);
    }

    /// Partition-parallel set operations ≡ serial, rows and codes, for
    /// all six operations over arbitrary (including empty) inputs.
    #[test]
    fn partitioned_set_ops_equal_serial(
        l in rows_strategy(2, 200),
        r in rows_strategy(2, 200),
        op_sel in 0usize..6,
        parts in 2usize..4,
    ) {
        use ovc_exec::parallel::set_op_partitions;
        use ovc_exec::{SetOp, SetOperation};
        let op = [
            SetOp::Union,
            SetOp::UnionAll,
            SetOp::Intersect,
            SetOp::IntersectAll,
            SetOp::Except,
            SetOp::ExceptAll,
        ][op_sel];
        let (mut l, mut r) = (l, r);
        l.sort();
        r.sort();
        let serial: Vec<OvcRow> = SetOperation::new(
            VecStream::from_sorted_rows(l.clone(), 2),
            VecStream::from_sorted_rows(r.clone(), 2),
            op,
            Stats::new_shared(),
        )
        .collect();
        let stats = Stats::new_shared();
        let lp = split_threaded(
            CodedBatch::from_sorted_rows(l, 2),
            parts,
            partition::by_key_hash(2, parts),
            8,
        )
        .collect_all();
        let rp = split_threaded(
            CodedBatch::from_sorted_rows(r, 2),
            parts,
            partition::by_key_hash(2, parts),
            8,
        )
        .collect_all();
        let outs = set_op_partitions(lp, rp, op, &stats);
        let gathered: Vec<OvcRow> = merge_threaded(outs, 2, 8, &stats).collect();
        prop_assert_eq!(gathered, serial, "{:?} parts={}", op, parts);
    }

    /// The acceptance property: the Figure-5 query planned with dop ∈
    /// {2, 4} executes to byte-identical rows and exact codes as the
    /// dop=1 plan, with every elided sort still passing the trusted-
    /// stream audit.
    #[test]
    fn figure5_parallel_plans_equal_serial(
        t1 in rows_strategy(1, 300),
        t2 in rows_strategy(1, 300),
    ) {
        let catalog = figure5::catalog_unsorted(t1, t2);
        let base = PlannerConfig::default()
            .with_memory_rows(48)
            .with_fan_in(8)
            .with_preference(Preference::ForceSortBased);
        let run = |cfg: PlannerConfig| -> Vec<OvcRow> {
            let plan = figure5::plan_intersect(&catalog, cfg).expect("plans");
            let stats = Stats::new_shared();
            execute(&plan, &catalog, &stats, &ExecOptions { verify_trusted: true, ..Default::default() }).into_coded()
        };
        let serial = run(base);
        let pairs: Vec<(Row, Ovc)> =
            serial.iter().map(|r| (r.row.clone(), r.code)).collect();
        exact(&pairs, 1);
        for dop in [2usize, 4] {
            let parallel = run(base.with_dop(dop).with_parallel_threshold(1));
            prop_assert_eq!(&parallel, &serial, "dop={}", dop);
        }
    }
}

/// The ISSUE 3 acceptance criterion: a planned merge join over two
/// hash-co-partitioned inputs runs with explicit `Exchange` nodes in
/// EXPLAIN — split both inputs on the join key, join partition pairs on
/// worker threads, gather with the order-preserving merging shuffle —
/// and returns byte-identical rows *and exact codes* vs the serial
/// single-thread plan.
#[test]
fn planned_merge_join_with_explicit_exchanges_matches_serial() {
    use ovc_core::Row;
    use ovc_plan::{Catalog, JoinType, LogicalPlan, Planner, Table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0xE8C4A);
    let mk = |rng: &mut StdRng, n: usize| -> Vec<Row> {
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..25u64), rng.gen_range(0..50u64)]))
            .collect()
    };
    for join_type in [JoinType::Inner, JoinType::LeftOuter, JoinType::LeftSemi] {
        let mut catalog = Catalog::new();
        catalog.register("l", Table::unsorted(mk(&mut rng, 400)));
        catalog.register("r", Table::unsorted(mk(&mut rng, 350)));
        let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, join_type);
        let base = PlannerConfig::default()
            .with_memory_rows(64)
            .with_fan_in(8)
            .with_preference(Preference::ForceSortBased);

        // Serial plan: no exchanges anywhere.
        let serial_plan = Planner::new(&catalog, base).plan(&q).expect("plans");
        assert_eq!(serial_plan.count_op("Exchange"), 0, "{serial_plan}");

        // Parallel plan: split both join inputs, gather above the join.
        let par_cfg = base.with_dop(4).with_parallel_threshold(1);
        let par_plan = Planner::new(&catalog, par_cfg).plan(&q).expect("plans");
        assert_eq!(
            par_plan.count_op("Exchange"),
            3,
            "two splits + one gather ({join_type:?}):\n{par_plan}"
        );
        assert_eq!(par_plan.exchanges().len(), 3, "{par_plan}");
        let ex = par_plan.explain();
        assert!(ex.contains("Exchange -> hash(c0)x4"), "{ex}");
        assert!(ex.contains("Exchange -> single"), "{ex}");
        assert!(ex.contains("part=hash(c0)x4"), "{ex}");

        let run = |plan: &ovc_plan::PhysicalPlan| -> Vec<OvcRow> {
            let stats = Stats::new_shared();
            execute(
                plan,
                &catalog,
                &stats,
                &ExecOptions {
                    verify_trusted: true,
                    ..Default::default()
                },
            )
            .into_coded()
        };
        let serial = run(&serial_plan);
        let parallel = run(&par_plan);
        assert_eq!(parallel, serial, "{join_type:?}: rows and codes");
        // All three plans sort their inputs on the 1-column join key, so
        // the join output (semi included) is coded at arity 1.
        let pairs: Vec<(Row, Ovc)> = serial.into_iter().map(|r| (r.row, r.code)).collect();
        exact(&pairs, 1);
    }
}

/// The ISSUE 5 acceptance criterion, grouping half: a planned `dop=4`
/// group-by EXPLAINs with `Exchange -> hash(group key) x4` below the
/// grouping and `Exchange -> single` above it, runs on real threads via
/// `split_threaded`/`merge_threaded`, and produces rows and codes
/// byte-identical to the `dop=1` plan — all six aggregates included.
#[test]
fn planned_group_by_with_explicit_exchanges_matches_serial() {
    use ovc_core::Row;
    use ovc_plan::{Aggregate, Catalog, LogicalPlan, Planner, Table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x6A0B);
    let rows: Vec<Row> = (0..500)
        .map(|_| {
            Row::new(vec![
                rng.gen_range(0..20u64),
                rng.gen_range(0..10u64),
                rng.gen_range(0..100u64),
            ])
        })
        .collect();
    let mut catalog = Catalog::new();
    catalog.register("t", Table::unsorted(rows));
    let q = LogicalPlan::scan("t").group_by(
        1,
        vec![
            Aggregate::Count,
            Aggregate::Sum(2),
            Aggregate::Min(2),
            Aggregate::Max(2),
            Aggregate::First(2),
            Aggregate::Last(2),
        ],
    );
    let base = PlannerConfig::default()
        .with_memory_rows(64)
        .with_fan_in(8)
        .with_preference(Preference::ForceSortBased);

    // Serial plan: no exchanges anywhere.
    let serial_plan = Planner::new(&catalog, base).plan(&q).expect("plans");
    assert_eq!(serial_plan.count_op("Exchange"), 0, "{serial_plan}");

    // Parallel plan: split below the grouping, gather above it.
    let par_cfg = base.with_dop(4).with_parallel_threshold(1);
    let par_plan = Planner::new(&catalog, par_cfg).plan(&q).expect("plans");
    assert_eq!(
        par_plan.count_op("Exchange"),
        2,
        "one split + one gather:\n{par_plan}"
    );
    let ex = par_plan.explain();
    assert!(ex.contains("Exchange -> hash(c0)x4"), "{ex}");
    assert!(ex.contains("Exchange -> single"), "{ex}");
    assert!(ex.contains("part=hash(c0)x4"), "{ex}");
    assert!(ex.contains("dop=4"), "{ex}");
    assert_eq!(par_plan.props.dop, 4);

    let run = |plan: &ovc_plan::PhysicalPlan| -> Vec<OvcRow> {
        let stats = Stats::new_shared();
        let out = execute(
            plan,
            &catalog,
            &stats,
            &ExecOptions {
                verify_trusted: true,
                ..Default::default()
            },
        )
        .into_coded();
        // Stats snapshots account every comparison: the grouping's
        // per-row boundary tests land in the caller's counters at any
        // dop (500 input rows at minimum, plus sort and exchange work).
        assert!(stats.ovc_cmps() >= 500, "boundary tests accounted");
        out
    };
    let serial = run(&serial_plan);
    let parallel = run(&par_plan);
    assert_eq!(parallel, serial, "rows and codes");
    let pairs: Vec<(Row, Ovc)> = serial.into_iter().map(|r| (r.row, r.code)).collect();
    exact(&pairs, 1);
}

/// The ISSUE 5 acceptance criterion, set-operation half: every planned
/// `dop=4` set operation EXPLAINs with `Exchange -> hash(whole row) x4`
/// under both inputs plus a gather, and answers byte-identically to the
/// serial plan — all six operations.
#[test]
fn planned_set_ops_with_explicit_exchanges_match_serial() {
    use ovc_core::Row;
    use ovc_plan::{Catalog, LogicalPlan, Planner, SetOp, Table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mk = |seed: u64, n: usize| -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..15u64), rng.gen_range(0..4u64)]))
            .collect()
    };
    for op in [
        SetOp::Union,
        SetOp::UnionAll,
        SetOp::Intersect,
        SetOp::IntersectAll,
        SetOp::Except,
        SetOp::ExceptAll,
    ] {
        let mut catalog = Catalog::new();
        catalog.register("l", Table::unsorted(mk(0xA1, 400)));
        catalog.register("r", Table::unsorted(mk(0xB2, 350)));
        let q = LogicalPlan::scan("l").set_op(LogicalPlan::scan("r"), op);
        let base = PlannerConfig::default()
            .with_memory_rows(64)
            .with_fan_in(8)
            .with_preference(Preference::ForceSortBased);

        let serial_plan = Planner::new(&catalog, base).plan(&q).expect("plans");
        assert_eq!(serial_plan.count_op("Exchange"), 0, "{serial_plan}");

        let par_cfg = base.with_dop(4).with_parallel_threshold(1);
        let par_plan = Planner::new(&catalog, par_cfg).plan(&q).expect("plans");
        assert_eq!(
            par_plan.count_op("Exchange"),
            3,
            "two splits + one gather ({op:?}):\n{par_plan}"
        );
        let ex = par_plan.explain();
        assert!(ex.contains("Exchange -> hash(c0,c1)x4"), "{ex}");
        assert!(ex.contains("Exchange -> single"), "{ex}");

        let run = |plan: &ovc_plan::PhysicalPlan| -> Vec<OvcRow> {
            let stats = Stats::new_shared();
            execute(
                plan,
                &catalog,
                &stats,
                &ExecOptions {
                    verify_trusted: true,
                    ..Default::default()
                },
            )
            .into_coded()
        };
        let serial = run(&serial_plan);
        let parallel = run(&par_plan);
        assert_eq!(parallel, serial, "{op:?}: rows and codes");
        let pairs: Vec<(Row, Ovc)> = serial.into_iter().map(|r| (r.row, r.code)).collect();
        exact(&pairs, 2);
    }
}

/// Skew and empty partitions: a group-by whose keys all hash to one
/// partition (every other partition empty) still matches serial.
#[test]
fn skewed_planned_group_by_matches_serial() {
    use ovc_core::Row;
    use ovc_plan::{Aggregate, Catalog, LogicalPlan, Planner, Table};

    // One hot group key — all rows share it, so one partition gets
    // everything and dop-1 partitions run empty.
    let rows: Vec<Row> = (0..300).map(|i| Row::new(vec![7, i % 13])).collect();
    let mut catalog = Catalog::new();
    catalog.register("t", Table::unsorted(rows));
    let q = LogicalPlan::scan("t").group_by(1, vec![Aggregate::Count, Aggregate::Sum(1)]);
    let base = PlannerConfig::default()
        .with_memory_rows(64)
        .with_preference(Preference::ForceSortBased);
    let run = |cfg: PlannerConfig| -> Vec<OvcRow> {
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        let stats = Stats::new_shared();
        execute(
            &plan,
            &catalog,
            &stats,
            &ExecOptions {
                verify_trusted: true,
                ..Default::default()
            },
        )
        .into_coded()
    };
    let serial = run(base);
    let parallel = run(base.with_dop(4).with_parallel_threshold(1));
    assert_eq!(parallel, serial);
    assert_eq!(serial.len(), 1, "a single hot group");
}

/// The prefix-hash partial-aggregate decomposition at the operator
/// level: exchange hashed on the full sort key (groups split across
/// partitions), per-partition `GroupPartial` workers, gathering merge,
/// `GroupFinal` — byte-identical to the serial grouping for all six
/// aggregates, across partition counts and a skewed distribution.
#[test]
fn prefix_hash_partial_aggregate_matches_serial() {
    use ovc_exec::exchange::partition;
    use ovc_exec::parallel::group_partitions_partial;
    use ovc_exec::{Aggregate, GroupAggregate, GroupFinal};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0xF00D);
    // Skewed: group 0 holds half of all rows.
    let mut rows: Vec<Row> = (0..600)
        .map(|_| {
            let g = if rng.gen_bool(0.5) {
                0
            } else {
                rng.gen_range(1..6u64)
            };
            Row::new(vec![g, rng.gen_range(0..25u64), rng.gen_range(0..50u64)])
        })
        .collect();
    rows.sort();
    let aggs = vec![
        Aggregate::Count,
        Aggregate::Sum(2),
        Aggregate::Min(2),
        Aggregate::Max(2),
        Aggregate::First(2),
        Aggregate::Last(2),
    ];
    let serial: Vec<OvcRow> = GroupAggregate::new(
        VecStream::from_sorted_rows(rows.clone(), 3),
        1,
        aggs.clone(),
        Stats::new_shared(),
    )
    .collect();
    for parts in [2usize, 4] {
        let stats = Stats::new_shared();
        let split = split_threaded(
            CodedBatch::from_sorted_rows(rows.clone(), 3),
            parts,
            partition::by_key_hash(3, parts),
            16,
        )
        .collect_all();
        let partials = group_partitions_partial(split, 1, aggs.clone(), &stats);
        let gathered = merge_threaded(partials, 3, 16, &stats);
        let out: Vec<OvcRow> =
            GroupFinal::new(gathered, 1, aggs.clone(), std::sync::Arc::clone(&stats)).collect();
        assert_eq!(out, serial, "parts={parts}");
        let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
        exact(&pairs, 1);
    }
}

/// Regression (code review): the partitioning enforcer must not shuffle
/// streams whose trusted order is longer than the ascending join prefix
/// — a table stored `[c0 asc, c1 desc]` satisfies an ascending 1-column
/// join requirement via TrustSorted, but the threaded exchange path is
/// ascending-only, so the join stays serial (and correct) despite the
/// dop directive.
#[test]
fn mixed_direction_trusted_inputs_keep_joins_serial() {
    use ovc_core::{Direction, Row, SortSpec};
    use ovc_plan::{Catalog, JoinType, LogicalPlan, Planner, Table};

    let spec = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]);
    let mk = |seed: u64| -> Vec<Row> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..300)
            .map(|_| Row::new(vec![rng.gen_range(0..15u64), rng.gen_range(0..15u64)]))
            .collect();
        rows.sort_by(|a, b| spec.cmp_keys(a.key(2), b.key(2)));
        rows
    };
    let mut catalog = Catalog::new();
    catalog.register("l", Table::sorted_by(mk(7), spec.clone()));
    catalog.register("r", Table::sorted_by(mk(8), spec.clone()));
    for join_type in [JoinType::Inner, JoinType::LeftSemi] {
        let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, join_type);
        let cfg = PlannerConfig::default()
            .with_preference(Preference::ForceSortBased)
            .with_dop(4)
            .with_parallel_threshold(1);
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        assert_eq!(
            plan.count_op("Exchange"),
            0,
            "mixed-direction trusted inputs must not be shuffled:\n{plan}"
        );
        assert_eq!(plan.elided_sorts().len(), 2, "{plan}");
        let stats = Stats::new_shared();
        let out = execute(
            &plan,
            &catalog,
            &stats,
            &ExecOptions {
                verify_trusted: true,
                ..Default::default()
            },
        )
        .into_coded();
        // Semi joins preserve the left spec; inner joins code at the
        // ascending join arity.
        match join_type {
            JoinType::LeftSemi => {
                let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
                ovc_core::derive::assert_codes_exact_spec(&pairs, &spec);
            }
            _ => {
                let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
                exact(&pairs, 1);
            }
        }
    }
}

/// Deterministic spot-check of the planner threshold: small inputs stay
/// serial even when a dop is configured, large ones go parallel.
#[test]
fn dop_threshold_gates_parallel_sorts() {
    let rows: Vec<Row> = (0..100).map(|i| Row::new(vec![i % 7])).collect();
    let catalog = figure5::catalog_unsorted(rows.clone(), rows);
    let cfg = PlannerConfig::default()
        .with_preference(Preference::ForceSortBased)
        .with_dop(8)
        .with_parallel_threshold(1000);
    let plan = figure5::plan_intersect(&catalog, cfg).expect("plans");
    assert_eq!(plan.props.dop, 1, "below threshold stays serial:\n{plan}");
    let plan = figure5::plan_intersect(&catalog, cfg.with_parallel_threshold(10)).expect("plans");
    assert_eq!(plan.props.dop, 8, "above threshold goes parallel:\n{plan}");
    assert!(plan.explain().contains("dop=8"), "{plan}");
}
