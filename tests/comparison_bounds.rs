//! The paper's headline complexity claim (Section 3): with tree-of-losers
//! priority queues and offset-value coding, "the sum of all increments and
//! thus the count of all column value comparisons are limited to N × K.
//! Importantly, there is no log(N) multiplier."  These tests measure the
//! claim directly with the instrumented comparators, including the
//! linear-growth (no log factor) check across doubling input sizes.

use std::sync::Arc;

use ovc_core::{Row, Stats};
use ovc_exec::{JoinType, MergeJoin};
use ovc_sort::{external_sort_collect, sort_rows_ovc, RunGenStrategy, SortConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rows(n: usize, k: usize, domain: u64, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Row::new((0..k).map(|_| rng.gen_range(0..domain)).collect()))
        .collect()
}

#[test]
fn run_generation_within_n_times_k() {
    for (n, k, domain) in [(1000, 2, 3), (1000, 4, 3), (5000, 3, 2), (2000, 6, 10)] {
        let stats = Stats::new_shared();
        let _ = sort_rows_ovc(rows(n, k, domain, 9), k, &stats);
        assert!(
            stats.col_value_cmps() <= (n * k) as u64,
            "N={n} K={k}: {} > N*K",
            stats.col_value_cmps()
        );
    }
}

#[test]
fn full_external_sort_within_levels_times_n_k() {
    // Two merge levels (fan-in forces them) plus run generation: <= 3*N*K.
    let n = 4000;
    let k = 3;
    let stats = Stats::new_shared();
    let cfg = SortConfig::new(k, 250).with_fan_in(4);
    let _ = external_sort_collect(rows(n, k, 4, 10), cfg, &stats);
    let levels = 3u64; // run gen + two merge levels
    assert!(
        stats.col_value_cmps() <= levels * (n * k) as u64,
        "{} > levels*N*K",
        stats.col_value_cmps()
    );
}

#[test]
fn no_log_n_factor_in_column_comparisons() {
    // Column comparisons must grow linearly in N: doubling N should
    // roughly double them, never multiply by 2·log-ish factors.
    let k = 3;
    let mut counts = Vec::new();
    for exp in 0..4 {
        let n = 2000usize << exp;
        let stats = Stats::new_shared();
        let _ = sort_rows_ovc(rows(n, k, 4, 11), k, &stats);
        counts.push(stats.col_value_cmps() as f64);
    }
    for w in counts.windows(2) {
        let growth = w[1] / w[0];
        assert!(
            growth < 2.3,
            "column comparisons grew superlinearly: factor {growth:.2} on doubling"
        );
    }
    // Contrast: the quicksort baseline *does* carry the log factor, so its
    // comparison count is far higher at every size.
    let n = 16000;
    let s_ovc = Stats::new_shared();
    let s_plain = Stats::new_shared();
    let _ = sort_rows_ovc(rows(n, k, 4, 12), k, &s_ovc);
    let _ = ovc_baseline::sort_rows_plain(rows(n, k, 4, 12), k, &s_plain);
    assert!(s_ovc.col_value_cmps() * 3 < s_plain.col_value_cmps());
}

#[test]
fn merge_join_column_comparisons_bounded() {
    for n in [500usize, 2000, 8000] {
        let k = 2;
        let stats = Stats::new_shared();
        let l = ovc_core::VecStream::from_unsorted_rows(rows(n, k, 8, 13), k);
        let r = ovc_core::VecStream::from_unsorted_rows(rows(n, k, 8, 14), k);
        let join = MergeJoin::new(l, r, k, JoinType::Inner, k, k, Arc::clone(&stats));
        let _ = join.count();
        assert!(
            stats.col_value_cmps() <= (2 * n * k) as u64,
            "join at N={n}: {} > 2N*K",
            stats.col_value_cmps()
        );
    }
}

#[test]
fn unique_first_column_costs_n_column_accesses() {
    // Section 7's extreme case: "with a unique first column, the entire
    // operation accesses not N × K but only N column values, each only
    // once to prime offset-value codes".  Priming happens when leaf codes
    // initialize (no counter); every further comparison is decided by
    // codes, so the
    // counted column comparisons during the sort are zero.
    let n = 4096;
    let mut shuffled: Vec<Row> = (0..n).map(|i| Row::new(vec![i as u64, 7, 7, 7])).collect();
    // Deterministic shuffle.
    let mut rng = StdRng::seed_from_u64(15);
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.gen_range(0..=i));
    }
    let stats = Stats::new_shared();
    let out = sort_rows_ovc(shuffled, 4, &stats);
    assert_eq!(out.len(), n);
    assert_eq!(
        stats.col_value_cmps(),
        0,
        "a unique first column lets codes decide every comparison"
    );
}

#[test]
fn replacement_selection_bounded_by_constant_times_n_k() {
    // Replacement selection pays one run-assignment comparison per row
    // (<= K columns), the exact-output derivation (<= K), plus tree
    // comparisons bounded as usual: comfortably within 4*N*K.
    let n = 5000;
    let k = 3;
    let stats = Stats::new_shared();
    let runs = ovc_sort::replacement::generate_runs_replacement(rows(n, k, 4, 16), k, 64, &stats);
    assert!(!runs.is_empty());
    assert!(
        stats.col_value_cmps() <= (4 * n * k) as u64,
        "{} > 4*N*K",
        stats.col_value_cmps()
    );
    // And merging those runs stays within N*K again.
    let before = stats.snapshot();
    let merged = ovc_sort::merge_runs_to_run(runs, k, &stats);
    assert_eq!(merged.len(), n);
    let delta = stats.snapshot().since(&before);
    assert!(delta.col_value_cmps <= (n * k) as u64);
}

#[test]
fn generate_runs_strategies_comparison_ordering() {
    // OVC PQ <= quicksort in column comparisons, at every size tested.
    for n in [1000usize, 4000] {
        let k = 4;
        let data = rows(n, k, 3, 17);
        let s_pq = Stats::new_shared();
        let s_qs = Stats::new_shared();
        let _ = ovc_sort::generate_runs(
            data.clone(),
            k,
            256,
            RunGenStrategy::OvcPriorityQueue,
            &s_pq,
        );
        let _ = ovc_sort::generate_runs(data, k, 256, RunGenStrategy::Quicksort, &s_qs);
        assert!(s_pq.col_value_cmps() < s_qs.col_value_cmps());
    }
}
