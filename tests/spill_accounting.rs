//! Spill accounting across the Figure 6 plans and the storage substrates:
//! conservation laws (bytes written == bytes read back), the paper's
//! "sort spills once, hash spills twice" shape at several scales, and the
//! prefix-truncation byte savings.

use std::sync::Arc;

use ovc_baseline::hash_intersect_distinct;
use ovc_core::{Row, Stats};
use ovc_exec::plans::{sort_intersect_distinct, IntersectConfig};
use ovc_sort::{external_sort, MemoryRunStorage, RunStorage, SortConfig};
use ovc_storage::EncodedRunStorage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table(n: usize, domain: u64, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Row::new(vec![rng.gen_range(0..domain)]))
        .collect()
}

#[test]
fn sort_spill_conservation() {
    let rows = table(3000, 500, 1);
    let stats = Stats::new_shared();
    let mut storage = EncodedRunStorage::new(Arc::clone(&stats));
    let out: usize = external_sort(rows, SortConfig::new(1, 200), &mut storage, &stats).count();
    assert_eq!(out, 3000);
    assert_eq!(stats.rows_spilled(), stats.rows_read_back());
    assert_eq!(stats.bytes_spilled(), stats.bytes_read_back());
    assert_eq!(storage.stored_runs(), 0, "every spilled run consumed");
}

#[test]
fn prefix_truncation_shrinks_spill_bytes() {
    // Same data, wide keys with few distinct values: encoded spill must be
    // much smaller than the flat 8-bytes-per-column image.
    let mut rng = StdRng::seed_from_u64(2);
    let rows: Vec<Row> = (0..4000)
        .map(|_| {
            Row::new(vec![
                rng.gen_range(0..3u64),
                rng.gen_range(0..3u64),
                rng.gen_range(0..3u64),
                rng.gen_range(0..3u64),
            ])
        })
        .collect();
    let stats = Stats::new_shared();
    let mut storage = EncodedRunStorage::new(Arc::clone(&stats));
    let _ = external_sort(rows, SortConfig::new(4, 500), &mut storage, &stats).count();
    let flat = stats.rows_spilled() * 5 * 8; // 4 cols + code per row
    assert!(
        stats.bytes_spilled() * 2 < flat,
        "truncation saved too little: {} vs flat {}",
        stats.bytes_spilled(),
        flat
    );
}

#[test]
fn figure6_shape_across_scales() {
    // The who-wins shape must hold across input sizes (with the paper's
    // 10:1 input-to-memory ratio).
    for n in [2000usize, 8000] {
        let t1 = table(n, (n as u64) * 3 / 4, 3);
        let t2 = table(n, (n as u64) * 3 / 4, 4);
        let mem = n / 10;

        let hs = Stats::new_shared();
        let _ = hash_intersect_distinct(t1.clone(), t2.clone(), mem, &hs);

        let ss = Stats::new_shared();
        let mut s1 = MemoryRunStorage::new(Arc::clone(&ss));
        let mut s2 = MemoryRunStorage::new(Arc::clone(&ss));
        let cfg = IntersectConfig {
            key_len: 1,
            memory_rows: mem,
            fan_in: 64,
        };
        let _ = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &ss);

        assert!(
            ss.rows_spilled() <= 2 * n as u64,
            "n={n}: sort spills each row at most once ({})",
            ss.rows_spilled()
        );
        assert!(
            hs.rows_spilled() > ss.rows_spilled(),
            "n={n}: hash plan must spill more (hash {} vs sort {})",
            hs.rows_spilled(),
            ss.rows_spilled()
        );
    }
}

#[test]
fn in_memory_plans_spill_nothing() {
    let t1 = table(500, 100, 5);
    let t2 = table(500, 100, 6);
    let hs = Stats::new_shared();
    let _ = hash_intersect_distinct(t1.clone(), t2.clone(), 10_000, &hs);
    assert_eq!(hs.rows_spilled(), 0);

    let ss = Stats::new_shared();
    let mut s1 = MemoryRunStorage::new(Arc::clone(&ss));
    let mut s2 = MemoryRunStorage::new(Arc::clone(&ss));
    let cfg = IntersectConfig {
        key_len: 1,
        memory_rows: 10_000,
        fan_in: 64,
    };
    let _ = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &ss);
    assert_eq!(ss.rows_spilled(), 0);
}

#[test]
fn lsm_compaction_write_amplification_bounded() {
    // Stepped-merge forests re-write each row once per level: total
    // spilled rows <= (depth + 1) * ingested rows.
    let stats = Stats::new_shared();
    let mut forest =
        ovc_storage::LsmForest::new(1, ovc_storage::LsmConfig { fanout: 4 }, Arc::clone(&stats));
    let mut rng = StdRng::seed_from_u64(7);
    let mut n = 0u64;
    for _ in 0..32 {
        let batch: Vec<Row> = (0..100)
            .map(|_| Row::new(vec![rng.gen_range(0..1000u64)]))
            .collect();
        n += batch.len() as u64;
        forest.ingest(batch);
    }
    let bound = (forest.depth() as u64 + 1) * n;
    assert!(
        stats.rows_spilled() <= bound,
        "write amplification {} exceeds (depth+1)*N = {}",
        stats.rows_spilled(),
        bound
    );
}
