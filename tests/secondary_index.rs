//! Index intersection and index join (Section 4.11's closing paragraph):
//! "Sorted lists of row identifiers are similarly useful for index
//! intersection and index join, i.e., 'covering' a query in 'index-only
//! retrieval' with multiple secondary indexes of the same table."
//!
//! These compose the storage crate's RID streams with the execution
//! crate's set operations and merge join — exactly the layering the paper
//! envisions, with offset-value codes crossing the crate boundary.

use std::sync::Arc;

use ovc_core::derive::assert_codes_exact;
use ovc_core::stream::collect_pairs;
use ovc_core::{Row, Stats, VecStream};
use ovc_exec::{JoinType, MergeJoin, SetOp, SetOperation};
use ovc_storage::SecondaryIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_table(n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Row::new(vec![rng.gen_range(0..12u64), rng.gen_range(0..12u64)]))
        .collect()
}

/// `WHERE a = x AND b = y` via two secondary indexes: intersect the RID
/// streams with the sort-based set operation — codes flow from index
/// storage through the intersection.
#[test]
fn index_intersection_for_and_predicates() {
    let t = base_table(1000, 1);
    let ia = SecondaryIndex::build(&t, 0);
    let ib = SecondaryIndex::build(&t, 1);
    let stats = Stats::new_shared();

    for (x, y) in [(3u64, 7u64), (0, 0), (11, 5)] {
        let rids_a = ia.scan_eq(x);
        let rids_b = ib.scan_eq(y);
        let inter = SetOperation::new(rids_a, rids_b, SetOp::Intersect, Arc::clone(&stats));
        let pairs = collect_pairs(inter);
        assert_codes_exact(&pairs, 1);
        let expect: Vec<u64> = t
            .iter()
            .enumerate()
            .filter(|(_, r)| r.cols()[0] == x && r.cols()[1] == y)
            .map(|(i, _)| i as u64)
            .collect();
        let got: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[0]).collect();
        assert_eq!(got, expect, "AND predicate ({x},{y})");
    }
}

/// Index intersection with range predicates: both sides are tree-of-losers
/// merges of RID lists before the intersection even starts.
#[test]
fn range_index_intersection() {
    let t = base_table(2000, 2);
    let ia = SecondaryIndex::build(&t, 0);
    let ib = SecondaryIndex::build(&t, 1);
    let stats = Stats::new_shared();

    let ra = VecStream::from_coded(ia.scan_range(2, 8, &stats).collect(), 1);
    let rb = VecStream::from_coded(ib.scan_range(5, 11, &stats).collect(), 1);
    let inter = SetOperation::new(ra, rb, SetOp::Intersect, Arc::clone(&stats));
    let pairs = collect_pairs(inter);
    assert_codes_exact(&pairs, 1);
    let expect = t
        .iter()
        .filter(|r| (2..8).contains(&r.cols()[0]) && (5..11).contains(&r.cols()[1]))
        .count();
    assert_eq!(pairs.len(), expect);
}

/// Index join / covering: answer `SELECT a, b` without touching the base
/// table by merge-joining two indexes' RID-order scans on the RID.
#[test]
fn index_join_covers_query_without_base_table() {
    let t = base_table(1500, 3);
    let ia = SecondaryIndex::build(&t, 0);
    let ib = SecondaryIndex::build(&t, 1);
    let stats = Stats::new_shared();

    // Each scan: (rid, value) sorted by rid, codes arity 1.
    let sa = ia.scan_by_rid();
    let sb = ib.scan_by_rid();
    let join = MergeJoin::new(sa, sb, 1, JoinType::Inner, 2, 2, Arc::clone(&stats));
    let pairs = collect_pairs(join);
    assert_codes_exact(&pairs, 1);
    assert_eq!(pairs.len(), t.len(), "every RID matches exactly once");
    for (row, _) in &pairs {
        let (rid, a, b) = (row.cols()[0], row.cols()[1], row.cols()[2]);
        assert_eq!(t[rid as usize].cols()[0], a);
        assert_eq!(t[rid as usize].cols()[1], b);
    }
    // RIDs are unique, so the join's merge logic decides every comparison
    // by code after priming: the N*K bound collapses to ~0 counted
    // comparisons (Section 7's unique-column extreme case).
    assert!(
        stats.col_value_cmps() <= t.len() as u64,
        "covering index join comparisons: {}",
        stats.col_value_cmps()
    );
}

/// OR predicates: union of RID streams (distinct), codes intact.
#[test]
fn index_union_for_or_predicates() {
    let t = base_table(800, 4);
    let ia = SecondaryIndex::build(&t, 0);
    let stats = Stats::new_shared();
    let r1 = ia.scan_eq(1);
    let r2 = ia.scan_eq(9);
    let union = SetOperation::new(r1, r2, SetOp::Union, Arc::clone(&stats));
    let pairs = collect_pairs(union);
    assert_codes_exact(&pairs, 1);
    let expect = t
        .iter()
        .filter(|r| r.cols()[0] == 1 || r.cols()[0] == 9)
        .count();
    assert_eq!(pairs.len(), expect);
}

/// The fetch path: RID stream -> base rows, order = table order.
#[test]
fn fetch_after_intersection() {
    let t = base_table(400, 5);
    let ia = SecondaryIndex::build(&t, 0);
    let ib = SecondaryIndex::build(&t, 1);
    let stats = Stats::new_shared();
    let inter = SetOperation::new(
        ia.scan_eq(6),
        ib.scan_eq(6),
        SetOp::Intersect,
        Arc::clone(&stats),
    );
    let rows: Vec<&Row> = SecondaryIndex::fetch(&t, inter).collect();
    assert!(rows.iter().all(|r| r.cols()[0] == 6 && r.cols()[1] == 6));
}
