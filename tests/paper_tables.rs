//! Verbatim reproduction of the paper's Tables 1, 2, and 3 — the fixtures
//! every reviewer will check first.

use ovc_core::compare::compare_same_base;
use ovc_core::derive::derive_codes;
use ovc_core::desc::{derive_desc_code, DescOvc};
use ovc_core::{table1, Ovc, Stats};
use ovc_exec::Filter;
use std::cmp::Ordering;

/// Table 1: both code columns for the seven-row running example.
#[test]
fn table1_full_reproduction() {
    let rows = table1::rows();
    // Ascending: 405, 112, 308, 309, 0, 203, 107.
    let asc = derive_codes(&rows, table1::ARITY);
    let asc_decimals: Vec<u64> = asc.iter().map(|c| c.paper_decimal()).collect();
    assert_eq!(asc_decimals, table1::asc_paper_decimals());

    // Descending: 95, 388, 192, 191, 400, 297, 393.
    let stats = Stats::default();
    let mut desc_decimals = Vec::new();
    let mut prev: Option<&ovc_core::Row> = None;
    for row in &rows {
        let code = match prev {
            None => DescOvc::initial(row.key(4)),
            Some(p) => derive_desc_code(p.key(4), row.key(4), &stats),
        };
        desc_decimals.push(code.paper_decimal(4, table1::DOMAIN));
        prev = Some(row);
    }
    assert_eq!(desc_decimals, table1::desc_paper_decimals());

    // Offsets column: 0, 3, 1, 1, 4, 2, 3.
    let offsets: Vec<usize> = asc.iter().map(|c| c.offset(4)).collect();
    assert_eq!(offsets, vec![0, 3, 1, 1, 4, 2, 3]);
}

/// Table 2: the three decision cases against base (3,4,2,5).
#[test]
fn table2_full_reproduction() {
    let stats = Stats::default();
    type Table2Case = ([u64; 4], [u64; 4], u64, u64, u64);
    let cases: [Table2Case; 3] = [
        // keys B, C; codes to base; expected loser-to-winner code.
        ([3, 5, 8, 2], [3, 4, 6, 1], 305, 206, 305),
        ([3, 4, 3, 8], [3, 4, 9, 1], 203, 209, 209),
        ([3, 7, 4, 7], [3, 7, 4, 9], 307, 307, 109),
    ];
    let base = [3u64, 4, 2, 5];
    for (b_key, c_key, b_dec, c_dec, loser_dec) in cases {
        // Derive the codes to the base exactly as the table states them.
        let mut b_code = ovc_core::compare::derive_code(&base, &b_key, &stats);
        let mut c_code = ovc_core::compare::derive_code(&base, &c_key, &stats);
        assert_eq!(b_code.paper_decimal(), b_dec);
        assert_eq!(c_code.paper_decimal(), c_dec);
        let ord = compare_same_base(&b_key, &c_key, &mut b_code, &mut c_code, &stats);
        let loser_code = match ord {
            Ordering::Less => c_code,
            Ordering::Greater => b_code,
            Ordering::Equal => panic!("table 2 has no equal keys"),
        };
        assert_eq!(loser_code.paper_decimal(), loser_dec);
    }
}

/// Table 3: codes after a filter keeping only the first and last rows.
#[test]
fn table3_full_reproduction() {
    let rows = table1::rows();
    let keep = [rows[0].clone(), rows[6].clone()];
    let input = ovc_core::VecStream::from_sorted_rows(rows, 4);
    let out: Vec<(Vec<u64>, u64)> =
        Filter::new(input, |r| keep.contains(r), ovc_core::Stats::new_shared())
            .map(|r| (r.row.cols().to_vec(), r.code.paper_decimal()))
            .collect();
    assert_eq!(out, vec![(vec![5, 7, 3, 9], 405), (vec![5, 9, 3, 7], 309),]);
}

/// The worked example of Section 3 / Figure 2: after "061" leaves the
/// root, its successor "092" loses to "087" with codes deciding all three
/// comparisons — no string (column) comparison required.
#[test]
fn figure2_leaf_to_root_comparisons_decided_by_codes() {
    let stats = Stats::default();
    // Keys as one column per character.
    let winner_061 = [0u64, 6, 1];
    let k092 = [0u64, 9, 2];
    let k503 = [5u64, 0, 3];
    let k087 = [0u64, 8, 7];
    let k154 = [1u64, 5, 4];
    // All coded relative to prior winner "061".
    let mut c092 = ovc_core::compare::derive_code(&winner_061, &k092, &stats);
    let mut c503 = ovc_core::compare::derive_code(&winner_061, &k503, &stats);
    let mut c087 = ovc_core::compare::derive_code(&winner_061, &k087, &stats);
    let mut c154 = ovc_core::compare::derive_code(&winner_061, &k154, &stats);
    assert_eq!(c092.offset(3), 1);
    assert_eq!(c503.offset(3), 0);

    let before = stats.snapshot();
    // "092" vs "503": offsets decide (1 vs 0) — "092" wins.
    assert_eq!(
        compare_same_base(&k092, &k503, &mut c092, &mut c503, &stats),
        Ordering::Less
    );
    // "092" vs "087": equal offsets, values 9 vs 8 decide — "087" wins.
    assert_eq!(
        compare_same_base(&k092, &k087, &mut c092, &mut c087, &stats),
        Ordering::Greater
    );
    // "087" vs "154": offsets decide (1 vs 0) — "087" reaches the root.
    assert_eq!(
        compare_same_base(&k087, &k154, &mut c087, &mut c154, &stats),
        Ordering::Less
    );
    let delta = stats.snapshot().since(&before);
    assert_eq!(
        delta.col_value_cmps, 0,
        "not a single string comparison is required (Section 3)"
    );
    assert_eq!(delta.ovc_cmps, 3);
}

/// The duplicate-detection claim of Section 3: "the sort can detect
/// duplicate rows by offsets equal to the column count and, after the
/// sort, in-stream aggregation can detect group boundaries by offsets
/// smaller than the grouping key."
#[test]
fn duplicate_and_boundary_detection_by_offset() {
    let rows = table1::rows();
    let codes = derive_codes(&rows, 4);
    let dup_count = codes.iter().filter(|c| c.is_duplicate()).count();
    assert_eq!(dup_count, 1);
    // Grouping on the first two columns: boundaries where offset < 2.
    let boundaries = codes
        .iter()
        .filter(|c| c.is_valid() && c.offset(4) < 2)
        .count();
    assert_eq!(boundaries, 3, "groups (5,7), (5,8), (5,9)");
    let _ = Ovc::duplicate();
}
