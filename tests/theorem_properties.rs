//! Property-based tests of the paper's Section 4 theory: the proposition,
//! the new theorem (ascending `max` / descending `min`), Iyer's two
//! corollaries, and the filter corollary — all on randomized keys.

use ovc_core::compare::derive_code;
use ovc_core::desc::{combine_desc, derive_desc_code, DescOvc};
use ovc_core::theorem::{clamp_to_prefix, combine, OvcAccumulator};
use ovc_core::{Ovc, Row, Stats};
use proptest::prelude::*;

/// Strategy: a sorted triple of distinct-ish keys with small domains
/// (small domains maximize shared prefixes, the interesting case).
fn sorted_triple(arity: usize) -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
    let key = prop::collection::vec(0u64..4, arity);
    (key.clone(), key.clone(), key).prop_map(|(mut a, mut b, mut c)| {
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        a = v[0].clone();
        b = v[1].clone();
        c = v[2].clone();
        (a, b, c)
    })
}

proptest! {
    /// Theorem: ovc(A,C) = max(ovc(A,B), ovc(B,C)) for A <= B <= C.
    #[test]
    fn ascending_theorem((a, b, c) in sorted_triple(4)) {
        let stats = Stats::default();
        let ab = derive_code(&a, &b, &stats);
        let bc = derive_code(&b, &c, &stats);
        let ac = derive_code(&a, &c, &stats);
        prop_assert_eq!(combine(ab, bc), ac);
    }

    /// Dual theorem for descending codes: min instead of max.
    #[test]
    fn descending_theorem((a, b, c) in sorted_triple(4)) {
        let stats = Stats::default();
        let ab = derive_desc_code(&a, &b, &stats);
        let bc = derive_desc_code(&b, &c, &stats);
        let ac = derive_desc_code(&a, &c, &stats);
        prop_assert_eq!(combine_desc(ab, bc), ac);
    }

    /// Proposition: for A < B < C with A != B or B != C,
    /// ovc(A,B) != ovc(B,C).
    #[test]
    fn proposition((a, b, c) in sorted_triple(4)) {
        prop_assume!(a != b || b != c);
        let stats = Stats::default();
        let ab = derive_code(&a, &b, &stats);
        let bc = derive_code(&b, &c, &stats);
        prop_assert_ne!(ab, bc);
    }

    /// Iyer's unequal code theorem: ovc(A,B) < ovc(A,C) implies
    /// ovc(B,C) = ovc(A,C).
    #[test]
    fn unequal_code_theorem((a, b, c) in sorted_triple(4)) {
        let stats = Stats::default();
        let ab = derive_code(&a, &b, &stats);
        let ac = derive_code(&a, &c, &stats);
        let bc = derive_code(&b, &c, &stats);
        if ab < ac {
            prop_assert_eq!(bc, ac);
        }
    }

    /// Iyer's equal code theorem: ovc(A,B) = ovc(A,C) implies
    /// ovc(B,C) < ovc(A,C)  (for B != C; equal keys share the premise
    /// only vacuously).
    #[test]
    fn equal_code_theorem((a, b, c) in sorted_triple(4)) {
        prop_assume!(b != c);
        let stats = Stats::default();
        let ab = derive_code(&a, &b, &stats);
        let ac = derive_code(&a, &c, &stats);
        let bc = derive_code(&b, &c, &stats);
        if ab == ac {
            prop_assert!(bc < ac);
        }
    }

    /// Filter corollary over whole sorted chains: the accumulator equals
    /// the directly derived code between any two chain elements.
    #[test]
    fn filter_corollary(keys in prop::collection::vec(prop::collection::vec(0u64..4, 3), 2..40)) {
        let mut keys = keys;
        keys.sort();
        let stats = Stats::default();
        let mut acc = OvcAccumulator::new();
        for w in keys.windows(2) {
            acc.absorb(derive_code(&w[0], &w[1], &stats));
        }
        let combined = acc.emit(Ovc::EARLY_FENCE);
        let direct = derive_code(&keys[0], keys.last().unwrap(), &stats);
        prop_assert_eq!(combined, direct);
    }

    /// Code comparisons order keys correctly whenever codes share a base:
    /// for base A and keys B, C >= A, ovc(A,B) vs ovc(A,C) must agree with
    /// B vs C unless the codes are equal.
    #[test]
    fn code_order_is_sound((a, b, c) in sorted_triple(4)) {
        let stats = Stats::default();
        let ab = derive_code(&a, &b, &stats);
        let ac = derive_code(&a, &c, &stats);
        if ab != ac {
            // b <= c always holds here, so ab < ac must hold too.
            prop_assert!(ab < ac, "codes mis-ordered: {:?} vs {:?}", ab, ac);
        }
    }

    /// Clamping codes to a shorter prefix matches deriving codes on the
    /// projected keys directly.
    #[test]
    fn clamp_matches_projection((a, b, _c) in sorted_triple(4), p in 0usize..=4) {
        let stats = Stats::default();
        let full = derive_code(&a, &b, &stats);
        let clamped = clamp_to_prefix(full, 4, p);
        let direct = derive_code(&a[..p], &b[..p], &stats);
        prop_assert_eq!(clamped, direct);
    }

    /// Descending codes reproduce the ascending order reversed at the
    /// code level: larger descending code = earlier key.
    #[test]
    fn descending_codes_order((a, b, c) in sorted_triple(4)) {
        prop_assume!(b != c);
        let stats = Stats::default();
        let ab = derive_desc_code(&a, &b, &stats);
        let ac = derive_desc_code(&a, &c, &stats);
        if ab != ac {
            prop_assert!(ab > ac, "desc codes: earlier key must be larger");
        }
        let _ = DescOvc::initial(&a);
    }

    /// Exact codes derived for a sorted vector round-trip through
    /// `find_code_violation` with no violation reported.
    #[test]
    fn derived_codes_are_exact(keys in prop::collection::vec(prop::collection::vec(0u64..5, 3), 0..50)) {
        let mut rows: Vec<Row> = keys.into_iter().map(Row::new).collect();
        rows.sort();
        let codes = ovc_core::derive::derive_codes(&rows, 3);
        let pairs: Vec<(Row, Ovc)> = rows.into_iter().zip(codes).collect();
        prop_assert_eq!(ovc_core::derive::find_code_violation(&pairs, 3), None);
    }
}
