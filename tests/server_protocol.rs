//! End-to-end contract of the served query engine (DESIGN.md §13):
//! results that cross the wire are the results the library computes.
//!
//! * **Byte identity under concurrency** — N concurrent clients running
//!   the Figure-5 intersect and a dop-4 batched-exchange group-by each
//!   receive rows *and* offset-value codes identical to direct library
//!   execution of the same plan, and the trailer's per-query counters
//!   equal the library run's [`Stats`] deltas.
//! * **Rate limiting is loss-free** — under a tiny token bucket some
//!   requests bounce with 429, but every admitted query still answers
//!   byte-identically, and retrying after `retry-after` succeeds.
//! * **Graceful shutdown drains** — shutdown during streaming never
//!   truncates a response: every client either gets its full trailer or
//!   a clean pre-header refusal, and `Server::run` returns only after
//!   the drain.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ovc_repro::core::{Row, Stats};
use ovc_repro::plan::{
    execute, Aggregate, Catalog, ExecOptions, LogicalPlan, Planner, PlannerConfig, SetOp, Table,
};
use ovc_repro::server::ratelimit::RateLimitConfig;
use ovc_repro::server::{Client, QueryResult, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault-injection test below arms the process-global fault
/// registry; everything else must not run concurrently with it.  Plain
/// tests share the gate with read locks (they still parallelize among
/// themselves); the fault test takes the write lock.
static FAULT_GATE: std::sync::RwLock<()> = std::sync::RwLock::new(());

fn gate_read() -> std::sync::RwLockReadGuard<'static, ()> {
    match FAULT_GATE.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

const INTERSECT_WIRE: &str =
    r#"{"plan": {"set_op": {"left": {"scan": "t1"}, "right": {"scan": "t2"}, "op": "intersect"}}}"#;
const GROUP_WIRE: &str = r#"{"plan": {"sort": {"input": {"group_by": {"input": {"scan": "heap"},
    "group_len": 2, "aggs": ["count", {"sum": 2}]}}, "key_len": 2}}}"#;

/// The test catalog: Figure-5 style sorted pair + an unsorted table big
/// enough to clear the parallel threshold (batched exchanges, dop > 1).
fn catalog(rows: usize) -> Catalog {
    let mut rng = StdRng::seed_from_u64(0xEDB7);
    let mut t1: Vec<Row> = (0..rows)
        .map(|_| Row::new(vec![rng.gen_range(0..64u64), rng.gen_range(0..16u64)]))
        .collect();
    let mut t2: Vec<Row> = (0..rows)
        .map(|_| Row::new(vec![rng.gen_range(0..64u64), rng.gen_range(0..16u64)]))
        .collect();
    t1.sort();
    t2.sort();
    let heap: Vec<Row> = (0..2 * rows)
        .map(|_| {
            Row::new(vec![
                rng.gen_range(0..32u64),
                rng.gen_range(0..8u64),
                rng.gen_range(0..1000u64),
            ])
        })
        .collect();
    let mut cat = Catalog::new();
    cat.register("t1", Table::sorted(t1, 2));
    cat.register("t2", Table::sorted(t2, 2));
    cat.register("heap", Table::unsorted(heap));
    cat
}

fn planner_config() -> PlannerConfig {
    PlannerConfig::default()
        .with_dop(4)
        .with_parallel_threshold(512)
        .with_batch_size(256)
}

/// Direct library execution of `query`: (rows, codes, stat deltas).
fn library_run(
    cat: &Catalog,
    query: &LogicalPlan,
) -> (Vec<Vec<u64>>, Vec<u64>, BTreeMap<String, u64>) {
    let config = planner_config();
    let plan = Planner::new(cat, config).plan(query).expect("query plans");
    let stats = Stats::new_shared();
    let options = ExecOptions {
        batch_size: config.batch_size,
        ..ExecOptions::default()
    };
    let coded = execute(&plan, cat, &stats, &options).into_coded();
    let (rows, codes) = coded
        .into_iter()
        .map(|r| (r.row.cols().to_vec(), r.code.raw()))
        .unzip();
    let s = stats.snapshot();
    let deltas = BTreeMap::from([
        ("col_value_cmps".to_string(), s.col_value_cmps),
        ("ovc_cmps".to_string(), s.ovc_cmps),
        ("row_cmps".to_string(), s.row_cmps),
        ("rows_spilled".to_string(), s.rows_spilled),
        ("rows_read_back".to_string(), s.rows_read_back),
    ]);
    (rows, codes, deltas)
}

fn intersect_query() -> LogicalPlan {
    LogicalPlan::scan("t1").set_op(LogicalPlan::scan("t2"), SetOp::Intersect)
}

fn group_query() -> LogicalPlan {
    LogicalPlan::scan("heap")
        .group_by(2, vec![Aggregate::Count, Aggregate::Sum(2)])
        .sort(2)
}

fn assert_served_matches(
    served: &QueryResult,
    rows: &[Vec<u64>],
    codes: &[u64],
    stats: &BTreeMap<String, u64>,
    what: &str,
) {
    assert_eq!(served.rows, rows, "{what}: served rows differ from library");
    assert_eq!(
        served.codes, codes,
        "{what}: served codes differ from library"
    );
    let served_stats: BTreeMap<String, u64> = served.stats.iter().cloned().collect();
    assert_eq!(
        &served_stats, stats,
        "{what}: served stat deltas differ from library"
    );
}

#[test]
fn concurrent_clients_byte_identical_to_library() {
    let _gate = gate_read();
    let cat = catalog(2_000);
    let (i_rows, i_codes, i_stats) = library_run(&cat, &intersect_query());
    let (g_rows, g_codes, g_stats) = library_run(&cat, &group_query());
    assert!(
        !i_rows.is_empty() && !g_rows.is_empty(),
        "workloads are non-trivial"
    );

    let config = ServerConfig {
        planner: planner_config(),
        batch_rows: 100, // many batch frames per response
        max_sessions: 16,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, cat).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (i_rows, i_codes, i_stats) = (&i_rows, &i_codes, &i_stats);
            let (g_rows, g_codes, g_stats) = (&g_rows, &g_codes, &g_stats);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    // Interleave the two workloads across clients.
                    if (c + round) % 2 == 0 {
                        let r = client.query(INTERSECT_WIRE).expect("intersect");
                        assert!(r.batches > 1, "small batch_rows must yield several frames");
                        assert_served_matches(&r, i_rows, i_codes, i_stats, "intersect");
                    } else {
                        let r = client.query(GROUP_WIRE).expect("group");
                        assert_served_matches(&r, g_rows, g_codes, g_stats, "group_by");
                    }
                }
            });
        }
    });

    // Request-id middleware: echo when given, generate when not.
    let mut client = Client::connect(addr).expect("connect");
    let echoed = client
        .query_with_headers(INTERSECT_WIRE, &[("x-request-id", "my-id-42")])
        .expect("query");
    assert_eq!(echoed.request_id, "my-id-42");
    let generated = client.query(INTERSECT_WIRE).expect("query");
    assert!(
        generated.request_id.starts_with("req-"),
        "generated id: {:?}",
        generated.request_id
    );

    // Service counters reflect the traffic.
    let metrics = client.metrics().expect("metrics");
    let queries_total: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("ovc_queries_total "))
        .expect("ovc_queries_total series")
        .parse()
        .expect("counter value");
    assert_eq!(queries_total, (CLIENTS * ROUNDS + 2) as u64);
    assert!(
        metrics.contains("ovc_engine_ovc_cmps_total"),
        "engine counters exported:\n{metrics}"
    );

    handle.shutdown();
    runner.join().expect("runner").expect("run");
}

#[test]
fn explain_and_analyze_over_the_wire() {
    let _gate = gate_read();
    let cat = catalog(1_000);
    let config = planner_config();
    let expected_explain = Planner::new(&cat, config)
        .plan(&intersect_query())
        .expect("plans")
        .explain();
    let (i_rows, i_codes, _) = library_run(&cat, &intersect_query());

    let server = Server::bind(
        ServerConfig {
            planner: config,
            ..ServerConfig::default()
        },
        cat,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    let explain = client
        .explain(
            r#"{"set_op": {"left": {"scan": "t1"}, "right": {"scan": "t2"}, "op": "intersect"}}"#,
        )
        .expect("explain");
    assert_eq!(explain, expected_explain, "served EXPLAIN is the library's");

    let body = format!(
        "{}{}",
        &INTERSECT_WIRE[..INTERSECT_WIRE.len() - 1],
        r#", "mode": "analyze"}"#
    );
    let analyzed = client.query(&body).expect("analyze");
    assert_eq!(analyzed.rows, i_rows, "analyze mode still streams rows");
    assert_eq!(analyzed.codes, i_codes, "analyze mode still streams codes");
    let text = analyzed.analyze.expect("trailer carries the profile");
    for needle in ["rows out=", "SetOpMerge"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }

    handle.shutdown();
    runner.join().expect("runner").expect("run");
}

#[test]
fn table_registration_and_errors_over_the_wire() {
    let _gate = gate_read();
    let server = Server::bind(ServerConfig::default(), Catalog::new()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");

    // Unknown table: a planner error surfaces as 400 with the name.
    let err = client
        .query(r#"{"plan": {"scan": "nope"}}"#)
        .expect_err("unknown table");
    assert_eq!(err.status, 400);
    assert!(err.message.contains("nope"), "{err}");

    // Register sorted, then scan: codes stream from storage.
    client
        .register_table(r#"{"name": "s", "rows": [[1, 5], [2, 3], [2, 4]], "sorted_key": 2}"#)
        .expect("register");
    let r = client.query(r#"{"plan": {"scan": "s"}}"#).expect("scan");
    assert_eq!(r.rows, vec![vec![1, 5], vec![2, 3], vec![2, 4]]);
    assert_eq!(r.codes.len(), 3, "sorted scans carry codes");

    // Malformed rows are refused with a reason, not registered.
    let err = client
        .register_table(r#"{"name": "bad", "rows": [[2], [1]], "sorted_key": 1}"#)
        .expect_err("unsorted rows with sorted_key");
    assert_eq!(err.status, 400);
    assert!(err.message.contains("not ordered"), "{err}");

    // Unknown routes 404; bad JSON 400.
    let resp = client
        .request("GET", "/nope", &[], "")
        .expect("404 response");
    assert_eq!(resp.status, 404);
    let resp = client
        .request("POST", "/query", &[], "{not json")
        .expect("400 response");
    assert_eq!(resp.status, 400);

    handle.shutdown();
    runner.join().expect("runner").expect("run");
}

#[test]
fn rate_limited_clients_lose_requests_never_results() {
    let _gate = gate_read();
    let cat = catalog(500);
    let (i_rows, i_codes, i_stats) = library_run(&cat, &intersect_query());
    let server = Server::bind(
        ServerConfig {
            planner: planner_config(),
            rate_limit: RateLimitConfig {
                per_second: 20.0,
                burst: 4.0,
            },
            ..ServerConfig::default()
        },
        cat,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    // Hammer from several connections sharing one IP (same bucket):
    // some requests must bounce, every success must be byte-identical.
    let rejected = AtomicU64::new(0);
    let succeeded = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (rejected, succeeded) = (&rejected, &succeeded);
            let (i_rows, i_codes, i_stats) = (&i_rows, &i_codes, &i_stats);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..6 {
                    match client.query(INTERSECT_WIRE) {
                        Ok(r) => {
                            assert_served_matches(&r, i_rows, i_codes, i_stats, "limited");
                            succeeded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            assert_eq!(e.status, 429, "only 429 is acceptable: {e}");
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "the bucket must have run dry (24 requests vs burst 4)"
    );
    assert!(
        succeeded.load(Ordering::Relaxed) >= 4,
        "the initial burst must have been admitted"
    );

    // After the bucket refills, the same client is served again.
    std::thread::sleep(Duration::from_millis(300));
    let mut client = Client::connect(addr).expect("connect");
    let r = client.query(INTERSECT_WIRE).expect("post-refill query");
    assert_served_matches(&r, &i_rows, &i_codes, &i_stats, "post-refill");

    // Monitoring bypasses the limiter even while query traffic bounces.
    for _ in 0..20 {
        client.health().expect("health is never rate limited");
    }

    let metrics = client.metrics().expect("metrics");
    let line = metrics
        .lines()
        .find_map(|l| l.strip_prefix("ovc_rate_limited_total "))
        .expect("rate limit counter");
    assert_eq!(
        line.parse::<u64>().unwrap(),
        rejected.load(Ordering::Relaxed)
    );

    handle.shutdown();
    runner.join().expect("runner").expect("run");
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let _gate = gate_read();
    // Enough rows that a query streams for a while; tiny frames so
    // shutdown lands mid-stream with high probability.
    let cat = catalog(4_000);
    let (g_rows, g_codes, g_stats) = library_run(&cat, &group_query());
    let server = Server::bind(
        ServerConfig {
            planner: planner_config(),
            batch_rows: 16,
            max_sessions: 16,
            ..ServerConfig::default()
        },
        cat,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let state = std::sync::Arc::clone(handle.state());
    let runner = std::thread::spawn(move || server.run());

    let completed = AtomicU64::new(0);
    let refused = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let (completed, refused) = (&completed, &refused);
            let (g_rows, g_codes, g_stats) = (&g_rows, &g_codes, &g_stats);
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return, // listener already gone: clean refusal
                };
                loop {
                    match client.query(GROUP_WIRE) {
                        Ok(r) => {
                            // A response, once started, is always whole:
                            // every row, every code, the exact trailer.
                            assert_served_matches(&r, g_rows, g_codes, g_stats, "drained");
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // Only clean pre-header refusals are
                            // acceptable — never a truncated stream.
                            assert!(
                                !e.message.contains("without a trailer"),
                                "truncated stream during shutdown: {e}"
                            );
                            refused.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
        // Let queries get going, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(100));
        handle.shutdown();
    });

    runner
        .join()
        .expect("runner")
        .expect("run returns after drain");
    assert_eq!(
        state.in_flight_queries.load(Ordering::SeqCst),
        0,
        "run() returned with queries still in flight"
    );
    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "some queries must have completed across the shutdown"
    );
    // After run() returns the listener is gone: connects fail cleanly.
    assert!(
        Client::connect(addr).is_err() || {
            // A racing OS may still accept briefly; a request must not work.
            let mut c = Client::connect(addr).unwrap();
            c.health().is_err()
        }
    );
}

#[test]
fn session_pool_bounds_concurrent_connections() {
    let _gate = gate_read();
    let server = Server::bind(
        ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        },
        catalog(100),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let mut first = Client::connect(addr).expect("first connect");
    first.health().expect("first session works");
    // The pool is full: the next connection is turned away with 503
    // before any request is read — read the refusal straight off the
    // raw socket (sending first would race the server's close).
    {
        use std::io::Read;
        let mut second = std::net::TcpStream::connect(addr).expect("tcp connect still succeeds");
        let mut refusal = String::new();
        second
            .read_to_string(&mut refusal)
            .expect("read 503 until close");
        assert!(
            refusal.starts_with("HTTP/1.1 503"),
            "expected a 503 refusal, got: {refusal:?}"
        );
    }
    drop(first);

    // With the first session closed, a new connection is admitted.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut again = Client::connect(addr).expect("reconnect");
        match again.request("GET", "/health", &[], "") {
            Ok(r) if r.status == 200 => break,
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("pool never freed a slot: {other:?}"),
        }
    }

    handle.shutdown();
    runner.join().expect("runner").expect("run");
}

/// Shutdown while workers are being killed by injected panics: a
/// response, once its header has gone out, always ends in a trailer or
/// a typed error frame — never a truncated stream, and `Server::run`
/// still drains and returns.
#[test]
fn shutdown_with_injected_worker_panics_never_truncates() {
    // Exclusive: the fault registry is process-global.
    let fault_gate = match FAULT_GATE.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    use ovc_repro::core::fault::{self, FaultConfig, FaultPoint};

    let cat = catalog(2_000);
    let (g_rows, g_codes, g_stats) = library_run(&cat, &group_query());
    let server = Server::bind(
        ServerConfig {
            planner: planner_config(),
            batch_rows: 32,
            max_sessions: 16,
            ..ServerConfig::default()
        },
        cat,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    // Roughly a third of worker spawns die; queries race shutdown.
    let _guard = fault::install(FaultConfig::new(0x005D_077A).with(FaultPoint::WorkerPanic, 300));

    let completed = AtomicU64::new(0);
    let panicked = AtomicU64::new(0);
    let refused = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let (completed, panicked, refused) = (&completed, &panicked, &refused);
            let (g_rows, g_codes, g_stats) = (&g_rows, &g_codes, &g_stats);
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                loop {
                    match client.query(GROUP_WIRE) {
                        Ok(r) => {
                            // A clean response is a WHOLE response, even
                            // with panics landing all around it.
                            assert_served_matches(&r, g_rows, g_codes, g_stats, "panic-storm");
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.message.contains("[worker_panic]") => {
                            // The contained panic arrived as a typed
                            // error frame on an intact stream.
                            panicked.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            assert!(
                                !e.message.contains("without a trailer"),
                                "truncated stream: {e}"
                            );
                            refused.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(150));
        handle.shutdown();
    });

    runner.join().expect("runner").expect("run drains");
    drop(_guard);
    drop(fault_gate);
    assert!(
        panicked.load(Ordering::Relaxed) > 0,
        "at 30% worker mortality some queries must have failed typed \
         (completed {}, refused {})",
        completed.load(Ordering::Relaxed),
        refused.load(Ordering::Relaxed)
    );
}
