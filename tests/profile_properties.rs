//! The observability contract (DESIGN.md §11): profiling observes, it
//! never perturbs.  A profiled execution must produce byte-identical
//! rows and codes and identical `Stats` totals versus the unprofiled
//! executor on the same plan, the profile tree must mirror the plan
//! shape, exchange gauges must account for every row that crossed a
//! thread boundary, and `explain_analyze` must render the measured
//! counters the paper's argument is about (column comparisons vs
//! comparisons resolved by offset-value codes).

use ovc_core::{Ovc, OvcRow, Row, Stats};
use ovc_plan::exec::{execute, execute_profiled, ExecOptions};
use ovc_plan::{
    figure5, Catalog, JoinType, LogicalPlan, Planner, PlannerConfig, Preference, Table,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rows(rng: &mut StdRng, n: usize, key_max: u64) -> Vec<Row> {
    (0..n)
        .map(|_| Row::new(vec![rng.gen_range(0..key_max), rng.gen_range(0..50u64)]))
        .collect()
}

/// Run both executors on one plan and demand byte-identity of rows,
/// codes, and counter totals; return the frozen profile.
fn assert_profiling_is_invisible(
    plan: &ovc_plan::PhysicalPlan,
    catalog: &Catalog,
) -> ovc_core::PlanProfile {
    assert_profiling_is_invisible_with(plan, catalog, &ExecOptions::default())
}

/// As [`assert_profiling_is_invisible`], under explicit executor knobs
/// (the batched executor is exercised by passing a `batch_size`).
fn assert_profiling_is_invisible_with(
    plan: &ovc_plan::PhysicalPlan,
    catalog: &Catalog,
    options: &ExecOptions,
) -> ovc_core::PlanProfile {
    let plain_stats = Stats::new_shared();
    let plain: Vec<(Row, Ovc)> = execute(plan, catalog, &plain_stats, options)
        .into_coded()
        .into_iter()
        .map(|r| (r.row, r.code))
        .collect();

    let prof_stats = Stats::new_shared();
    let (out, root) = execute_profiled(plan, catalog, &prof_stats, options);
    let profiled: Vec<(Row, Ovc)> = out
        .into_coded()
        .into_iter()
        .map(|r| (r.row, r.code))
        .collect();

    assert_eq!(
        plain, profiled,
        "profiled rows/codes must be byte-identical"
    );
    assert_eq!(
        plain_stats.snapshot(),
        prof_stats.snapshot(),
        "profiled Stats totals must be identical"
    );
    let profile = root.snapshot();
    assert_eq!(profile.metrics.rows_out, plain.len() as u64);
    profile
}

/// Profile tree and plan tree walk in lockstep: same node count, same
/// names, same details, preorder.
fn assert_mirrors(plan: &ovc_plan::PhysicalPlan, profile: &ovc_core::PlanProfile) {
    let plan_nodes = plan.nodes();
    let prof_nodes = profile.nodes();
    assert_eq!(plan_nodes.len(), prof_nodes.len(), "tree shapes differ");
    for (p, n) in plan_nodes.iter().zip(&prof_nodes) {
        assert_eq!(p.op_name(), n.name);
        assert_eq!(p.op_detail(), n.detail);
    }
}

/// The ISSUE 6 acceptance criterion, part 1: the Figure-5 sort plan,
/// profiled, matches the unprofiled run byte for byte, and its profile
/// carries per-operator rows/wall/comparison figures.
#[test]
fn figure5_sort_plan_profiles_without_perturbation() {
    let mut rng = StdRng::seed_from_u64(0x0B5E);
    let t1: Vec<Row> = (0..600)
        .map(|_| Row::new(vec![rng.gen_range(0..80u64)]))
        .collect();
    let t2: Vec<Row> = (0..500)
        .map(|_| Row::new(vec![rng.gen_range(0..80u64)]))
        .collect();
    let catalog = figure5::catalog_unsorted(t1, t2);
    let cfg = PlannerConfig::default()
        .with_memory_rows(64)
        .with_fan_in(8)
        .with_preference(Preference::ForceSortBased);
    let plan = figure5::plan_intersect(&catalog, cfg).expect("plans");
    assert!(plan.uses_sort_based_ops());

    let profile = assert_profiling_is_invisible(&plan, &catalog);
    assert_mirrors(&plan, &profile);

    // The sort side did measurable work: the blocking operators report
    // rows out and comparisons, and every figure the acceptance names
    // is present per operator.
    let distinct = profile
        .find("InSortDistinct")
        .expect("sort-based distinct in the profile");
    assert!(distinct.metrics.rows_out > 0);
    assert!(
        distinct.metrics.code_resolved_cmps() > 0,
        "in-sort dedup resolves comparisons by code"
    );
    let scans: Vec<_> = profile
        .nodes()
        .into_iter()
        .filter(|n| n.name == "ScanRows")
        .collect();
    assert_eq!(scans.len(), 2);
    assert_eq!(
        scans.iter().map(|s| s.metrics.rows_out).sum::<u64>(),
        1100,
        "scans observed every input row"
    );
    // Inclusive accounting: the root's wall time covers its subtree.
    for n in profile.nodes() {
        assert!(profile.metrics.wall >= n.metrics.wall || n.metrics.wall.is_zero());
    }
}

/// The ISSUE 6 acceptance criterion, part 2: a planned dop=4 exchange
/// join profiles without perturbation, every Exchange node carries
/// channel gauges, and the gauges account for every row that crossed.
#[test]
fn planned_dop4_exchange_join_profiles_with_gauges() {
    let mut rng = StdRng::seed_from_u64(0xD0B4);
    let mut catalog = Catalog::new();
    catalog.register("l", Table::unsorted(random_rows(&mut rng, 400, 25)));
    catalog.register("r", Table::unsorted(random_rows(&mut rng, 350, 25)));
    let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, JoinType::Inner);
    let cfg = PlannerConfig::default()
        .with_memory_rows(64)
        .with_fan_in(8)
        .with_preference(Preference::ForceSortBased)
        .with_dop(4)
        .with_parallel_threshold(1);
    let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
    assert_eq!(plan.count_op("Exchange"), 3, "two splits + one gather");

    let profile = assert_profiling_is_invisible(&plan, &catalog);
    assert_mirrors(&plan, &profile);

    // Every Exchange in the profile carries 4 channel gauges, and the
    // rows crossing each exchange equal the rows its subtree produced.
    let exchanges: Vec<_> = profile
        .nodes()
        .into_iter()
        .filter(|n| n.name == "Exchange")
        .collect();
    assert_eq!(exchanges.len(), 3);
    for ex in &exchanges {
        assert_eq!(ex.gauges.len(), 4, "one gauge per partition");
        let crossed: u64 = ex.gauges.iter().map(|g| g.rows).sum();
        assert_eq!(
            crossed, ex.metrics.rows_out,
            "gauges account for every row that crossed `{}{}`",
            ex.name, ex.detail
        );
    }
    // Non-exchange operators have no gauges.
    for n in profile.nodes() {
        if n.name != "Exchange" {
            assert!(n.gauges.is_empty(), "{} should not carry gauges", n.name);
        }
    }
}

/// The batched-pipeline satellite: the same dop=4 exchange join run on
/// the **batched** executor (batches crossing every exchange channel)
/// profiles without perturbing rows, codes, or Stats; the exchange
/// gauges still account for every row that crossed, message counts show
/// the batching (≈ rows / batch_size messages, not one per row), and
/// the profiled output equals the row executor's byte for byte.
#[test]
fn planned_dop4_exchange_join_profiles_batched() {
    const BATCH: usize = 8;
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let mut catalog = Catalog::new();
    catalog.register("l", Table::unsorted(random_rows(&mut rng, 400, 25)));
    catalog.register("r", Table::unsorted(random_rows(&mut rng, 350, 25)));
    let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, JoinType::Inner);
    let cfg = PlannerConfig::default()
        .with_memory_rows(64)
        .with_fan_in(8)
        .with_preference(Preference::ForceSortBased)
        .with_dop(4)
        .with_parallel_threshold(1)
        .with_batch_size(BATCH);
    let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
    assert_eq!(plan.count_op("Exchange"), 3, "two splits + one gather");

    let options = ExecOptions {
        batch_size: Some(BATCH),
        ..Default::default()
    };
    let profile = assert_profiling_is_invisible_with(&plan, &catalog, &options);
    assert_mirrors(&plan, &profile);

    // Batched ≡ row-wise on the very same plan.
    let row_stats = Stats::new_shared();
    let row_wise: Vec<(Row, Ovc)> = execute(&plan, &catalog, &row_stats, &ExecOptions::default())
        .into_coded()
        .into_iter()
        .map(|r| (r.row, r.code))
        .collect();
    let bat_stats = Stats::new_shared();
    let batched: Vec<(Row, Ovc)> = execute(&plan, &catalog, &bat_stats, &options)
        .into_coded()
        .into_iter()
        .map(|r| (r.row, r.code))
        .collect();
    assert_eq!(batched, row_wise, "batched rows/codes ≡ row executor");
    assert_eq!(
        bat_stats.snapshot(),
        row_stats.snapshot(),
        "batched Stats ≡ row executor"
    );

    let exchanges: Vec<_> = profile
        .nodes()
        .into_iter()
        .filter(|n| n.name == "Exchange")
        .collect();
    assert_eq!(exchanges.len(), 3);
    for ex in &exchanges {
        assert_eq!(ex.gauges.len(), 4, "one gauge per partition");
        let crossed: u64 = ex.gauges.iter().map(|g| g.rows).sum();
        assert_eq!(
            crossed, ex.metrics.rows_out,
            "gauges account for every row crossing `{}{}`",
            ex.name, ex.detail
        );
        // Batches, not rows, are the channel currency: peak queue depth
        // is counted in messages, so on the bounded worker→gather edge
        // it can never exceed the message capacity (scaled down by the
        // batch size) plus the one message in flight.
        if ex.detail.contains("single") {
            let cap = ovc_exec::DEFAULT_CHANNEL_CAPACITY.div_ceil(BATCH) as u64;
            for (p, g) in ex.gauges.iter().enumerate() {
                assert!(
                    g.peak_depth <= cap + 1,
                    "gather channel {p}: peak {} > bound {}",
                    g.peak_depth,
                    cap + 1
                );
            }
        }
    }
}

/// `explain_analyze` format contract: one line per operator carrying
/// estimates and the measured rows out / wall time / column comparisons
/// / code-resolved comparisons, with gauge lines under each exchange.
#[test]
fn explain_analyze_renders_estimates_and_measurements() {
    let mut rng = StdRng::seed_from_u64(0x0E5A);
    let t1: Vec<Row> = (0..300)
        .map(|_| Row::new(vec![rng.gen_range(0..40u64)]))
        .collect();
    let t2: Vec<Row> = (0..300)
        .map(|_| Row::new(vec![rng.gen_range(0..40u64)]))
        .collect();
    let catalog = figure5::catalog_unsorted(t1, t2);
    let cfg = PlannerConfig::default()
        .with_memory_rows(64)
        .with_fan_in(8)
        .with_preference(Preference::ForceSortBased);
    let plan = figure5::plan_intersect(&catalog, cfg).expect("plans");

    let text = plan.explain_analyze(&catalog, &ExecOptions::default());
    assert_eq!(text.lines().count(), plan.nodes().len(), "{text}");
    for node in plan.nodes() {
        assert!(text.contains(node.op_name()), "{text}");
    }
    for line in text.lines() {
        assert!(line.contains("(est rows~"), "{line}");
        assert!(line.contains("rows out="), "{line}");
        assert!(line.contains("wall="), "{line}");
        assert!(line.contains("col cmps="), "{line}");
        assert!(line.contains("code cmps="), "{line}");
    }

    // A parallel plan adds `~ channel` gauge lines beneath exchanges.
    let par = figure5::plan_intersect(&catalog, cfg.with_dop(4).with_parallel_threshold(1))
        .expect("plans");
    if par.count_op("Exchange") > 0 {
        let text = par.explain_analyze(&catalog, &ExecOptions::default());
        assert!(text.contains("~ channel 0:"), "{text}");
        assert!(text.contains("send wait="), "{text}");
        assert!(text.contains("recv wait="), "{text}");
        assert!(text.contains("peak depth="), "{text}");
    }
}

/// Profiling composes with `verify_trusted` (the planner audit mode)
/// and with early termination: a TopK root abandons its input, and the
/// profile still reports the rows that actually flowed.
#[test]
fn profiled_topk_reports_partial_drains() {
    let mut rng = StdRng::seed_from_u64(0x109C);
    let rows: Vec<Row> = (0..500)
        .map(|_| Row::new(vec![rng.gen_range(0..1000u64), rng.gen_range(0..10u64)]))
        .collect();
    let mut catalog = Catalog::new();
    catalog.register("t", Table::unsorted(rows));
    let q = LogicalPlan::scan("t").top_k(1, 7);
    let cfg = PlannerConfig::default().with_memory_rows(64).with_fan_in(8);
    let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");

    let stats = Stats::new_shared();
    let options = ExecOptions {
        verify_trusted: true,
        ..Default::default()
    };
    let (out, root) = execute_profiled(&plan, &catalog, &stats, &options);
    let got: Vec<OvcRow> = out.into_coded();
    assert_eq!(got.len(), 7);
    let profile = root.snapshot();
    assert_eq!(profile.metrics.rows_out, 7, "TopK emitted exactly k rows");
    // The sort below it still materialized (and reports) all input rows
    // it emitted into TopK's 7 next() calls — at most 7 due to the
    // streaming pull model.
    let sort = profile.find("SortOvc").expect("sort below TopK");
    assert!(sort.metrics.rows_out <= 7 + 1, "pull model: no overdrain");
}
