//! Property tests of the `ovc-plan` planner: whatever physical plan it
//! picks, the answer must be the answer — and every sort it elides must
//! be justified by exact offset-value codes on the stream it trusted.

use std::collections::BTreeMap;

use ovc_core::derive::{assert_codes_exact_spec, derive_codes_spec};
use ovc_core::{Direction, Ovc, OvcRow, Row, SortSpec, Stats};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::{
    Aggregate, Catalog, JoinType, LogicalPlan, Planner, PlannerConfig, Predicate, Preference,
    SetOp, Table,
};
use proptest::prelude::*;

/// Multiset of rows, order-insensitive.
fn multiset(rows: Vec<Row>) -> BTreeMap<Vec<u64>, usize> {
    let mut m = BTreeMap::new();
    for r in rows {
        *m.entry(r.cols().to_vec()).or_insert(0) += 1;
    }
    m
}

fn exec_with(
    q: &LogicalPlan,
    catalog: &Catalog,
    pref: Preference,
    verify: bool,
) -> (ovc_plan::PhysicalPlan, Vec<Row>) {
    let cfg = PlannerConfig::default()
        .with_memory_rows(64)
        .with_fan_in(8)
        .with_preference(pref);
    let plan = Planner::new(catalog, cfg).plan(q).expect("plans");
    let stats = Stats::new_shared();
    let out = execute(
        &plan,
        catalog,
        &stats,
        &ExecOptions {
            verify_trusted: verify,
            ..Default::default()
        },
    );
    (plan, out.into_rows())
}

/// The property at the heart of the planner tests: the cost-based choice,
/// the forced sort-based plan, and the forced hash-based plan all return
/// the same multiset of rows, and every elided sort survives the
/// exact-code audit.
fn assert_plan_choice_is_semantically_free(q: &LogicalPlan, catalog: &Catalog) {
    let (auto_plan, auto_rows) = exec_with(q, catalog, Preference::Auto, true);
    let (_, sort_rows) = exec_with(q, catalog, Preference::ForceSortBased, true);
    let (_, hash_rows) = exec_with(q, catalog, Preference::ForceHashBased, true);
    let auto = multiset(auto_rows);
    assert_eq!(
        auto,
        multiset(sort_rows),
        "auto and forced-sort disagree for plan:\n{auto_plan}"
    );
    assert_eq!(
        auto,
        multiset(hash_rows),
        "auto and forced-hash disagree for plan:\n{auto_plan}"
    );
}

fn rows_strategy(width: usize, max_rows: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(prop::collection::vec(0u64..12, width), 0..max_rows)
        .prop_map(|v| v.into_iter().map(Row::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized Figure 5: intersect over unsorted heap tables.
    #[test]
    fn set_ops_agree_across_plan_choices(
        t1 in rows_strategy(1, 300),
        t2 in rows_strategy(1, 300),
        op_sel in 0usize..6,
    ) {
        let op = [SetOp::Union, SetOp::UnionAll, SetOp::Intersect,
                  SetOp::IntersectAll, SetOp::Except, SetOp::ExceptAll][op_sel];
        let mut catalog = Catalog::new();
        catalog.register("t1", Table::unsorted(t1));
        catalog.register("t2", Table::unsorted(t2));
        let q = LogicalPlan::scan("t1").set_op(LogicalPlan::scan("t2"), op);
        assert_plan_choice_is_semantically_free(&q, &catalog);
    }

    /// Joins (all types) with filters above scans; sorted and unsorted
    /// base tables mixed, so elision opportunities come and go.
    #[test]
    fn joins_agree_across_plan_choices(
        t1 in rows_strategy(2, 200),
        t2 in rows_strategy(2, 200),
        jt_sel in 0usize..6,
        sorted_left in 0usize..2,
        threshold in 0u64..12,
    ) {
        let jt = [JoinType::Inner, JoinType::LeftOuter, JoinType::RightOuter,
                  JoinType::FullOuter, JoinType::LeftSemi, JoinType::LeftAnti][jt_sel];
        let mut catalog = Catalog::new();
        if sorted_left == 1 {
            let mut s = t1;
            s.sort();
            catalog.register("t1", Table::sorted(s, 2));
        } else {
            catalog.register("t1", Table::unsorted(t1));
        }
        catalog.register("t2", Table::unsorted(t2));
        let q = LogicalPlan::scan("t1")
            .filter(Predicate::ColLt(0, threshold))
            .join(LogicalPlan::scan("t2"), 1, jt);
        assert_plan_choice_is_semantically_free(&q, &catalog);
    }

    /// Distinct and grouping over mixed-sortedness inputs.
    #[test]
    fn distinct_and_group_agree_across_plan_choices(
        rows in rows_strategy(2, 300),
        store_sorted in 0usize..2,
    ) {
        let mut catalog = Catalog::new();
        if store_sorted == 1 {
            let mut s = rows.clone();
            s.sort();
            catalog.register("t", Table::sorted(s, 2));
        } else {
            catalog.register("t", Table::unsorted(rows.clone()));
        }
        let q = LogicalPlan::scan("t").distinct();
        assert_plan_choice_is_semantically_free(&q, &catalog);

        let g = LogicalPlan::scan("t").group_by(1, vec![Aggregate::Count, Aggregate::Sum(1)]);
        assert_plan_choice_is_semantically_free(&g, &catalog);

        // Reference semantics for the grouping.
        let (_, got) = exec_with(&g, &catalog, Preference::Auto, true);
        let mut expect: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for r in &rows {
            let e = expect.entry(r.cols()[0]).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.cols()[1];
        }
        let expect_rows: Vec<Vec<u64>> =
            expect.into_iter().map(|(k, (c, s))| vec![k, c, s]).collect();
        let got_rows: Vec<Vec<u64>> = got.iter().map(|r| r.cols().to_vec()).collect();
        prop_assert_eq!(got_rows, expect_rows);
    }

    /// The ISSUE 3 satellite: a `SortSpec` plan with mixed asc/desc
    /// directions (normalized-key encoding included) produces rows
    /// byte-identical to the `ovc-baseline` full-compare sort under the
    /// same spec, and codes byte-identical to the reference derivation
    /// over those rows.
    #[test]
    fn mixed_direction_sort_plan_matches_baseline_full_compare_sort(
        rows in rows_strategy(2, 300),
        dir_sel in 0usize..4,
        norm_sel in 0usize..2,
    ) {
        let normalized = norm_sel == 1;
        let dirs = [
            [Direction::Asc, Direction::Desc],
            [Direction::Desc, Direction::Asc],
            [Direction::Desc, Direction::Desc],
            [Direction::Asc, Direction::Asc],
        ][dir_sel];
        let spec = SortSpec::with_dirs(&dirs).with_normalized(normalized);
        let mut catalog = Catalog::new();
        catalog.register("t", Table::unsorted(rows.clone()));
        let q = LogicalPlan::scan("t").sort_by(spec.clone());
        let cfg = PlannerConfig::default().with_memory_rows(48).with_fan_in(4);
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        prop_assert_eq!(&plan.props.order, &spec, "{}", plan.explain());
        let stats = Stats::new_shared();
        let out: Vec<OvcRow> =
            execute(&plan, &catalog, &stats, &ExecOptions { verify_trusted: true, ..Default::default() }).into_coded();

        // Reference: the baseline's instrumented full-compare sort.
        let baseline =
            ovc_baseline::sort_rows_plain_spec(rows, &spec, &Stats::new_shared());
        let got_rows: Vec<Row> = out.iter().map(|r| r.row.clone()).collect();
        prop_assert_eq!(&got_rows, &baseline, "rows byte-identical");
        let expect_codes = derive_codes_spec(&baseline, &spec);
        let got_codes: Vec<Ovc> = out.iter().map(|r| r.code).collect();
        prop_assert_eq!(got_codes, expect_codes, "codes byte-identical");
    }

    /// A descending-stored table under a descending Sort demand: the
    /// planner elides the sort (`TrustSorted` under a desc spec), and the
    /// `assert_codes_exact` audit of the trusted stream passes.
    #[test]
    fn descending_trust_sorted_elision_survives_code_audit(rows in rows_strategy(2, 300)) {
        let spec = SortSpec::desc(2);
        let mut s = rows;
        s.sort_by(|a, b| spec.cmp_keys(a.key(2), b.key(2)));
        let n = s.len();
        let mut catalog = Catalog::new();
        catalog.register("t", Table::sorted_by(s, spec.clone()));
        let q = LogicalPlan::scan("t").sort_by(spec.clone());
        let plan = Planner::new(&catalog, PlannerConfig::default()).plan(&q).expect("plans");
        prop_assert_eq!(plan.count_op("SortOvc"), 0, "{}", plan.explain());
        prop_assert_eq!(plan.count_op("Reverse"), 0, "{}", plan.explain());
        prop_assert_eq!(plan.elided_sorts().len(), 1, "{}", plan.explain());
        let stats = Stats::new_shared();
        // verify_trusted audits the trusted stream with
        // assert_codes_exact_spec under the descending spec.
        let out: Vec<OvcRow> =
            execute(&plan, &catalog, &stats, &ExecOptions { verify_trusted: true, ..Default::default() }).into_coded();
        prop_assert_eq!(out.len(), n);
        let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
        assert_codes_exact_spec(&pairs, &spec);
    }

    /// A sorted-table scan under an explicit Sort demand: the planner
    /// must elide the sort, and the elision must survive the code audit.
    #[test]
    fn sort_over_sorted_table_is_elided_and_justified(rows in rows_strategy(2, 300)) {
        let mut s = rows;
        s.sort();
        let n = s.len();
        let mut catalog = Catalog::new();
        catalog.register("t", Table::sorted(s, 2));
        let q = LogicalPlan::scan("t").sort(2);
        let cfg = PlannerConfig::default();
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        prop_assert_eq!(plan.count_op("SortOvc"), 0, "no sort needed:\n{}", plan.explain());
        prop_assert_eq!(plan.elided_sorts().len(), 1, "{}", plan.explain());
        let stats = Stats::new_shared();
        // verify_trusted drains the trusted stream through
        // assert_codes_exact — the elision's justification.
        let out = execute(&plan, &catalog, &stats, &ExecOptions { verify_trusted: true, ..Default::default() });
        prop_assert_eq!(out.into_rows().len(), n);
    }
}

/// The ISSUE acceptance criterion: on randomized inputs, the planner
/// picks the sort-based plan for the Figure-5 intersect-distinct workload
/// when the inputs are sorted and coded, elides the redundant sorts, and
/// matches `ovc_baseline::plans::hash_intersect_distinct` row for row
/// (order-insensitive).
#[test]
fn figure5_acceptance_sorted_inputs() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xF1605 + seed);
        let n = rng.gen_range(100..2000usize);
        let d1 = rng.gen_range(5..200u64);
        let d2 = rng.gen_range(5..200u64);
        let t1: Vec<Row> = (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..d1)]))
            .collect();
        let t2: Vec<Row> = (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..d2)]))
            .collect();

        // Planner side: inputs registered sorted (and therefore coded).
        let catalog = ovc_plan::figure5::catalog_sorted(t1.clone(), t2.clone());
        let cfg = PlannerConfig::default().with_memory_rows(n / 8 + 8);
        let plan = ovc_plan::figure5::plan_intersect(&catalog, cfg).expect("plans");
        assert!(
            plan.uses_sort_based_ops() && !plan.uses_hash_based_ops(),
            "sorted coded inputs must yield the sort-based plan (seed {seed}):\n{plan}"
        );
        assert_eq!(
            plan.elided_sorts().len(),
            2,
            "both input sorts must be elided (seed {seed}):\n{plan}"
        );
        assert_eq!(
            plan.count_op("SortOvc") + plan.count_op("InSortDistinct"),
            0,
            "no physical sort may remain (seed {seed}):\n{plan}"
        );

        let stats = Stats::new_shared();
        let out = execute(
            &plan,
            &catalog,
            &stats,
            &ExecOptions {
                verify_trusted: true,
                ..Default::default()
            },
        );
        let planner_rows: Vec<Row> = out.into_rows();
        assert_eq!(stats.rows_spilled(), 0, "nothing blocks, nothing spills");

        // Reference: the hand-written hash plan of Figure 5.
        let hs = Stats::new_shared();
        let mut hash_rows = ovc_baseline::plans::hash_intersect_distinct(t1, t2, n / 8 + 8, &hs);
        hash_rows.sort();
        assert_eq!(
            planner_rows, hash_rows,
            "planner-produced sort plan must match the hash reference (seed {seed})"
        );
    }
}

/// EXPLAIN prints the full physical-property contract: the order spec
/// with per-column directions, the partitioning, and — on parallel
/// operators — the dop, instead of the old bare column-count and
/// `dop=N` suffix.
#[test]
fn explain_prints_full_order_and_partitioning_properties() {
    let rows: Vec<Row> = (0..500).map(|i| Row::new(vec![i % 13, i % 7])).collect();
    let mut catalog = Catalog::new();
    catalog.register("l", Table::unsorted(rows.clone()));
    catalog.register("r", Table::unsorted(rows.clone()));

    // Serial mixed-direction sort: full spec in both the operator detail
    // and the property suffix.
    let spec = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]);
    let plan = Planner::new(&catalog, PlannerConfig::default())
        .plan(&LogicalPlan::scan("l").sort_by(spec))
        .expect("plans");
    let ex = plan.explain();
    assert!(ex.contains("SortOvc key=[c0 asc, c1 desc]"), "{ex}");
    assert!(ex.contains("order=[c0 asc, c1 desc]"), "{ex}");
    assert!(ex.contains("part=single"), "{ex}");

    // Partition-parallel join: explicit exchange targets, hash
    // partitioning, and dop all visible.
    let cfg = PlannerConfig::default()
        .with_preference(Preference::ForceSortBased)
        .with_dop(4)
        .with_parallel_threshold(1);
    let q = LogicalPlan::scan("l").join(LogicalPlan::scan("r"), 1, JoinType::Inner);
    let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
    let ex = plan.explain();
    assert!(ex.contains("Exchange -> hash(c0)x4"), "{ex}");
    assert!(ex.contains("Exchange -> single"), "{ex}");
    assert!(ex.contains("part=hash(c0)x4"), "{ex}");
    assert!(ex.contains("dop=4"), "{ex}");
    // A descending elision renders its spec too.
    let spec = SortSpec::desc(1);
    let mut sorted = rows;
    sorted.sort_by(|a, b| spec.cmp_keys(a.key(1), b.key(1)));
    catalog.register("d", Table::sorted_by(sorted, spec.clone()));
    let plan = Planner::new(&catalog, PlannerConfig::default())
        .plan(&LogicalPlan::scan("d").sort_by(spec))
        .expect("plans");
    let ex = plan.explain();
    assert!(
        ex.contains("TrustSorted key=[c0 desc] (sort elided)"),
        "{ex}"
    );
    assert!(ex.contains("order=[c0 desc]"), "{ex}");
}

/// Unknown tables and schema violations surface as planner errors, not
/// panics.
#[test]
fn planner_reports_errors() {
    let catalog = Catalog::new();
    let err = Planner::new(&catalog, PlannerConfig::default())
        .plan(&LogicalPlan::scan("nope"))
        .unwrap_err();
    assert!(matches!(err, ovc_plan::PlanError::UnknownTable(_)), "{err}");

    let mut catalog = Catalog::new();
    catalog.register("a", Table::unsorted(vec![Row::new(vec![1])]));
    catalog.register("b", Table::unsorted(vec![Row::new(vec![1, 2])]));
    let err = Planner::new(&catalog, PlannerConfig::default())
        .plan(&LogicalPlan::scan("a").set_op(LogicalPlan::scan("b"), SetOp::Union))
        .unwrap_err();
    assert!(matches!(err, ovc_plan::PlanError::Schema(_)), "{err}");
}
