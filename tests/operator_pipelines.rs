//! End-to-end pipelines: offset-value codes must flow from ordered scans
//! through stacks of operators with the exactness contract intact at every
//! stage — the paper's whole point ("order-preserving query execution
//! algorithms must not only consume but also produce offset-value codes,
//! to be consumed and exploited by the next operator in the pipeline").

use std::sync::Arc;

use ovc_core::derive::assert_codes_exact;
use ovc_core::stream::collect_pairs;
use ovc_core::{Ovc, Row, Stats, VecStream};
use ovc_exec::nlj::BTreeInner;
use ovc_exec::{
    exchange, Aggregate, Dedup, Filter, GroupAggregate, HashJoinOp, HashTable, JoinType,
    LookupJoin, MergeJoin, Project, SetOp, SetOperation,
};
use ovc_sort::{external_sort, MemoryRunStorage, SortConfig};
use ovc_storage::{BTree, LsmConfig, LsmForest, RleColumnStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rows(n: usize, key_cols: usize, domain: u64, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut cols: Vec<u64> = (0..key_cols).map(|_| rng.gen_range(0..domain)).collect();
            cols.push(rng.gen::<u32>() as u64);
            Row::new(cols)
        })
        .collect()
}

/// Scan an RLE column store, filter, group, and verify codes at each hop.
#[test]
fn rle_scan_filter_group_pipeline() {
    let mut rows = random_rows(2000, 3, 5, 1);
    rows.sort();
    let store = RleColumnStore::build(&rows, 3);
    let stats = Stats::new_shared();

    let scan = store.scan();
    let filtered = Filter::new(scan, |r| r.cols()[2] != 0, Arc::clone(&stats));
    let grouped = GroupAggregate::new(
        filtered,
        2,
        vec![Aggregate::Count, Aggregate::Sum(3)],
        Arc::clone(&stats),
    );
    let pairs = collect_pairs(grouped);
    assert_codes_exact(&pairs, 2);
    assert_eq!(
        stats.col_value_cmps(),
        0,
        "scan + filter + group run entirely on codes"
    );

    // Cross-check totals against a reference.
    let survivors = rows.iter().filter(|r| r.cols()[2] != 0).count() as u64;
    let total: u64 = pairs.iter().map(|(r, _)| r.cols()[2]).sum();
    assert_eq!(total, survivors);
}

/// Sort two unsorted tables externally, merge-join them, group the join
/// result — codes valid end to end.
#[test]
fn sort_join_group_pipeline() {
    let t1 = random_rows(1500, 2, 12, 2);
    let t2 = random_rows(1500, 2, 12, 3);
    let stats = Stats::new_shared();
    let mut st1 = MemoryRunStorage::new(Arc::clone(&stats));
    let mut st2 = MemoryRunStorage::new(Arc::clone(&stats));
    let s1 = external_sort(t1, SortConfig::new(2, 200), &mut st1, &stats);
    let s2 = external_sort(t2, SortConfig::new(2, 200), &mut st2, &stats);
    let join = MergeJoin::new(s1, s2, 2, JoinType::Inner, 3, 3, Arc::clone(&stats));
    let grouped = GroupAggregate::new(join, 1, vec![Aggregate::Count], Arc::clone(&stats));
    let pairs = collect_pairs(grouped);
    assert_codes_exact(&pairs, 1);
    assert!(!pairs.is_empty());
}

/// LSM ingest → scan → dedup → semi join against a b-tree; Napa-flavoured.
#[test]
fn lsm_scan_join_pipeline() {
    let stats = Stats::new_shared();
    let mut forest = LsmForest::new(2, LsmConfig { fanout: 3 }, Arc::clone(&stats));
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..8 {
        forest.ingest(
            (0..250)
                .map(|_| Row::new(vec![rng.gen_range(0..30u64), rng.gen_range(0..30u64)]))
                .collect(),
        );
    }
    let mut dim_rows: Vec<Row> = (0..15u64).map(|k| Row::new(vec![k * 2, k])).collect();
    dim_rows.sort();
    let dim = BTree::bulk_load(dim_rows, 2, 8, 4);

    let scan = forest.into_scan();
    let dedup = Dedup::new(scan);
    let inner = BTreeInner::new(&dim, 1, 2, Arc::clone(&stats));
    let join = LookupJoin::new(dedup, inner, JoinType::LeftSemi);
    let pairs = collect_pairs(join);
    assert_codes_exact(&pairs, 2);
    assert!(pairs
        .iter()
        .all(|(r, _)| r.cols()[0] % 2 == 0 && r.cols()[0] < 30));
}

/// Split a sorted stream across an exchange, process partitions
/// independently, merge back — codes valid throughout.
#[test]
fn exchange_round_trip_with_partitionwise_grouping() {
    let mut rows = random_rows(1200, 2, 8, 5);
    rows.sort();
    let stats = Stats::new_shared();
    let input = VecStream::from_sorted_rows(rows.clone(), 2);
    let parts = exchange::split(input, 4, exchange::partition::by_hash(0, 4));

    // Hash partitioning on the leading key column keeps whole groups in
    // one partition, so partition-wise grouping is correct.
    let mut grouped_parts = Vec::new();
    for p in parts {
        let grouped: Vec<_> =
            GroupAggregate::new(p, 2, vec![Aggregate::Count], Arc::clone(&stats)).collect();
        let pairs: Vec<(Row, Ovc)> = grouped.iter().map(|r| (r.row.clone(), r.code)).collect();
        assert_codes_exact(&pairs, 2);
        grouped_parts.push(VecStream::from_coded(grouped, 2));
    }
    let merged = exchange::merge(grouped_parts, 2, &stats);
    let pairs = collect_pairs(merged);
    assert_codes_exact(&pairs, 2);
    let total: u64 = pairs.iter().map(|(r, _)| r.cols()[2]).sum();
    assert_eq!(total, rows.len() as u64);
}

/// Order-preserving hash join inside a sorted pipeline, then projection
/// and set operation against another stream.
#[test]
fn hash_join_project_setop_pipeline() {
    let probe_rows = random_rows(800, 2, 10, 6);
    let build_rows: Vec<Row> = (0..10u64).map(|k| Row::new(vec![k, k * 7])).collect();
    let stats = Stats::new_shared();

    let probe = VecStream::from_unsorted_rows(probe_rows, 2);
    let table = HashTable::build(build_rows, 1);
    let join = HashJoinOp::new(probe, table, JoinType::Inner);
    // Project down to the first key column only.
    let projected = Project::new(join, 1, |r| Row::new(vec![r.cols()[0]]));
    let left = VecStream::from_coded(Dedup::new(projected).collect(), 1);

    let right = VecStream::from_unsorted_rows((0..6u64).map(|k| Row::new(vec![k])).collect(), 1);
    let setop = SetOperation::new(left, right, SetOp::Intersect, Arc::clone(&stats));
    let pairs = collect_pairs(setop);
    assert_codes_exact(&pairs, 1);
    assert!(pairs.iter().all(|(r, _)| r.cols()[0] < 6));
}

/// A deep pipeline: b-tree scan → filter → merge join → dedup → group —
/// eight hops of code-carrying operators, zero column comparisons outside
/// the join's merge logic.
#[test]
fn deep_pipeline_comparison_budget() {
    let mut fact = random_rows(3000, 2, 20, 7);
    fact.sort();
    let mut dim = random_rows(300, 2, 20, 8);
    dim.sort();
    let fact_tree = BTree::bulk_load(fact, 2, 32, 8);
    let dim_tree = BTree::bulk_load(dim, 2, 32, 8);
    let stats = Stats::new_shared();

    let f = ovc_storage::btree::scan_to_stream(&fact_tree);
    let d = ovc_storage::btree::scan_to_stream(&dim_tree);
    let filtered = Filter::new(f, |r| r.cols()[1] % 3 != 0, Arc::clone(&stats));
    let join = MergeJoin::new(filtered, d, 1, JoinType::Inner, 3, 3, Arc::clone(&stats));
    let dedup = Dedup::new(join);
    let grouped = GroupAggregate::new(dedup, 1, vec![Aggregate::Count], Arc::clone(&stats));
    let pairs = collect_pairs(grouped);
    assert_codes_exact(&pairs, 1);
    // Only the merge join may compare columns, bounded by N*K of its
    // combined input sizes.
    assert!(
        stats.col_value_cmps() <= (3000 + 300),
        "pipeline comparisons {} exceed the join's N*K budget",
        stats.col_value_cmps()
    );
}
