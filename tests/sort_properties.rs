//! Property tests of the sorting substrate: every configuration of the
//! external sorter produces the same sorted keys as the standard library
//! sort, with exact offset-value codes, within the paper's comparison
//! bound.

use std::sync::Arc;

use ovc_core::derive::find_code_violation;
use ovc_core::{Ovc, Row, Stats};
use ovc_sort::external_sort_collect;
use ovc_sort::replacement::generate_runs_replacement;
use ovc_sort::segmented::SegmentedSort;
use ovc_sort::{RunGenStrategy, SortConfig};
use proptest::prelude::*;

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(prop::collection::vec(0u64..6, 3), 0..300)
        .prop_map(|v| v.into_iter().map(Row::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn external_sort_matches_std_sort(
        rows in rows_strategy(),
        memory in 1usize..64,
        fan_in in 2usize..8,
        strat in prop_oneof![
            Just(RunGenStrategy::OvcPriorityQueue),
            Just(RunGenStrategy::Quicksort),
            Just(RunGenStrategy::ReplacementSelection),
        ],
    ) {
        let stats = Stats::new_shared();
        let cfg = SortConfig::new(3, memory).with_fan_in(fan_in).with_strategy(strat);
        let out = external_sort_collect(rows.clone(), cfg, &stats);
        // Same keys as std sort.
        let mut expect = rows.clone();
        expect.sort();
        let got_keys: Vec<&[u64]> = out.iter().map(|r| r.row.key(3)).collect();
        let expect_keys: Vec<&[u64]> = expect.iter().map(|r| r.key(3)).collect();
        prop_assert_eq!(got_keys, expect_keys);
        // Exact codes.
        let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
        prop_assert_eq!(find_code_violation(&pairs, 3), None);
    }

    /// The N×K bound on column comparisons for OVC run generation plus a
    /// single merge level.
    #[test]
    fn merge_comparisons_within_bound(rows in rows_strategy(), memory in 8usize..64) {
        prop_assume!(!rows.is_empty());
        let n = rows.len() as u64;
        let stats = Stats::new_shared();
        let cfg = SortConfig::new(3, memory).with_fan_in(1024);
        let _ = external_sort_collect(rows, cfg, &stats);
        // Run generation <= N*K, one merge level <= N*K.
        prop_assert!(stats.col_value_cmps() <= 2 * n * 3,
            "col cmps {} exceed 2*N*K {}", stats.col_value_cmps(), 2 * n * 3);
    }

    #[test]
    fn replacement_selection_runs_are_valid(rows in rows_strategy(), cap in 1usize..32) {
        let stats = Stats::new_shared();
        let runs = generate_runs_replacement(rows.clone(), 3, cap, &stats);
        let mut all: Vec<Row> = Vec::new();
        for run in &runs {
            let pairs: Vec<(Row, Ovc)> =
                run.iter().map(|(r, c)| (Row::from_slice(r), c)).collect();
            prop_assert_eq!(find_code_violation(&pairs, 3), None);
            all.extend(pairs.into_iter().map(|(r, _)| r));
        }
        let mut expect = rows;
        expect.sort();
        all.sort();
        prop_assert_eq!(all, expect);
    }

    /// Segmented sort equals a full sort on the target key.
    #[test]
    fn segmented_sort_equals_full_sort(keys in prop::collection::vec((0u64..4, 0u64..16, 0u64..16), 0..200)) {
        // Columns (A, C, B): input sorted on (A, B), target (A, C).
        let mut input: Vec<Row> = keys
            .into_iter()
            .map(|(a, c, b)| Row::new(vec![a, c, b]))
            .collect();
        input.sort_by(|x, y| (x.cols()[0], x.cols()[2]).cmp(&(y.cols()[0], y.cols()[2])));
        let stats = Stats::new_shared();
        let stream = ovc_core::VecStream::from_sorted_rows(input.clone(), 1);
        let seg = SegmentedSort::new(stream, 1, 2, Arc::clone(&stats));
        let out: Vec<(Row, Ovc)> = seg.map(|r| (r.row, r.code)).collect();
        prop_assert_eq!(find_code_violation(&out, 2), None);
        let mut expect = input;
        expect.sort_by(|x, y| x.key(2).cmp(y.key(2)));
        let got_keys: Vec<&[u64]> = out.iter().map(|(r, _)| r.key(2)).collect();
        let expect_keys: Vec<&[u64]> = expect.iter().map(|r| r.key(2)).collect();
        prop_assert_eq!(got_keys, expect_keys);
    }
}
