//! Differential fault-injection suite (DESIGN.md §14).
//!
//! The system-wide invariant under test: **every injected fault yields
//! either a clean typed [`ExecError`] or byte-identical output — never
//! truncation, deadlock, or wrong rows.**  The seeded registry in
//! [`ovc_repro::core::fault`] arms spill I/O failures, spill
//! corruption, worker panics, and slow exchange consumers at the exact
//! points production faults occur; each test asserts the typed-error
//! side, the recovered-output side, or (with the registry disabled)
//! byte-identity of the fault-tolerant execution paths against the
//! plain ones.
//!
//! The fault registry is process-global, so every test here serializes
//! on one lock.  The seed comes from `RANDOM_SEED` when set (CI passes
//! its run id) so soak runs explore different fire patterns while any
//! single run stays reproducible from its log line.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use ovc_repro::core::ctx::ExecError;
use ovc_repro::core::fault::{self, FaultConfig, FaultPoint};
use ovc_repro::core::{QueryCtx, Row, SortSpec, Stats};
use ovc_repro::plan::{
    execute, execute_ctx, execute_ctx_profiled, execute_profiled, Aggregate, Catalog, ExecOptions,
    LogicalPlan, Planner, PlannerConfig, SetOp, Table,
};
use ovc_repro::sort::{
    external_sort_spec_resilient, try_external_sort_spec, MemoryRunStorage, SortConfig,
};
use ovc_repro::storage::FileRunStorage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One lock for the whole suite: the fault registry is process-global.
static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    match SUITE_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deterministic per-run seed: CI passes its run id so consecutive runs
/// explore different fire patterns; the value is printed so a failure
/// replays exactly.
fn suite_seed() -> u64 {
    let seed = std::env::var("RANDOM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xEDB7_2023);
    eprintln!("fault_injection seed = {seed}");
    seed
}

fn random_rows(n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Row::new(vec![
                rng.gen_range(0..32u64),
                rng.gen_range(0..8u64),
                rng.gen_range(0..1000u64),
            ])
        })
        .collect()
}

fn catalog(rows: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t1: Vec<Row> = (0..rows)
        .map(|_| Row::new(vec![rng.gen_range(0..64u64), rng.gen_range(0..16u64)]))
        .collect();
    let mut t2: Vec<Row> = (0..rows)
        .map(|_| Row::new(vec![rng.gen_range(0..64u64), rng.gen_range(0..16u64)]))
        .collect();
    t1.sort();
    t2.sort();
    let mut cat = Catalog::new();
    cat.register("t1", Table::sorted(t1, 2));
    cat.register("t2", Table::sorted(t2, 2));
    cat.register(
        "heap",
        Table::unsorted(random_rows(2 * rows, seed ^ 0x5EED)),
    );
    cat
}

fn intersect_query() -> LogicalPlan {
    LogicalPlan::scan("t1").set_op(LogicalPlan::scan("t2"), SetOp::Intersect)
}

fn group_query() -> LogicalPlan {
    LogicalPlan::scan("heap")
        .group_by(2, vec![Aggregate::Count, Aggregate::Sum(2)])
        .sort(2)
}

/// Sort query forced through the serial spilling arm: a tiny memory
/// budget spills several runs, dop stays 1 (threshold unreachable).
fn spilling_sort_config() -> PlannerConfig {
    PlannerConfig::default()
        .with_memory_rows(64)
        .with_fan_in(4)
        .with_parallel_threshold(usize::MAX)
}

fn parallel_config() -> PlannerConfig {
    PlannerConfig::default()
        .with_dop(4)
        .with_parallel_threshold(512)
        .with_batch_size(256)
}

/// (rows, codes) of a coded output, for byte-identity assertions.
fn coded_pairs(out: ovc_repro::plan::Output) -> (Vec<Vec<u64>>, Vec<u64>) {
    out.into_coded()
        .into_iter()
        .map(|r| (r.row.cols().to_vec(), r.code.raw()))
        .unzip()
}

fn run_plain(
    cat: &Catalog,
    query: &LogicalPlan,
    config: PlannerConfig,
) -> (Vec<Vec<u64>>, Vec<u64>, ovc_repro::core::StatsSnapshot) {
    let plan = Planner::new(cat, config).plan(query).expect("plans");
    let stats = Stats::new_shared();
    let options = ExecOptions {
        batch_size: config.batch_size,
        ..ExecOptions::default()
    };
    let (rows, codes) = coded_pairs(execute(&plan, cat, &stats, &options));
    (rows, codes, stats.snapshot())
}

/// Rows, codes, and engine-stat deltas of one context-tracked run.
type CtxRun = (Vec<Vec<u64>>, Vec<u64>, ovc_repro::core::StatsSnapshot);

fn run_ctx(
    cat: &Catalog,
    query: &LogicalPlan,
    config: PlannerConfig,
    qctx: &QueryCtx,
) -> Result<CtxRun, ExecError> {
    let plan = Planner::new(cat, config).plan(query).expect("plans");
    let stats = Stats::new_shared();
    let options = ExecOptions {
        batch_size: config.batch_size,
        ..ExecOptions::default()
    };
    let out = execute_ctx(&plan, cat, &stats, &options, qctx)?;
    let (rows, codes) = coded_pairs(out);
    Ok((rows, codes, stats.snapshot()))
}

#[test]
fn injected_spill_write_fault_is_typed_and_retry_is_byte_identical() {
    let _l = locked();
    let seed = suite_seed();
    let rows = random_rows(800, seed);
    let spec = SortSpec::asc(2);
    let cfg = SortConfig::new(2, 64).with_fan_in(4);

    let reference: Vec<_> = {
        let stats = Stats::new_shared();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        try_external_sort_spec(rows.clone(), cfg, &spec, &mut storage, &stats)
            .expect("clean sort")
            .collect()
    };

    // The bare sort surfaces the injected write failure as a typed
    // error, not a panic and not wrong rows.
    {
        let _guard = fault::install(FaultConfig::new(seed).once(FaultPoint::SpillWrite));
        let stats = Stats::new_shared();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        let err = try_external_sort_spec(rows.clone(), cfg, &spec, &mut storage, &stats)
            .map(|_| ())
            .expect_err("injected write fault must surface");
        assert_eq!(err.reason(), "spill_io");
    }

    // The resilient sort retries from source and reproduces the exact
    // rows AND codes — codes are a function of the output sequence
    // alone, so the recovery path cannot drift.
    {
        let _guard = fault::install(FaultConfig::new(seed).once(FaultPoint::SpillWrite));
        let stats = Stats::new_shared();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        let out: Vec<_> = external_sort_spec_resilient(rows, cfg, &spec, &mut storage, &stats)
            .expect("resilient sort recovers")
            .collect();
        assert_eq!(out, reference, "recovered output must be byte-identical");
    }
}

#[test]
fn injected_spill_corruption_is_detected_and_recovered() {
    let _l = locked();
    let seed = suite_seed();
    let rows = random_rows(700, seed ^ 1);
    let spec = SortSpec::asc(2);
    let cfg = SortConfig::new(2, 64).with_fan_in(4);

    let reference: Vec<_> = {
        let stats = Stats::new_shared();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        try_external_sort_spec(rows.clone(), cfg, &spec, &mut storage, &stats)
            .expect("clean sort")
            .collect()
    };

    // A flipped byte in a checksummed raw spill frame comes back as a
    // typed corruption error on read-back.
    {
        let _guard = fault::install(FaultConfig::new(seed).once(FaultPoint::SpillCorrupt));
        let stats = Stats::new_shared();
        let mut storage = FileRunStorage::new_raw(Arc::clone(&stats)).expect("tempdir");
        let err = try_external_sort_spec(rows.clone(), cfg, &spec, &mut storage, &stats)
            .map(|_| ())
            .expect_err("corrupted frame must fail the read-back");
        assert_eq!(err.reason(), "spill_corruption");
    }

    // And the resilient path recovers to the exact reference output.
    {
        let _guard = fault::install(FaultConfig::new(seed).once(FaultPoint::SpillCorrupt));
        let stats = Stats::new_shared();
        let mut storage = FileRunStorage::new_raw(Arc::clone(&stats)).expect("tempdir");
        let out: Vec<_> = external_sort_spec_resilient(rows, cfg, &spec, &mut storage, &stats)
            .expect("resilient sort recovers from corruption")
            .collect();
        assert_eq!(out, reference);
    }
}

#[test]
fn plan_level_spill_fault_recovers_to_identical_output() {
    let _l = locked();
    let seed = suite_seed();
    let cat = catalog(1_000, seed);
    let query = LogicalPlan::scan("heap").sort(3);
    let config = spilling_sort_config();
    let (rows, codes, _) = run_plain(&cat, &query, config);

    // The executor's ctx mode routes serial sorts through the resilient
    // path: the injected device failure is absorbed by the re-sort-
    // from-source retry and the query still answers byte-identically.
    let _guard = fault::install(FaultConfig::new(seed).once(FaultPoint::SpillWrite));
    let qctx = QueryCtx::new();
    let (f_rows, f_codes, _) =
        run_ctx(&cat, &query, config, &qctx).expect("ctx executor recovers the spill fault");
    assert_eq!(f_rows, rows, "recovered rows differ");
    assert_eq!(f_codes, codes, "recovered codes differ");
}

#[test]
fn worker_panic_is_contained_as_typed_error_without_deadlock() {
    let _l = locked();
    let seed = suite_seed();
    let cat = catalog(2_000, seed ^ 2);
    let config = parallel_config();

    // Every parallel worker panics on start: the exchanges must drain
    // their poison frames and fail the query with one typed error —
    // promptly (no deadlocked merge waiting on a dead splitter).  The
    // group-by plan is guaranteed to cross exchanges at this size and
    // dop, so it MUST fail; a plan the planner kept serial spawns no
    // workers and must then answer byte-identically.
    let (rows, codes, _) = run_plain(&cat, &group_query(), config);
    {
        let _guard = fault::install(FaultConfig::new(seed).always(FaultPoint::WorkerPanic));
        let err = run_ctx(&cat, &group_query(), config, &QueryCtx::new())
            .expect_err("a query whose every worker panics cannot succeed");
        assert_eq!(err.reason(), "worker_panic", "got {err}");
    }

    // The process (and the engine) survived: the same plan runs clean
    // and byte-identical immediately afterwards.
    let (c_rows, c_codes, _) =
        run_ctx(&cat, &group_query(), config, &QueryCtx::new()).expect("clean rerun");
    assert_eq!(c_rows, rows);
    assert_eq!(c_codes, codes);

    // Serial-or-parallel plans under the same injection obey the
    // invariant either way: typed error or exact output.
    let (i_rows, i_codes, _) = run_plain(&cat, &intersect_query(), config);
    let _guard = fault::install(FaultConfig::new(seed).always(FaultPoint::WorkerPanic));
    match run_ctx(&cat, &intersect_query(), config, &QueryCtx::new()) {
        Err(err) => assert_eq!(err.reason(), "worker_panic", "got {err}"),
        Ok((r, c, _)) => {
            assert_eq!(r, i_rows, "surviving run must be byte-identical");
            assert_eq!(c, i_codes);
        }
    }
}

#[test]
fn probabilistic_worker_panics_never_yield_wrong_rows() {
    let _l = locked();
    let seed = suite_seed();
    let cat = catalog(1_500, seed ^ 3);
    let config = parallel_config();
    let (rows, codes, _) = run_plain(&cat, &group_query(), config);

    // Sweep fire probabilities: each round must end in a typed error or
    // the exact reference output — the invariant admits nothing else.
    let (mut failed, mut succeeded) = (0u32, 0u32);
    for round in 0..8u64 {
        let _guard = fault::install(
            FaultConfig::new(seed.wrapping_add(round)).with(FaultPoint::WorkerPanic, 120),
        );
        match run_ctx(&cat, &group_query(), config, &QueryCtx::new()) {
            Err(err) => {
                assert_eq!(err.reason(), "worker_panic", "got {err}");
                failed += 1;
            }
            Ok((g_rows, g_codes, _)) => {
                assert_eq!(g_rows, rows, "survived round must be byte-identical");
                assert_eq!(g_codes, codes);
                succeeded += 1;
            }
        }
    }
    eprintln!("probabilistic panics: {failed} failed, {succeeded} clean");
}

#[test]
fn slow_consumers_only_delay_never_corrupt() {
    let _l = locked();
    let seed = suite_seed();
    let cat = catalog(1_500, seed ^ 4);
    let config = parallel_config();
    let (rows, codes, stats) = run_plain(&cat, &group_query(), config);

    let _guard = fault::install(FaultConfig::new(seed).with(FaultPoint::SlowConsumer, 150));
    let (s_rows, s_codes, s_stats) =
        run_ctx(&cat, &group_query(), config, &QueryCtx::new()).expect("slow consumers succeed");
    assert_eq!(s_rows, rows, "backpressure must not change rows");
    assert_eq!(s_codes, codes, "backpressure must not change codes");
    assert_eq!(s_stats, stats, "backpressure must not change accounting");
}

#[test]
fn deadline_cancellation_and_budget_fail_typed() {
    let _l = locked();
    fault::clear();
    let seed = suite_seed();
    let cat = catalog(1_000, seed ^ 5);
    let config = spilling_sort_config();
    let query = LogicalPlan::scan("heap").sort(3);

    // An already-expired deadline fails before any work happens.
    let expired = QueryCtx::with_timeout(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let err = run_ctx(&cat, &query, config, &expired).expect_err("expired deadline");
    assert_eq!(err.reason(), "timeout");

    // A pre-cancelled context refuses likewise.
    let cancelled = QueryCtx::new();
    cancelled.cancel();
    let err = run_ctx(&cat, &query, config, &cancelled).expect_err("cancelled context");
    assert_eq!(err.reason(), "cancelled");

    // A one-byte spill budget trips on the first spilled run.  The
    // sort is *not* recoverable here — budget exhaustion is a policy
    // fault, not a device fault, so no retry is attempted.
    let starved = QueryCtx::build(None, Some(1));
    let err = run_ctx(&cat, &query, config, &starved).expect_err("starved spill budget");
    assert_eq!(err.reason(), "spill_budget");
}

#[test]
fn disabled_registry_is_differentially_identical() {
    let _l = locked();
    fault::clear();
    assert!(!fault::enabled());
    let seed = suite_seed();
    let cat = catalog(1_500, seed ^ 6);

    // Row executor (serial spilling sort), batched parallel executor,
    // and both profiled variants: the fault-tolerant entry points must
    // reproduce rows, codes, and Stats byte-for-byte when no fault is
    // armed — fault tolerance is free until a fault actually fires.
    let cases = [
        (LogicalPlan::scan("heap").sort(3), spilling_sort_config()),
        (group_query(), parallel_config()),
        (intersect_query(), parallel_config()),
    ];
    for (query, config) in cases {
        let (rows, codes, stats) = run_plain(&cat, &query, config);
        let (c_rows, c_codes, c_stats) =
            run_ctx(&cat, &query, config, &QueryCtx::new()).expect("ctx run");
        assert_eq!(c_rows, rows, "ctx rows differ");
        assert_eq!(c_codes, codes, "ctx codes differ");
        assert_eq!(c_stats, stats, "ctx stats differ");

        // Profiled differential: execute_profiled vs execute_ctx_profiled.
        let plan = Planner::new(&cat, config).plan(&query).expect("plans");
        let options = ExecOptions {
            batch_size: config.batch_size,
            ..ExecOptions::default()
        };
        let stats_a = Stats::new_shared();
        let (out_a, _) = execute_profiled(&plan, &cat, &stats_a, &options);
        let (p_rows, p_codes) = coded_pairs(out_a);
        let stats_b = Stats::new_shared();
        let (out_b, prof) = execute_ctx_profiled(&plan, &cat, &stats_b, &options, &QueryCtx::new())
            .expect("profiled ctx run");
        let (pc_rows, pc_codes) = coded_pairs(out_b);
        assert_eq!(pc_rows, p_rows, "profiled ctx rows differ");
        assert_eq!(pc_codes, p_codes, "profiled ctx codes differ");
        assert_eq!(
            stats_b.snapshot(),
            stats_a.snapshot(),
            "profiled stats differ"
        );
        assert!(
            prof.snapshot()
                .nodes()
                .iter()
                .any(|n| n.metrics.rows_out > 0),
            "ctx profiling still observes rows"
        );
    }
}

// ---------------------------------------------------------------------------
// Served-query fault surface: typed error frames on the wire and the
// cancelled / timed-out metrics they feed.
// ---------------------------------------------------------------------------

const GROUP_WIRE: &str = r#"{"plan": {"sort": {"input": {"group_by": {"input": {"scan": "heap"},
    "group_len": 2, "aggs": ["count", {"sum": 2}]}}, "key_len": 2}}}"#;

fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("missing series {name} in:\n{text}"))
        .parse()
        .expect("counter value")
}

#[test]
fn served_timeout_yields_typed_error_frame_and_metric() {
    use ovc_repro::server::{Client, Server, ServerConfig};
    let _l = locked();
    fault::clear();
    let seed = suite_seed();

    let server = Server::bind(
        ServerConfig {
            planner: parallel_config(),
            ..ServerConfig::default()
        },
        catalog(1_500, seed ^ 7),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    // An already-expired deadline: the header frame still opens the
    // stream, then the typed error frame closes it — no hang, no
    // truncation, and the reason crosses the wire machine-readably.
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .query_with_headers(GROUP_WIRE, &[("x-query-timeout-ms", "0")])
        .expect_err("expired deadline must fail the query");
    assert_eq!(err.status, 200, "failure is mid-stream, not pre-header");
    assert!(err.message.contains("[timeout]"), "{err}");

    // A garbage timeout header is refused before execution.
    let err = client
        .query_with_headers(GROUP_WIRE, &[("x-query-timeout-ms", "soon")])
        .expect_err("unparseable timeout");
    assert_eq!(err.status, 400, "{err}");

    // The session survives the error frame: the very same connection
    // serves the same query cleanly with a generous deadline.
    let ok = client
        .query_with_headers(GROUP_WIRE, &[("x-query-timeout-ms", "60000")])
        .expect("follow-up query on the same connection");
    assert!(!ok.rows.is_empty());

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metric(&metrics, "ovc_queries_timed_out_total"), 1);
    assert_eq!(metric(&metrics, "ovc_queries_cancelled_total"), 0);
    assert_eq!(metric(&metrics, "ovc_queries_total"), 1);

    handle.shutdown();
    runner.join().expect("runner").expect("run");
}

#[test]
fn client_disconnect_mid_stream_counts_cancelled_and_frees_the_slot() {
    use ovc_repro::server::{Client, Server, ServerConfig};
    let _l = locked();
    fault::clear();
    let seed = suite_seed();

    // A response far larger than any socket buffer, so the server is
    // still writing when the client walks away.
    let mut big: Vec<Row> = random_rows(200_000, seed ^ 8);
    big.sort();
    let mut cat = catalog(500, seed ^ 9);
    cat.register("big", Table::sorted(big, 3));

    let server = Server::bind(ServerConfig::default(), cat).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let state = std::sync::Arc::clone(handle.state());
    let runner = std::thread::spawn(move || server.run());

    // Raw socket: send the query, never read the response, then close
    // with the stream mid-flight — the kernel RSTs, the server's write
    // fails, and the query must be counted cancelled, not completed.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("tcp connect");
        let body = r#"{"plan": {"scan": "big"}}"#;
        write!(
            raw,
            "POST /query HTTP/1.1\r\nhost: test\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .expect("send request");
        raw.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(50));
        // Dropped here with the whole response unread.
    }

    // The abandonment is observed as soon as the blocked write fails.
    let mut observer = Client::connect(addr).expect("observer connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = observer.metrics().expect("metrics");
        if metric(&metrics, "ovc_queries_cancelled_total") == 1 {
            assert_eq!(metric(&metrics, "ovc_queries_timed_out_total"), 0);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never noticed the disconnect:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The in-flight gauge drained and the slot is free: a fresh client
    // is admitted and served in full.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while state
        .in_flight_queries
        .load(std::sync::atomic::Ordering::SeqCst)
        != 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "in-flight gauge stuck after disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let served = observer
        .query(r#"{"plan": {"scan": "big"}}"#)
        .expect("post-disconnect query");
    assert_eq!(served.rows.len(), 200_000, "full result after recovery");

    handle.shutdown();
    runner.join().expect("runner").expect("run");
}
