//! Property tests of the flat columnar run layout (DESIGN.md §10).
//!
//! The refactor's contract is byte-identity: sorting and merging over
//! flat, struct-of-arrays runs must produce exactly the rows **and
//! codes** of the boxed-row reference — under ascending, mixed-direction,
//! and normalized-key `SortSpec`s — and spilled flat runs must round-trip
//! bit-exactly through both encodings.

use std::sync::Arc;

use ovc_core::derive::{assert_codes_exact_spec, derive_codes_spec};
use ovc_core::{Direction, Ovc, OvcRow, Row, SortSpec, Stats};
use ovc_sort::{
    external_sort_spec_collect, external_sort_spec_to_run, merge_runs_to_run_spec,
    sort_rows_ovc_spec, sort_rows_quicksort_spec, MemoryRunStorage, SortConfig,
};
use ovc_storage::{decode_run, decode_run_raw, encode_run, encode_run_raw, EncodedRunStorage};
use proptest::prelude::*;

/// Every spec family the refactor must preserve byte-for-byte.
fn specs() -> Vec<(&'static str, SortSpec)> {
    let mixed = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc, Direction::Desc]);
    vec![
        ("asc", SortSpec::asc(3)),
        ("mixed", mixed.clone()),
        ("asc norm", SortSpec::asc(3).with_normalized(true)),
        ("mixed norm", mixed.with_normalized(true)),
    ]
}

/// Boxed-row reference: `sort_by` under the spec (stable, like every run
/// strategy), then the reference code derivation.
fn reference_sorted(rows: &[Row], spec: &SortSpec) -> Vec<(Row, Ovc)> {
    let k = spec.len();
    let mut sorted = rows.to_vec();
    sorted.sort_by(|a, b| spec.cmp_keys(a.key(k), b.key(k)));
    let codes = derive_codes_spec(&sorted, spec);
    sorted.into_iter().zip(codes).collect()
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    // 3 key columns over a small domain (plenty of duplicates and shared
    // prefixes) plus one payload column.
    prop::collection::vec((prop::collection::vec(0u64..5, 3), 0u64..1000), 0..250).prop_map(|v| {
        v.into_iter()
            .map(|(mut key, payload)| {
                key.push(payload);
                Row::new(key)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The external sort over flat runs is byte-identical (rows + codes)
    /// to the boxed-row reference under every spec family, both as a
    /// materialized stream and as a flat run.
    #[test]
    fn flat_sort_is_byte_identical_to_boxed_reference(
        rows in rows_strategy(),
        memory in 1usize..48,
        fan_in in 2usize..6,
    ) {
        for (label, spec) in specs() {
            let expect = reference_sorted(&rows, &spec);

            let stats = Stats::new_shared();
            let cfg = SortConfig::new(3, memory).with_fan_in(fan_in);
            let out = external_sort_spec_collect(rows.clone(), cfg, &spec, &stats);
            let got: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
            prop_assert_eq!(&got, &expect, "stream path under {}", label);

            let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
            let run = external_sort_spec_to_run(rows.clone(), cfg, &spec, &mut storage, &stats);
            let flat_pairs: Vec<(Row, Ovc)> =
                run.iter().map(|(r, c)| (Row::from_slice(r), c)).collect();
            prop_assert_eq!(&flat_pairs, &expect, "flat-run path under {}", label);
            assert_codes_exact_spec(&flat_pairs, &spec);
        }
    }

    /// Both run-generation strategies produce the same flat run, and
    /// merging flat runs equals sorting the concatenation — the merge
    /// tournament introduces no layout-dependent behavior.
    #[test]
    fn strategies_and_merges_agree_on_flat_runs(
        a in rows_strategy(),
        b in rows_strategy(),
    ) {
        for (label, spec) in specs() {
            let stats = Stats::new_shared();
            let pq = sort_rows_ovc_spec(a.clone(), &spec, &stats);
            let qs = sort_rows_quicksort_spec(a.clone(), &spec, &stats);
            prop_assert_eq!(pq.flat(), qs.flat(), "strategies under {}", label);

            let run_b = sort_rows_ovc_spec(b.clone(), &spec, &stats);
            let merged = merge_runs_to_run_spec(vec![pq, run_b], &spec, &stats);
            let mut both = a.clone();
            both.extend(b.iter().cloned());
            let whole = reference_sorted(&both, &spec);
            let got: Vec<(Row, Ovc)> =
                merged.iter().map(|(r, c)| (Row::from_slice(r), c)).collect();
            prop_assert_eq!(got, whole, "merge under {}", label);
        }
    }

    /// Flat runs round-trip bit-exactly through both spill encodings and
    /// through the encoded spill device.
    #[test]
    fn flat_spill_round_trips(rows in rows_strategy()) {
        let stats = Stats::new_shared();
        let run = sort_rows_ovc_spec(rows, &SortSpec::asc(3), &stats);

        let truncated = decode_run(&encode_run(&run));
        prop_assert_eq!(truncated.flat(), run.flat());
        prop_assert_eq!(truncated.sort_spec(), run.sort_spec());

        let raw = decode_run_raw(&encode_run_raw(&run)).expect("clean frame decodes");
        prop_assert_eq!(raw.flat(), run.flat());

        let mut device = EncodedRunStorage::new(Arc::clone(&stats));
        use ovc_sort::RunStorage;
        let handle = device.write_run(run.clone()).expect("write");
        let back = device.read_run(handle).expect("read");
        prop_assert_eq!(back.flat(), run.flat());
        prop_assert_eq!(stats.bytes_spilled(), stats.bytes_read_back());
    }
}

/// Boxed materialization points (cursor, `into_rows`, `CodedBatch` flat
/// variant) agree with the flat storage they read from.
#[test]
fn materialization_boundaries_agree() {
    let rows: Vec<Row> = (0..200).map(|i| Row::new(vec![i % 7, i % 3, i])).collect();
    let stats = Stats::new_shared();
    let run = sort_rows_ovc_spec(rows, &SortSpec::asc(2), &stats);

    let via_cursor: Vec<OvcRow> = run.clone().cursor().collect();
    let via_rows = run.clone().into_rows();
    assert_eq!(via_cursor, via_rows);

    let batch = ovc_core::CodedBatch::from_flat(run.flat().clone(), run.sort_spec().clone());
    assert!(batch.is_flat());
    let via_batch: Vec<OvcRow> = batch.into_stream().collect();
    assert_eq!(via_batch, via_rows);
}
