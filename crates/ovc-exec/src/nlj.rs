//! Nested-loops join and lookup join (Section 4.8).
//!
//! "If each result from the inner input is also sorted (on any of its
//! columns) and includes offset-value codes, the output rows of inner
//! join and left outer join benefit from offset-value codes of matching
//! inner rows, with the offset incremented by the size of the outer sort
//! key."  For duplicate outer keys with multiple matches, "the roles of
//! outer and inner loops are reversed within each many-to-many match" so
//! that output codes reach their maximal offsets.
//!
//! The inner side is abstracted as an [`InnerSource`]: a b-tree index
//! (index nested-loops / lookup join) or a predicate over a stored sorted
//! table (plain nested iteration, join predicate not necessarily
//! equality — "there is no requirement that the join predicate is an
//! equality predicate").
//!
//! Following the paper, the supported types are left semi, left anti,
//! inner, and left outer join ("like most implementations of lookup
//! join … we ignore here right semi join, …").

use std::collections::VecDeque;
use std::sync::Arc;

use ovc_core::theorem::OvcAccumulator;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Stats};
use ovc_storage::BTree;

use crate::merge_join::{JoinType, NULL_VALUE};

/// A source of sorted, coded inner results for each outer row.
pub trait InnerSource {
    /// Sort-key arity of the results.
    fn inner_key_len(&self) -> usize;
    /// Column count of inner rows (for outer-join padding).
    fn inner_width(&self) -> usize;
    /// Matching inner rows for this outer row, sorted, with exact codes
    /// (first row coded relative to "−∞").
    fn lookup(&self, outer: &Row) -> Vec<OvcRow>;
}

/// Index nested-loops join source: probe a [`BTree`] with the first
/// `probe_len` columns of the outer row.
pub struct BTreeInner<'a> {
    index: &'a BTree,
    probe_len: usize,
    width: usize,
    stats: Arc<Stats>,
}

impl<'a> BTreeInner<'a> {
    /// Probe `index` with the outer row's first `probe_len` columns.
    pub fn new(index: &'a BTree, probe_len: usize, width: usize, stats: Arc<Stats>) -> Self {
        assert!(probe_len <= index.key_len());
        BTreeInner {
            index,
            probe_len,
            width,
            stats,
        }
    }
}

impl InnerSource for BTreeInner<'_> {
    fn inner_key_len(&self) -> usize {
        self.index.key_len()
    }
    fn inner_width(&self) -> usize {
        self.width
    }
    fn lookup(&self, outer: &Row) -> Vec<OvcRow> {
        self.index
            .lookup(&outer.cols()[..self.probe_len], &self.stats)
    }
}

/// Plain nested-loops source: a stored sorted coded table filtered by an
/// arbitrary two-table predicate.  Result codes follow the filter theorem
/// (Section 4.8: the theorem does not care whether rows fail "a
/// single-table predicate in a filter \[or\] a two-table predicate").
pub struct PredicateInner<P> {
    table: Vec<OvcRow>,
    key_len: usize,
    width: usize,
    predicate: P,
}

impl<P: Fn(&Row, &Row) -> bool> PredicateInner<P> {
    /// Wrap a sorted coded table and a predicate `(outer, inner) -> bool`.
    pub fn new(table: Vec<OvcRow>, key_len: usize, predicate: P) -> Self {
        let width = table.first().map(|r| r.row.width()).unwrap_or(key_len);
        PredicateInner {
            table,
            key_len,
            width,
            predicate,
        }
    }
}

impl<P: Fn(&Row, &Row) -> bool> InnerSource for PredicateInner<P> {
    fn inner_key_len(&self) -> usize {
        self.key_len
    }
    fn inner_width(&self) -> usize {
        self.width
    }
    fn lookup(&self, outer: &Row) -> Vec<OvcRow> {
        // One filter-theorem accumulator per nested iteration.
        let mut acc = OvcAccumulator::new();
        let mut out = Vec::new();
        for OvcRow { row, code } in &self.table {
            if (self.predicate)(outer, row) {
                out.push(OvcRow::new(row.clone(), acc.emit(*code)));
            } else {
                acc.absorb(*code);
            }
        }
        out
    }
}

/// Order-preserving nested-loops / lookup join.
///
/// Output of inner and left outer joins is sorted on
/// `outer key ++ inner key` with codes of that combined arity; output rows
/// are laid out as `[outer key][inner key][outer payload][inner payload]`.
/// Semi and anti joins emit unmodified outer rows with codes at the outer
/// arity.
pub struct LookupJoin<S: OvcStream, I: InnerSource> {
    outer: S,
    inner: I,
    join_type: JoinType,
    outer_key_len: usize,
    out_arity: usize,
    /// Accumulator over rebased outer codes (inner/left-outer output).
    acc: OvcAccumulator,
    /// Accumulator over original outer codes (semi/anti output).
    outer_acc: OvcAccumulator,
    /// Lookahead for duplicate-group collection.
    carry: Option<OvcRow>,
    queue: VecDeque<OvcRow>,
}

impl<S: OvcStream, I: InnerSource> LookupJoin<S, I> {
    /// Build the join.  Panics on unsupported (right-flavoured) types.
    pub fn new(outer: S, inner: I, join_type: JoinType) -> Self {
        assert!(
            matches!(
                join_type,
                JoinType::Inner | JoinType::LeftOuter | JoinType::LeftSemi | JoinType::LeftAnti
            ),
            "lookup join supports left-flavoured types only (Section 4.8)"
        );
        let outer_key_len = outer.key_len();
        let out_arity = outer_key_len + inner.inner_key_len();
        LookupJoin {
            outer,
            inner,
            join_type,
            outer_key_len,
            out_arity,
            acc: OvcAccumulator::new(),
            outer_acc: OvcAccumulator::new(),
            carry: None,
            queue: VecDeque::new(),
        }
    }

    /// Collect the next maximal group of outer rows with equal full keys
    /// (duplicate codes — a free test).  Returns the group's boundary code.
    fn next_group(&mut self) -> Option<(Ovc, Vec<OvcRow>)> {
        let first = match self.carry.take() {
            Some(r) => r,
            None => self.outer.next()?,
        };
        let boundary = first.code;
        let mut group = vec![first];
        for r in self.outer.by_ref() {
            if r.code.is_duplicate() {
                group.push(r);
            } else {
                self.carry = Some(r);
                break;
            }
        }
        Some((boundary, group))
    }

    /// Combined output row: `[outer key][inner key][outer payload][inner payload]`.
    fn combine(&self, outer: &Row, inner: &Row) -> Row {
        let ikl = self.inner.inner_key_len();
        let mut cols = Vec::with_capacity(outer.width() + inner.width());
        cols.extend_from_slice(outer.key(self.outer_key_len));
        cols.extend_from_slice(inner.key(ikl));
        cols.extend_from_slice(outer.payload(self.outer_key_len));
        cols.extend_from_slice(inner.payload(ikl));
        Row::new(cols)
    }

    /// Pad for a left outer join non-match: NULL inner columns.
    fn pad(&self, outer: &Row) -> Row {
        let ikl = self.inner.inner_key_len();
        let mut cols = Vec::with_capacity(outer.width() + self.inner.inner_width());
        cols.extend_from_slice(outer.key(self.outer_key_len));
        cols.extend(std::iter::repeat_n(NULL_VALUE, ikl));
        cols.extend_from_slice(outer.payload(self.outer_key_len));
        cols.extend(std::iter::repeat_n(
            NULL_VALUE,
            self.inner.inner_width() - ikl,
        ));
        Row::new(cols)
    }

    /// Re-express an outer boundary code (< outer arity) at output arity.
    fn rebase(&self, code: Ovc) -> Ovc {
        debug_assert!(code.is_valid());
        if code.is_duplicate() {
            // Only possible for the degenerate 0-column outer key.
            Ovc::duplicate()
        } else {
            Ovc::new(
                code.offset(self.outer_key_len),
                code.value(),
                self.out_arity,
            )
        }
    }

    /// Shift an inner-result code past the outer key (the paper's "offset
    /// incremented by the size of the outer sort key").
    fn shift_inner(&self, code: Ovc) -> Ovc {
        let ikl = self.inner.inner_key_len();
        if code.is_duplicate() {
            Ovc::duplicate()
        } else {
            Ovc::new(
                self.outer_key_len + code.offset(ikl),
                code.value(),
                self.out_arity,
            )
        }
    }

    fn process_group(&mut self, boundary: Ovc, group: Vec<OvcRow>) {
        let matches = self.inner.lookup(&group[0].row);
        match self.join_type {
            JoinType::LeftSemi | JoinType::LeftAnti => {
                let emit = (self.join_type == JoinType::LeftSemi) != matches.is_empty();
                if emit {
                    for (i, r) in group.into_iter().enumerate() {
                        let code = if i == 0 {
                            self.outer_acc.emit(r.code)
                        } else {
                            r.code
                        };
                        self.queue.push_back(OvcRow::new(r.row, code));
                    }
                } else {
                    for r in &group {
                        self.outer_acc.absorb(r.code);
                    }
                }
            }
            JoinType::Inner | JoinType::LeftOuter => {
                if matches.is_empty() {
                    if self.join_type == JoinType::LeftOuter {
                        for (i, r) in group.iter().enumerate() {
                            let code = if i == 0 {
                                self.acc.emit(self.rebase(boundary))
                            } else {
                                Ovc::duplicate()
                            };
                            self.queue.push_back(OvcRow::new(self.pad(&r.row), code));
                        }
                    } else {
                        self.acc.absorb(self.rebase(boundary));
                    }
                } else {
                    // Inner-major emission so that output codes reach their
                    // maximal offsets for duplicate outer keys (Section 4.8).
                    for (mi, m) in matches.iter().enumerate() {
                        for (oi, o) in group.iter().enumerate() {
                            let code = if mi == 0 && oi == 0 {
                                self.acc.emit(self.rebase(boundary))
                            } else if oi == 0 {
                                self.shift_inner(m.code)
                            } else {
                                Ovc::duplicate()
                            };
                            self.queue
                                .push_back(OvcRow::new(self.combine(&o.row, &m.row), code));
                        }
                    }
                }
            }
            _ => unreachable!("rejected in constructor"),
        }
    }
}

impl<S: OvcStream, I: InnerSource> Iterator for LookupJoin<S, I> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            if let Some(r) = self.queue.pop_front() {
                return Some(r);
            }
            let (boundary, group) = self.next_group()?;
            self.process_group(boundary, group);
        }
    }
}

impl<S: OvcStream, I: InnerSource> OvcStream for LookupJoin<S, I> {
    fn key_len(&self) -> usize {
        match self.join_type {
            JoinType::LeftSemi | JoinType::LeftAnti => self.outer_key_len,
            _ => self.out_arity,
        }
    }
}

/// Convenience: the [`ovc_core::Value`] alias serves predicate closures.
pub type PredicateFn = fn(&Row, &Row) -> bool;

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build_index(rows: Vec<Vec<u64>>, key_len: usize) -> BTree {
        let mut rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        rows.sort();
        BTree::bulk_load(rows, key_len, 4, 4)
    }

    #[test]
    fn index_lookup_inner_join() {
        // Outer: (k, payload); inner indexed on (k, v).
        let outer_rows = vec![vec![1u64, 100], vec![2, 200], vec![3, 300]];
        let index = build_index(vec![vec![1, 11], vec![1, 12], vec![3, 31]], 2);
        let stats = Stats::new_shared();
        let outer =
            VecStream::from_unsorted_rows(outer_rows.into_iter().map(Row::new).collect(), 1);
        let inner = BTreeInner::new(&index, 1, 2, Arc::clone(&stats));
        let join = LookupJoin::new(outer, inner, JoinType::Inner);
        assert_eq!(join.key_len(), 3); // outer key (1) + inner key (2)
        let pairs = collect_pairs(join);
        assert_codes_exact(&pairs, 3);
        let got: Vec<Vec<u64>> = pairs.iter().map(|(r, _)| r.cols().to_vec()).collect();
        // Layout: [outer key][inner key][outer payload][inner payload].
        assert_eq!(
            got,
            vec![
                vec![1, 1, 11, 100],
                vec![1, 1, 12, 100],
                vec![3, 3, 31, 300],
            ]
        );
    }

    #[test]
    fn duplicate_outer_keys_reverse_loops() {
        // Two identical outer rows, two matches: emission must be
        // inner-major and codes exact at the combined arity.
        let outer =
            VecStream::from_unsorted_rows(vec![Row::new(vec![5, 1]), Row::new(vec![5, 1])], 2);
        let index = build_index(vec![vec![5, 10], vec![5, 20]], 2);
        let stats = Stats::new_shared();
        let inner = BTreeInner::new(&index, 1, 2, stats);
        let join = LookupJoin::new(outer, inner, JoinType::Inner);
        let pairs = collect_pairs(join);
        assert_eq!(pairs.len(), 4);
        assert_codes_exact(&pairs, 4);
        // Inner-major: both outers with match 10 first, then match 20.
        let inner_vals: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[3]).collect();
        assert_eq!(inner_vals, vec![10, 10, 20, 20]);
    }

    #[test]
    fn left_outer_pads_non_matches() {
        let outer = VecStream::from_unsorted_rows(vec![Row::new(vec![1]), Row::new(vec![9])], 1);
        let index = build_index(vec![vec![1, 10]], 2);
        let stats = Stats::new_shared();
        let inner = BTreeInner::new(&index, 1, 2, stats);
        let join = LookupJoin::new(outer, inner, JoinType::LeftOuter);
        let pairs = collect_pairs(join);
        assert_codes_exact(&pairs, 3);
        assert_eq!(pairs[1].0.cols(), &[9, NULL_VALUE, NULL_VALUE]);
    }

    #[test]
    fn semi_and_anti_preserve_outer_codes() {
        let mut rng = StdRng::seed_from_u64(40);
        let outer_rows: Vec<Row> = (0..200)
            .map(|_| Row::new(vec![rng.gen_range(0..10u64), rng.gen_range(0..5u64)]))
            .collect();
        let index = build_index((0..5).map(|k| vec![k * 2, k]).collect(), 2);
        for jt in [JoinType::LeftSemi, JoinType::LeftAnti] {
            let stats = Stats::new_shared();
            let outer = VecStream::from_unsorted_rows(outer_rows.clone(), 2);
            let inner = BTreeInner::new(&index, 1, 2, Arc::clone(&stats));
            let join = LookupJoin::new(outer, inner, jt);
            assert_eq!(join.key_len(), 2);
            let pairs = collect_pairs(join);
            assert_codes_exact(&pairs, 2);
            for (row, _) in &pairs {
                let matched = row.cols()[0] % 2 == 0 && row.cols()[0] < 10;
                assert_eq!(matched, jt == JoinType::LeftSemi);
            }
        }
    }

    #[test]
    fn predicate_inner_supports_non_equality() {
        // Band join: inner rows whose key is within 1 of the outer key.
        let table: Vec<OvcRow> = {
            let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![i, i * 100])).collect();
            let codes = ovc_core::derive::derive_codes(&rows, 1);
            rows.into_iter()
                .zip(codes)
                .map(|(r, c)| OvcRow::new(r, c))
                .collect()
        };
        let inner = PredicateInner::new(table, 1, |o: &Row, i: &Row| {
            o.cols()[0].abs_diff(i.cols()[0]) <= 1
        });
        let outer = VecStream::from_unsorted_rows(vec![Row::new(vec![5])], 1);
        let join = LookupJoin::new(outer, inner, JoinType::Inner);
        let pairs = collect_pairs(join);
        assert_codes_exact(&pairs, 2);
        let matched: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[1]).collect();
        assert_eq!(matched, vec![4, 5, 6]);
    }

    #[test]
    fn empty_outer() {
        let index = build_index(vec![vec![1, 1]], 2);
        let stats = Stats::new_shared();
        let inner = BTreeInner::new(&index, 1, 2, stats);
        let outer = VecStream::from_sorted_rows(vec![], 1);
        assert_eq!(LookupJoin::new(outer, inner, JoinType::Inner).count(), 0);
    }
}
