//! # ovc-exec — query execution operators that consume and produce OVCs
//!
//! The paper's main contribution (Section 4): every order-preserving
//! query execution operator can *produce* offset-value codes for its
//! output from the codes of its inputs, with "no additional column value
//! comparisons beyond those required in the operation itself":
//!
//! * [`filter`] — predicate filter via the filter theorem (§4.1, Table 3);
//! * [`project`] — projection and sort-key clamping (§4.2);
//! * [`dedup`] — duplicate removal by code inspection (§4.4);
//! * [`group`] — in-stream grouping/aggregation, Figure 4's operator (§4.5);
//! * [`pivot`] — pivoting as grouping (§4.6);
//! * [`merge_join`] — inner/semi/anti/outer merge joins whose merge logic
//!   itself compares codes (§4.7);
//! * [`set_ops`] — union/intersect/except and multiset variants (§4.7);
//! * [`nlj`] — nested-loops and b-tree lookup joins (§4.8);
//! * [`hash_join_op`] — order-preserving in-memory hash join (§4.9);
//! * [`window`] — analytic (window) functions over coded streams (§5);
//! * [`batch`] — morsel-style batch-at-a-time counterparts (filter,
//!   project, clamp, dedup, top-k, and the splitting shuffle) over
//!   [`ovc_core::FlatRows`] batches with seam-exact codes;
//! * [`exchange`] — order-preserving split and merge shuffles (§4.10),
//!   single-threaded data-flow semantics;
//! * [`parallel`] — the same shuffles on real producer/consumer threads
//!   with bounded channels (the exchange-parallel regime of F1 Query);
//! * [`plans`] — the sort-based "intersect distinct" plan of Figure 5.
//!
//! Every operator upholds the [`ovc_core::stream::OvcStream`] contract:
//! output codes are exact, so operators compose into arbitrarily deep
//! pipelines carrying codes end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod dedup;
pub mod exchange;
pub mod filter;
pub mod group;
pub mod hash_join_op;
pub mod merge_join;
pub mod nlj;
pub mod parallel;
pub mod pivot;
pub mod plans;
pub mod project;
pub mod set_ops;
pub mod window;

pub use batch::{
    route_batches, BatchChannelStream, BatchClampKey, BatchDedup, BatchFilter, BatchFrame,
    BatchProject, BatchTake,
};
pub use dedup::{Dedup, DedupCounting};
pub use filter::Filter;
pub use group::{
    Aggregate, GroupAggregate, GroupCountDistinct, GroupCountDistinctPartial, GroupFinal,
    GroupPartial,
};
pub use hash_join_op::{HashJoinOp, HashTable};
pub use merge_join::{JoinType, MergeJoin, NULL_VALUE};
pub use nlj::{BTreeInner, InnerSource, LookupJoin, PredicateInner};
pub use parallel::{
    count_distinct_partitions_partial, group_partitions, group_partitions_partial,
    merge_join_partitions, merge_threaded, merge_threaded_spec, merge_threaded_spec_gauged,
    repartition_threaded, set_op_partitions, split_threaded, split_threaded_gauged, ChannelStream,
    MergeThreaded, SplitThreads, DEFAULT_CHANNEL_CAPACITY,
};
pub use pivot::{Pivot, PivotSpec};
pub use project::{ClampKey, Project};
pub use set_ops::{SetOp, SetOperation};
pub use window::{Window, WindowFunc};
