//! Duplicate removal (Section 4.4).
//!
//! "In a sorted stream with offset-value codes, duplicate removal
//! suppresses input rows with offsets equal to the arity (count of
//! columns) … All other rows, i.e., the output rows, retain their
//! offset-value codes from the input.  In the duplicate-free output, no
//! row has an offset equal to the arity."
//!
//! Detection is a single integer test per row — `offset == arity` is the
//! duplicate code, the smallest valid code — with no column comparisons.
//! Retaining the survivors' codes is correct because a duplicate shares
//! its entire key with its predecessor: the code of the next distinct row
//! relative to the duplicate equals its code relative to the first copy.

use ovc_core::{OvcRow, OvcStream};

/// Duplicate removal over the full sort key.
pub struct Dedup<S> {
    input: S,
}

impl<S: OvcStream> Dedup<S> {
    /// Remove rows whose key equals the previous row's key.
    pub fn new(input: S) -> Self {
        Dedup { input }
    }
}

impl<S: OvcStream> Iterator for Dedup<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            let r = self.input.next()?;
            if !r.code.is_duplicate() {
                return Some(r);
            }
        }
    }
}

impl<S: OvcStream> OvcStream for Dedup<S> {
    fn key_len(&self) -> usize {
        self.input.key_len()
    }
    fn sort_spec(&self) -> ovc_core::SortSpec {
        self.input.sort_spec()
    }
}

/// Duplicate removal that keeps a count of collapsed copies, appended as a
/// payload column — the "single copy with counter" representation that
/// Section 4.7 recommends for sort-based multi-set operations.
pub struct DedupCounting<S: Iterator<Item = OvcRow>> {
    input: std::iter::Peekable<S>,
    spec: ovc_core::SortSpec,
}

impl<S: OvcStream> DedupCounting<S> {
    /// Collapse duplicates into `(row, count)`; the count becomes the
    /// output row's last column.
    pub fn new(input: S) -> Self {
        let spec = input.sort_spec();
        DedupCounting {
            input: input.peekable(),
            spec,
        }
    }
}

impl<S: OvcStream> Iterator for DedupCounting<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        let first = self.input.next()?;
        debug_assert!(!first.code.is_duplicate(), "input must start each group");
        let mut count = 1u64;
        while let Some(peek) = self.input.peek() {
            if peek.code.is_duplicate() {
                count += 1;
                self.input.next();
            } else {
                break;
            }
        }
        let mut cols = first.row.cols().to_vec();
        cols.push(count);
        Some(OvcRow::new(ovc_core::Row::new(cols), first.code))
    }
}

impl<S: OvcStream> OvcStream for DedupCounting<S> {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> ovc_core::SortSpec {
        self.spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::{Row, VecStream};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn removes_the_table1_duplicate() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows, 4);
        let dedup = Dedup::new(input);
        let pairs = collect_pairs(dedup);
        assert_eq!(pairs.len(), 6, "one duplicate row suppressed");
        assert_codes_exact(&pairs, 4);
        assert!(pairs.iter().all(|(_, c)| !c.is_duplicate()));
        // Survivors keep their input codes.
        let decimals: Vec<u64> = pairs.iter().map(|(_, c)| c.paper_decimal()).collect();
        assert_eq!(decimals, vec![405, 112, 308, 309, 203, 107]);
    }

    #[test]
    fn random_dedup_matches_reference() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut rows: Vec<Row> = (0..500)
            .map(|_| Row::new(vec![rng.gen_range(0..5u64), rng.gen_range(0..5u64)]))
            .collect();
        rows.sort();
        let mut expect = rows.clone();
        expect.dedup();
        let input = VecStream::from_sorted_rows(rows, 2);
        let pairs = collect_pairs(Dedup::new(input));
        assert_codes_exact(&pairs, 2);
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn counting_dedup_counts() {
        let rows = vec![
            Row::new(vec![1]),
            Row::new(vec![1]),
            Row::new(vec![1]),
            Row::new(vec![2]),
            Row::new(vec![3]),
            Row::new(vec![3]),
        ];
        let input = VecStream::from_sorted_rows(rows, 1);
        let pairs = collect_pairs(DedupCounting::new(input));
        let got: Vec<(u64, u64)> = pairs
            .iter()
            .map(|(r, _)| (r.cols()[0], r.cols()[1]))
            .collect();
        assert_eq!(got, vec![(1, 3), (2, 1), (3, 2)]);
        assert_codes_exact(&pairs, 1);
    }

    #[test]
    fn dedup_without_duplicates_is_identity() {
        let rows: Vec<Row> = (0..20).map(|i| Row::new(vec![i])).collect();
        let input = VecStream::from_sorted_rows(rows.clone(), 1);
        let got: Vec<Row> = Dedup::new(input).map(|r| r.row).collect();
        assert_eq!(got, rows);
    }

    #[test]
    fn dedup_all_equal() {
        let rows = vec![Row::new(vec![9, 9]); 10];
        let input = VecStream::from_sorted_rows(rows, 2);
        let pairs = collect_pairs(Dedup::new(input));
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_input() {
        let input = VecStream::from_sorted_rows(vec![], 2);
        assert_eq!(Dedup::new(input).count(), 0);
        let input = VecStream::from_sorted_rows(vec![], 2);
        assert_eq!(DedupCounting::new(input).count(), 0);
    }
}
