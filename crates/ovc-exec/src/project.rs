//! Projection (Section 4.2).
//!
//! "If all columns in the sort key survive the projection, offset-value
//! codes in the output are the same as in the input.  If not, the offset
//! must be limited to the prefix (column count) that survives."
//!
//! Two operators live here:
//! * [`Project`] — removes, reorders, or computes columns while keeping
//!   some prefix of the sort key as the new leading columns;
//! * [`ClampKey`] — the degenerate projection that merely shortens the
//!   sort key (used by merge join and set operations to re-base codes to
//!   the join key before comparing).

use ovc_core::theorem::clamp_to_prefix;
use ovc_core::{OvcRow, OvcStream, Row};

/// Column projection preserving the first `surviving_key` sort-key columns.
///
/// `map` receives each input row and produces the output row, whose first
/// `surviving_key` columns must equal the input's first `surviving_key`
/// columns (debug-asserted) — that is what keeps the stream sorted and the
/// clamped codes exact.
pub struct Project<S, F> {
    input: S,
    map: F,
    in_key_len: usize,
    surviving_key: usize,
}

impl<S: OvcStream, F: FnMut(&Row) -> Row> Project<S, F> {
    /// Build a projection.  Panics if `surviving_key` exceeds the input
    /// key length.
    pub fn new(input: S, surviving_key: usize, map: F) -> Self {
        let in_key_len = input.key_len();
        assert!(surviving_key <= in_key_len);
        Project {
            input,
            map,
            in_key_len,
            surviving_key,
        }
    }
}

impl<S: OvcStream, F: FnMut(&Row) -> Row> Iterator for Project<S, F> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        let OvcRow { row, code } = self.input.next()?;
        let out = (self.map)(&row);
        debug_assert_eq!(
            out.key(self.surviving_key),
            row.key(self.surviving_key),
            "projection must preserve the surviving key prefix"
        );
        let code = clamp_to_prefix(code, self.in_key_len, self.surviving_key);
        Some(OvcRow::new(out, code))
    }
}

impl<S: OvcStream, F: FnMut(&Row) -> Row> OvcStream for Project<S, F> {
    fn key_len(&self) -> usize {
        self.surviving_key
    }
    fn sort_spec(&self) -> ovc_core::SortSpec {
        self.input.sort_spec().prefix(self.surviving_key)
    }
}

/// Shorten a stream's sort key to its first `new_key_len` columns, clamping
/// codes accordingly.  Rows are untouched.
pub struct ClampKey<S> {
    input: S,
    in_key_len: usize,
    new_key_len: usize,
}

impl<S: OvcStream> ClampKey<S> {
    /// Wrap `input` with a shorter sort key.
    pub fn new(input: S, new_key_len: usize) -> Self {
        let in_key_len = input.key_len();
        assert!(new_key_len <= in_key_len);
        ClampKey {
            input,
            in_key_len,
            new_key_len,
        }
    }
}

impl<S: OvcStream> Iterator for ClampKey<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        let OvcRow { row, code } = self.input.next()?;
        let code = clamp_to_prefix(code, self.in_key_len, self.new_key_len);
        Some(OvcRow::new(row, code))
    }
}

impl<S: OvcStream> OvcStream for ClampKey<S> {
    fn key_len(&self) -> usize {
        self.new_key_len
    }
    fn sort_spec(&self) -> ovc_core::SortSpec {
        self.input.sort_spec().prefix(self.new_key_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::{Ovc, VecStream};

    #[test]
    fn full_key_projection_keeps_codes() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows, 4);
        // Append a computed column; the whole key survives.
        let proj = Project::new(input, 4, |r| {
            let mut cols = r.cols().to_vec();
            cols.push(cols.iter().sum());
            Row::new(cols)
        });
        let pairs = collect_pairs(proj);
        let codes: Vec<Ovc> = pairs.iter().map(|(_, c)| *c).collect();
        assert_eq!(codes, ovc_core::table1::asc_codes());
        assert_codes_exact(&pairs, 4);
    }

    #[test]
    fn shortened_key_clamps_codes() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows, 4);
        // Keep only the first two key columns.
        let proj = Project::new(input, 2, |r| Row::new(r.key(2).to_vec()));
        let pairs = collect_pairs(proj);
        assert_codes_exact(&pairs, 2);
        // Expected offsets under the 2-column key: Table 1 offsets clamped.
        let offsets: Vec<usize> = pairs.iter().map(|(_, c)| c.offset(2)).collect();
        assert_eq!(offsets, vec![0, 2, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn clamp_key_is_exact() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows, 4);
        let clamped = ClampKey::new(input, 1);
        assert_eq!(clamped.key_len(), 1);
        let pairs = collect_pairs(clamped);
        assert_codes_exact(&pairs, 1);
        // Every row shares column 0 (= 5): all but the first are duplicates
        // under the 1-column key.
        assert!(pairs[1..].iter().all(|(_, c)| c.is_duplicate()));
    }

    #[test]
    fn clamp_to_zero_key() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows, 4);
        let clamped = ClampKey::new(input, 0);
        let pairs = collect_pairs(clamped);
        assert!(pairs.iter().skip(1).all(|(_, c)| c.is_duplicate()));
    }

    #[test]
    fn reordering_payload_columns() {
        let rows = vec![Row::new(vec![1, 10, 100]), Row::new(vec![2, 20, 200])];
        let input = VecStream::from_sorted_rows(rows, 1);
        let proj = Project::new(input, 1, |r| r.project(&[0, 2, 1]));
        let pairs = collect_pairs(proj);
        assert_eq!(pairs[0].0, Row::new(vec![1, 100, 10]));
        assert_codes_exact(&pairs, 1);
    }
}
