//! Order-preserving in-memory hash join (Section 4.9).
//!
//! "Hash-join preserves the sort order of its probe input if the build
//! input and its hash table fit in memory. … In those cases, the hash
//! table is much like an unsorted version of a database index in index
//! nested-loops join."
//!
//! The probe stream's codes pass through: all outputs for one probe row
//! share the probe's entire sort key, so the first output carries the
//! (filter-theorem-accumulated) probe code and the rest are duplicates —
//! no comparisons, no re-derivation.

use std::collections::{HashMap, VecDeque};

use ovc_core::theorem::OvcAccumulator;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Value};

use crate::merge_join::{JoinType, NULL_VALUE};

/// An in-memory hash table over the build input, keyed by its first
/// `join_len` columns.
pub struct HashTable {
    map: HashMap<Box<[Value]>, Vec<Row>>,
    join_len: usize,
    width: usize,
}

impl HashTable {
    /// Build the table.  `join_len` is the number of leading join columns.
    pub fn build(rows: Vec<Row>, join_len: usize) -> Self {
        let width = rows.first().map(Row::width).unwrap_or(join_len);
        Self::build_with_width(rows, join_len, width)
    }

    /// Build the table with an explicit row width (needed to pad left
    /// outer joins against an empty build input).
    pub fn build_with_width(rows: Vec<Row>, join_len: usize, width: usize) -> Self {
        assert!(join_len <= width);
        let mut map: HashMap<Box<[Value]>, Vec<Row>> = HashMap::new();
        for row in rows {
            assert_eq!(row.width(), width);
            let key = row.cols()[..join_len].to_vec().into_boxed_slice();
            map.entry(key).or_default().push(row);
        }
        HashTable {
            map,
            join_len,
            width,
        }
    }

    /// Rows matching the probe key.
    fn probe(&self, key: &[Value]) -> Option<&Vec<Row>> {
        self.map.get(key)
    }

    /// Number of distinct build keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Order-preserving hash join: sorted coded probe input, in-memory build
/// table.  Output rows are `probe columns ++ build columns past the join
/// key`; output order and code arity are the probe's.
pub struct HashJoinOp<S: OvcStream> {
    probe: S,
    table: HashTable,
    join_type: JoinType,
    join_len: usize,
    probe_key_len: usize,
    acc: OvcAccumulator,
    queue: VecDeque<OvcRow>,
}

impl<S: OvcStream> HashJoinOp<S> {
    /// Build the operator; the probe's first `table.join_len` columns must
    /// lie within its sort key for the output codes to stay exact.
    pub fn new(probe: S, table: HashTable, join_type: JoinType) -> Self {
        assert!(
            matches!(
                join_type,
                JoinType::Inner | JoinType::LeftOuter | JoinType::LeftSemi | JoinType::LeftAnti
            ),
            "order preservation holds for probe-side (left) join types"
        );
        let probe_key_len = probe.key_len();
        let join_len = table.join_len;
        assert!(join_len <= probe_key_len);
        HashJoinOp {
            probe,
            table,
            join_type,
            join_len,
            probe_key_len,
            acc: OvcAccumulator::new(),
            queue: VecDeque::new(),
        }
    }

    fn combine(&self, probe: &Row, build: &Row) -> Row {
        let mut cols = Vec::with_capacity(probe.width() + self.table.width - self.join_len);
        cols.extend_from_slice(probe.cols());
        cols.extend_from_slice(&build.cols()[self.join_len..]);
        Row::new(cols)
    }

    fn pad(&self, probe: &Row) -> Row {
        let mut cols = Vec::with_capacity(probe.width() + self.table.width - self.join_len);
        cols.extend_from_slice(probe.cols());
        cols.extend(std::iter::repeat_n(
            NULL_VALUE,
            self.table.width - self.join_len,
        ));
        Row::new(cols)
    }
}

impl<S: OvcStream> Iterator for HashJoinOp<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            if let Some(r) = self.queue.pop_front() {
                return Some(r);
            }
            let OvcRow { row, code } = self.probe.next()?;
            let matches = self.table.probe(&row.cols()[..self.join_len]);
            match self.join_type {
                JoinType::LeftSemi => match matches {
                    Some(_) => return Some(OvcRow::new(row, self.acc.emit(code))),
                    None => self.acc.absorb(code),
                },
                JoinType::LeftAnti => match matches {
                    None => return Some(OvcRow::new(row, self.acc.emit(code))),
                    Some(_) => self.acc.absorb(code),
                },
                JoinType::Inner | JoinType::LeftOuter => match matches {
                    Some(builds) => {
                        for (i, b) in builds.iter().enumerate() {
                            let out_code = if i == 0 {
                                self.acc.emit(code)
                            } else {
                                Ovc::duplicate()
                            };
                            self.queue
                                .push_back(OvcRow::new(self.combine(&row, b), out_code));
                        }
                    }
                    None if self.join_type == JoinType::LeftOuter => {
                        let out_code = self.acc.emit(code);
                        self.queue.push_back(OvcRow::new(self.pad(&row), out_code));
                    }
                    None => self.acc.absorb(code),
                },
                _ => unreachable!("rejected in constructor"),
            }
        }
    }
}

impl<S: OvcStream> OvcStream for HashJoinOp<S> {
    fn key_len(&self) -> usize {
        self.probe_key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn probe_stream(rows: Vec<Vec<u64>>, key_len: usize) -> VecStream {
        VecStream::from_unsorted_rows(rows.into_iter().map(Row::new).collect(), key_len)
    }

    #[test]
    fn inner_join_preserves_probe_order_and_codes() {
        let build = HashTable::build(
            vec![
                Row::new(vec![1, 10]),
                Row::new(vec![1, 20]),
                Row::new(vec![3, 30]),
            ],
            1,
        );
        let probe = probe_stream(vec![vec![3, 9], vec![1, 7], vec![2, 8]], 2);
        let join = HashJoinOp::new(probe, build, JoinType::Inner);
        assert_eq!(join.key_len(), 2);
        let pairs = collect_pairs(join);
        assert_codes_exact(&pairs, 2);
        let got: Vec<Vec<u64>> = pairs.iter().map(|(r, _)| r.cols().to_vec()).collect();
        assert_eq!(got, vec![vec![1, 7, 10], vec![1, 7, 20], vec![3, 9, 30]]);
    }

    #[test]
    fn no_comparisons_at_all() {
        // HashJoinOp holds no Stats handle because it has nothing to
        // count: probes hash their key and the output codes come from
        // the filter-theorem accumulator.  (A local Stats::default()
        // asserted here used to pass vacuously — it was attached to
        // nothing.)  The checkable form of the claim: the output codes
        // are exact even though no comparison source exists anywhere in
        // the operator.
        let build = HashTable::build(vec![Row::new(vec![1, 10])], 1);
        let probe = probe_stream(vec![vec![1, 1], vec![2, 2]], 2);
        let pairs = collect_pairs(HashJoinOp::new(probe, build, JoinType::Inner));
        assert_codes_exact(&pairs, 2);
    }

    #[test]
    fn all_types_match_reference() {
        let mut rng = StdRng::seed_from_u64(50);
        let build_rows: Vec<Vec<u64>> = (0..40)
            .map(|_| vec![rng.gen_range(0..8u64), rng.gen()])
            .collect();
        let probe_rows: Vec<Vec<u64>> = (0..60)
            .map(|_| vec![rng.gen_range(0..8u64), rng.gen_range(0..4u64)])
            .collect();
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::LeftSemi,
            JoinType::LeftAnti,
        ] {
            let build =
                HashTable::build(build_rows.iter().map(|r| Row::new(r.clone())).collect(), 1);
            let probe = probe_stream(probe_rows.clone(), 2);
            let join = HashJoinOp::new(probe, build, jt);
            let arity = join.key_len();
            let pairs = collect_pairs(join);
            assert_codes_exact(&pairs, arity);
            // Spot-check membership semantics.
            let build_keys: std::collections::HashSet<u64> =
                build_rows.iter().map(|r| r[0]).collect();
            for (row, _) in &pairs {
                let has = build_keys.contains(&row.cols()[0]);
                match jt {
                    JoinType::LeftSemi | JoinType::Inner => assert!(has),
                    JoinType::LeftAnti => assert!(!has),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn empty_build_table() {
        let build = HashTable::build_with_width(vec![], 1, 2);
        assert_eq!(build.distinct_keys(), 0);
        let probe = probe_stream(vec![vec![1, 1]], 2);
        let pairs = collect_pairs(HashJoinOp::new(probe, build, JoinType::LeftOuter));
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.cols()[2], NULL_VALUE);
    }
}
