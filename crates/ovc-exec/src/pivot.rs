//! Pivoting (Section 4.6).
//!
//! "Pivoting turns rows into columns, e.g., from (year, month, sales) to
//! (year, january_sales … december_sales).  In many aspects, including the
//! set of useful algorithms, pivoting is like grouping and aggregation.
//! This applies in particular to the benefit of offset-value codes in the
//! input and the calculation of offset-value codes in the output."
//!
//! The implementation mirrors [`crate::group::GroupAggregate`]: group
//! boundaries come from code inspection; each output row carries its
//! group's first input code clamped to the group-key arity.

use ovc_core::theorem::clamp_to_prefix;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Value};

/// Pivot specification: group by the first `group_len` columns, spread
/// `value_col` over one output column per entry of `buckets` keyed by
/// `pivot_col`, summing values that land in the same bucket.
#[derive(Clone, Debug)]
pub struct PivotSpec {
    /// Group key length (sort-key prefix).
    pub group_len: usize,
    /// Column whose value selects the output bucket.
    pub pivot_col: usize,
    /// Column whose value is aggregated into the bucket.
    pub value_col: usize,
    /// Bucket key values, in output-column order.
    pub buckets: Vec<Value>,
}

/// The pivot operator: one output row per group with
/// `group_len + buckets.len()` columns.
pub struct Pivot<S> {
    input: S,
    spec: PivotSpec,
    in_key_len: usize,
    pending: Option<(Row, Ovc, Vec<Value>)>,
}

impl<S: OvcStream> Pivot<S> {
    /// Build the operator.  Panics unless the group key is a sort-key
    /// prefix.
    pub fn new(input: S, spec: PivotSpec) -> Self {
        let in_key_len = input.key_len();
        assert!(spec.group_len <= in_key_len);
        Pivot {
            input,
            spec,
            in_key_len,
            pending: None,
        }
    }

    fn finish(&self, (row, code, accs): (Row, Ovc, Vec<Value>)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.spec.group_len + accs.len());
        cols.extend_from_slice(row.key(self.spec.group_len));
        cols.extend_from_slice(&accs);
        OvcRow::new(
            Row::new(cols),
            clamp_to_prefix(code, self.in_key_len, self.spec.group_len),
        )
    }
}

impl<S: OvcStream> Iterator for Pivot<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => return self.pending.take().map(|g| self.finish(g)),
                Some(OvcRow { row, code }) => {
                    let same_group =
                        code.is_valid() && code.offset(self.in_key_len) >= self.spec.group_len;
                    if let (true, Some((_, _, accs))) = (same_group, self.pending.as_mut()) {
                        accumulate(&self.spec, accs, &row);
                    } else {
                        let mut accs = vec![0; self.spec.buckets.len()];
                        accumulate(&self.spec, &mut accs, &row);
                        let done = self.pending.replace((row, code, accs));
                        if let Some(done) = done {
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for Pivot<S> {
    fn key_len(&self) -> usize {
        self.spec.group_len
    }
}

/// Fold one row into the bucket accumulators.
fn accumulate(spec: &PivotSpec, accs: &mut [Value], row: &Row) {
    let pivot = row.cols()[spec.pivot_col];
    if let Some(i) = spec.buckets.iter().position(|&b| b == pivot) {
        accs[i] = accs[i].wrapping_add(row.cols()[spec.value_col]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;

    /// The paper's own example: (year, month, sales) pivoted to
    /// (year, monthly sales columns).
    #[test]
    fn year_month_sales() {
        let rows = vec![
            Row::new(vec![2021, 1, 100]),
            Row::new(vec![2021, 1, 50]),
            Row::new(vec![2021, 3, 70]),
            Row::new(vec![2022, 2, 10]),
            Row::new(vec![2022, 3, 20]),
        ];
        let input = VecStream::from_sorted_rows(rows, 2);
        let spec = PivotSpec {
            group_len: 1,
            pivot_col: 1,
            value_col: 2,
            buckets: vec![1, 2, 3],
        };
        let pivot = Pivot::new(input, spec);
        let pairs = collect_pairs(pivot);
        let got: Vec<Vec<u64>> = pairs.iter().map(|(r, _)| r.cols().to_vec()).collect();
        assert_eq!(got, vec![vec![2021, 150, 0, 70], vec![2022, 0, 10, 20],]);
        assert_codes_exact(&pairs, 1);
    }

    #[test]
    fn values_outside_buckets_are_dropped() {
        let rows = vec![Row::new(vec![1, 99, 5])];
        let input = VecStream::from_sorted_rows(rows, 2);
        let spec = PivotSpec {
            group_len: 1,
            pivot_col: 1,
            value_col: 2,
            buckets: vec![1, 2],
        };
        let out: Vec<Row> = Pivot::new(input, spec).map(|r| r.row).collect();
        assert_eq!(out, vec![Row::new(vec![1, 0, 0])]);
    }

    #[test]
    fn empty_input() {
        let input = VecStream::from_sorted_rows(vec![], 2);
        let spec = PivotSpec {
            group_len: 1,
            pivot_col: 1,
            value_col: 1,
            buckets: vec![],
        };
        assert_eq!(Pivot::new(input, spec).count(), 0);
    }
}
