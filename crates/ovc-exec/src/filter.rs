//! Filter (Section 4.1): the first and simplest application of the
//! paper's filter theorem.
//!
//! "An output row's offset-value code is (in ascending encoding) the
//! maximum of its offset-value code in the input and of the offset-value
//! codes of rows that failed the filter predicate since the prior output
//! row."  Table 3 illustrates the calculation on the data of Table 1.
//!
//! No row or column comparisons happen here at all — only one integer
//! `max` per input row.

use std::sync::Arc;

use ovc_core::theorem::OvcAccumulator;
use ovc_core::{OvcRow, OvcStream, Row, Stats};

/// A predicate filter over a coded stream.
pub struct Filter<S, P> {
    input: S,
    predicate: P,
    acc: OvcAccumulator,
    /// Shared counters: the accumulator `max` is one integer (code)
    /// operation per row, accounted here — the same units
    /// `ovc_plan::cost::streaming` estimates — so the operator's
    /// zero-column-comparison claim is measured, not assumed.
    stats: Arc<Stats>,
}

impl<S: OvcStream, P: FnMut(&Row) -> bool> Filter<S, P> {
    /// Filter `input`, keeping rows for which `predicate` returns true.
    pub fn new(input: S, predicate: P, stats: Arc<Stats>) -> Self {
        Filter {
            input,
            predicate,
            acc: OvcAccumulator::new(),
            stats,
        }
    }
}

impl<S: OvcStream, P: FnMut(&Row) -> bool> Iterator for Filter<S, P> {
    type Item = OvcRow;

    fn next(&mut self) -> Option<OvcRow> {
        loop {
            let OvcRow { row, code } = self.input.next()?;
            self.stats.count_ovc_cmp();
            if (self.predicate)(&row) {
                // Filter theorem: max over the dropped chain plus this row.
                let code = self.acc.emit(code);
                return Some(OvcRow::new(row, code));
            }
            self.acc.absorb(code);
        }
    }
}

impl<S: OvcStream, P: FnMut(&Row) -> bool> OvcStream for Filter<S, P> {
    fn key_len(&self) -> usize {
        self.input.key_len()
    }
    fn sort_spec(&self) -> ovc_core::SortSpec {
        self.input.sort_spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::{Ovc, VecStream};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Table 3 of the paper: only the first and last rows of Table 1
    /// satisfy the predicate; their ascending codes are 405 and 309.
    #[test]
    fn table3_filter_codes() {
        let rows = ovc_core::table1::rows();
        let keep: Vec<Row> = vec![rows[0].clone(), rows[6].clone()];
        let input = VecStream::from_sorted_rows(rows, 4);
        let filter = Filter::new(input, |r| keep.contains(r), Stats::new_shared());
        let pairs = collect_pairs(filter);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].1.paper_decimal(), 405);
        assert_eq!(pairs[1].1.paper_decimal(), 309);
        assert_codes_exact(&pairs, 4);
    }

    #[test]
    fn filter_codes_match_rederivation_randomized() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut rows: Vec<Row> = (0..400)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..6u64),
                    rng.gen_range(0..6u64),
                    rng.gen_range(0..6u64),
                ])
            })
            .collect();
        rows.sort();
        let input = VecStream::from_sorted_rows(rows, 3);
        let filter = Filter::new(input, |r| r.cols()[1] % 2 == 0, Stats::new_shared());
        let pairs = collect_pairs(filter);
        assert_codes_exact(&pairs, 3);
    }

    #[test]
    fn keep_all_is_identity() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows, 4);
        let expect: Vec<Ovc> = ovc_core::table1::asc_codes();
        let filter = Filter::new(input, |_| true, Stats::new_shared());
        let pairs = collect_pairs(filter);
        let codes: Vec<Ovc> = pairs.iter().map(|(_, c)| *c).collect();
        assert_eq!(codes, expect, "an all-pass filter changes nothing");
    }

    #[test]
    fn drop_all_is_empty() {
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let mut filter = Filter::new(input, |_| false, Stats::new_shared());
        assert!(filter.next().is_none());
    }

    #[test]
    fn no_column_comparisons() {
        // The handle is attached to the operator, so the zeros below are
        // measurements of its accounting, not asserts on a dangling
        // counter: one code operation per row, nothing else.
        let rows = ovc_core::table1::rows();
        let n_rows = rows.len() as u64;
        let input = VecStream::from_sorted_rows(rows, 4);
        let stats = Stats::new_shared();
        let filter = Filter::new(input, |r| r.cols()[0] > 0, Arc::clone(&stats));
        let _ = collect_pairs(filter);
        assert_eq!(stats.col_value_cmps(), 0);
        assert_eq!(stats.row_cmps(), 0);
        assert_eq!(stats.ovc_cmps(), n_rows, "the handle is live");
    }

    #[test]
    fn filters_compose() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows, 4);
        let f1 = Filter::new(input, |r| r.cols()[1] >= 8, Stats::new_shared());
        let f2 = Filter::new(f1, |r| r.cols()[2] == 2, Stats::new_shared());
        let pairs = collect_pairs(f2);
        assert_eq!(pairs.len(), 2); // the duplicate pair (5,9,2,7)
        assert_codes_exact(&pairs, 4);
    }
}
