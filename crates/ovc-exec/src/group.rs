//! Grouping and aggregation in sorted streams (Section 4.5) — the
//! operator behind Figure 4.
//!
//! "In a stream with offset-value codes sorted on a 'group by' list,
//! grouping aggregates input rows with offsets equal to or larger than the
//! 'group by' list.  In the aggregation output, no row has an offset equal
//! to or larger than the 'group by' list.  The output rows retain the
//! offset-value codes of the first row in each group of input rows."
//!
//! Group-boundary detection is one integer comparison per row against a
//! precomputed code threshold — the exact mechanism Figure 4 benchmarks
//! against "full comparisons of multiple key columns".

use std::sync::Arc;

use ovc_core::theorem::clamp_to_prefix;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Stats, Value};

/// An aggregate function over a group of rows.
///
/// Accumulators are uniformly **wrapping**: `Count` and `Sum` wrap on
/// `u64` overflow instead of panicking in debug builds, so an aggregate
/// over adversarial data behaves the same in every build profile.
/// `Min`/`Max`/`First`/`Last` cannot overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of rows in the group.
    Count,
    /// Sum of the column at the given index.
    Sum(usize),
    /// Minimum of the column at the given index.
    Min(usize),
    /// Maximum of the column at the given index.
    Max(usize),
    /// The column value of the group's first row.
    First(usize),
    /// The column value of the group's last row.
    Last(usize),
}

impl Aggregate {
    /// Initialize the accumulator from a group's first row.
    pub fn init(&self, row: &Row) -> Value {
        match *self {
            Aggregate::Count => 1,
            Aggregate::Sum(c)
            | Aggregate::Min(c)
            | Aggregate::Max(c)
            | Aggregate::First(c)
            | Aggregate::Last(c) => row.cols()[c],
        }
    }

    /// Fold one more row into the accumulator (wrapping, see the enum
    /// docs).
    pub fn fold(&self, acc: Value, row: &Row) -> Value {
        match *self {
            Aggregate::Count => acc.wrapping_add(1),
            Aggregate::Sum(c) => acc.wrapping_add(row.cols()[c]),
            Aggregate::Min(c) => acc.min(row.cols()[c]),
            Aggregate::Max(c) => acc.max(row.cols()[c]),
            Aggregate::First(_) => acc,
            Aggregate::Last(c) => row.cols()[c],
        }
    }

    /// Combine two partial results of this aggregate computed over
    /// disjoint, order-adjacent slices of one group (`a`'s rows precede
    /// `b`'s in the input order).  This is the decomposition law behind
    /// partition-parallel grouping: `fold` over a whole group equals
    /// `merge` over per-partition partial folds.  Wrapping like `fold`.
    ///
    /// `Last` trusts the stated orientation; [`GroupFinal`] establishes
    /// it by comparing the carried last-row keys before calling.
    pub fn merge(&self, a: Value, b: Value) -> Value {
        match *self {
            Aggregate::Count | Aggregate::Sum(_) => a.wrapping_add(b),
            Aggregate::Min(_) => a.min(b),
            Aggregate::Max(_) => a.max(b),
            Aggregate::First(_) => a,
            Aggregate::Last(_) => b,
        }
    }
}

/// In-stream grouping: aggregates consecutive rows that share the first
/// `group_len` columns.  Output rows are the group key followed by one
/// column per aggregate; output codes have arity `group_len` and are the
/// (clamped) code of each group's first input row.
pub struct GroupAggregate<S> {
    input: S,
    in_key_len: usize,
    group_len: usize,
    aggregates: Vec<Aggregate>,
    /// First row of the group currently being accumulated.
    pending: Option<(Row, Ovc, Vec<Value>)>,
    /// Shared counters: the per-row boundary test is one integer (code)
    /// comparison, accounted here so the zero-column-comparison claim is
    /// measured on a live handle rather than asserted vacuously.
    stats: Arc<Stats>,
}

impl<S: OvcStream> GroupAggregate<S> {
    /// Build the operator.  Panics unless `group_len <= input.key_len()`.
    pub fn new(input: S, group_len: usize, aggregates: Vec<Aggregate>, stats: Arc<Stats>) -> Self {
        let in_key_len = input.key_len();
        assert!(
            group_len <= in_key_len,
            "group key must be a sort-key prefix"
        );
        GroupAggregate {
            input,
            in_key_len,
            group_len,
            aggregates,
            pending: None,
            stats,
        }
    }

    fn finish(&self, (row, code, accs): (Row, Ovc, Vec<Value>)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.group_len + accs.len());
        cols.extend_from_slice(row.key(self.group_len));
        cols.extend_from_slice(&accs);
        OvcRow::new(
            Row::new(cols),
            clamp_to_prefix(code, self.in_key_len, self.group_len),
        )
    }
}

impl<S: OvcStream> Iterator for GroupAggregate<S> {
    type Item = OvcRow;

    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => {
                    // Input exhausted: flush the final group, if any.
                    return self.pending.take().map(|g| self.finish(g));
                }
                Some(OvcRow { row, code }) => {
                    // Group membership by code inspection alone: an offset
                    // of at least `group_len` means the entire group key is
                    // shared with the predecessor.  One integer comparison
                    // per row, counted as such.
                    self.stats.count_ovc_cmp();
                    let same_group =
                        code.is_valid() && code.offset(self.in_key_len) >= self.group_len;
                    match (&mut self.pending, same_group) {
                        (Some((_, _, accs)), true) => {
                            for (acc, agg) in accs.iter_mut().zip(&self.aggregates) {
                                *acc = agg.fold(*acc, &row);
                            }
                        }
                        (pending @ None, _) => {
                            let accs = self.aggregates.iter().map(|a| a.init(&row)).collect();
                            *pending = Some((row, code, accs));
                        }
                        (pending @ Some(_), false) => {
                            // Boundary: emit the finished group, start anew.
                            let accs: Vec<Value> =
                                self.aggregates.iter().map(|a| a.init(&row)).collect();
                            let done = pending.replace((row, code, accs)).expect("pending group");
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for GroupAggregate<S> {
    fn key_len(&self) -> usize {
        self.group_len
    }
}

/// The paper's motivating two-step query (Section 3): "in a query like
/// `select …, count (distinct …) group by …`, the sort can detect
/// duplicate rows by offsets equal to the column count and, after the
/// sort, in-stream aggregation can detect group boundaries by offsets
/// smaller than the grouping key."
///
/// Input: sorted on `(group key ++ distinct columns)` = the full sort key.
/// Output: group key plus the count of distinct full keys per group —
/// both tests are single integer comparisons against code thresholds.
pub struct GroupCountDistinct<S> {
    input: S,
    in_key_len: usize,
    group_len: usize,
    pending: Option<(Row, Ovc, u64)>,
    stats: Arc<Stats>,
}

impl<S: OvcStream> GroupCountDistinct<S> {
    /// Build the operator; the distinct columns are the sort-key suffix
    /// past `group_len`.
    pub fn new(input: S, group_len: usize, stats: Arc<Stats>) -> Self {
        let in_key_len = input.key_len();
        assert!(group_len <= in_key_len);
        GroupCountDistinct {
            input,
            in_key_len,
            group_len,
            pending: None,
            stats,
        }
    }

    fn finish(&self, (row, code, distinct): (Row, Ovc, u64)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.group_len + 1);
        cols.extend_from_slice(row.key(self.group_len));
        cols.push(distinct);
        OvcRow::new(
            Row::new(cols),
            clamp_to_prefix(code, self.in_key_len, self.group_len),
        )
    }
}

impl<S: OvcStream> Iterator for GroupCountDistinct<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => return self.pending.take().map(|g| self.finish(g)),
                Some(OvcRow { row, code }) => {
                    // Two integer tests per row, zero column comparisons:
                    self.stats.count_ovc_cmp(); // duplicate test
                    self.stats.count_ovc_cmp(); // group-boundary test
                    let is_duplicate = code.is_duplicate();
                    let same_group =
                        code.is_valid() && code.offset(self.in_key_len) >= self.group_len;
                    match (&mut self.pending, same_group) {
                        (Some((_, _, distinct)), true) => {
                            if !is_duplicate {
                                *distinct += 1;
                            }
                        }
                        (pending @ None, _) => {
                            *pending = Some((row, code, 1));
                        }
                        (pending @ Some(_), false) => {
                            let done = pending.replace((row, code, 1)).expect("pending group");
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for GroupCountDistinct<S> {
    fn key_len(&self) -> usize {
        self.group_len
    }
}

/// Partial-aggregate half of the parallel group-by decomposition
/// (DESIGN.md §7): used when the exchange hashes on a sort-key prefix
/// **longer** than the group key, so one group's rows spread across
/// partitions and no partition can finish the group alone.
///
/// Accumulates local groups exactly like [`GroupAggregate`], but emits
/// rows built for a downstream [`GroupFinal`] merge instead of final
/// results:
///
/// * the row starts with the full input key (`in_key_len` columns) of
///   the group's **first** local row, so the gathering merge orders the
///   partials of one group by their first-row keys — the partial holding
///   the globally-first row of a group always gathers first;
/// * one partial accumulator column per aggregate follows;
/// * when any [`Aggregate::Last`] is present, the full input key of the
///   group's **last** local row rides along as trailing payload: the
///   only way a final merge can decide which partial saw the
///   globally-last row;
/// * the code is the first row's **unclamped** input code, which is
///   exact for the partial sequence: consecutive local groups differ
///   inside the group-key prefix, and every row of a group shares that
///   prefix, so the code against the previous group's last row equals
///   the code against its first row.
pub struct GroupPartial<S> {
    input: S,
    in_key_len: usize,
    group_len: usize,
    aggregates: Vec<Aggregate>,
    carry_last_key: bool,
    /// First row, its code, the accumulators, and (when carried) the
    /// key of the group's last row seen so far.
    pending: Option<(Row, Ovc, Vec<Value>, Vec<Value>)>,
    stats: Arc<Stats>,
}

impl<S: OvcStream> GroupPartial<S> {
    /// Build the operator.  Panics unless `group_len <= input.key_len()`.
    pub fn new(input: S, group_len: usize, aggregates: Vec<Aggregate>, stats: Arc<Stats>) -> Self {
        let in_key_len = input.key_len();
        assert!(
            group_len <= in_key_len,
            "group key must be a sort-key prefix"
        );
        let carry_last_key = aggregates.iter().any(|a| matches!(a, Aggregate::Last(_)));
        GroupPartial {
            input,
            in_key_len,
            group_len,
            aggregates,
            carry_last_key,
            pending: None,
            stats,
        }
    }

    fn finish(&self, (row, code, accs, last_key): (Row, Ovc, Vec<Value>, Vec<Value>)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.in_key_len + accs.len() + last_key.len());
        cols.extend_from_slice(row.key(self.in_key_len));
        cols.extend_from_slice(&accs);
        cols.extend_from_slice(&last_key);
        // Unclamped: the partial stream stays coded at the full input
        // arity so the gathering merge can order partials of one group.
        OvcRow::new(Row::new(cols), code)
    }
}

impl<S: OvcStream> Iterator for GroupPartial<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => return self.pending.take().map(|g| self.finish(g)),
                Some(OvcRow { row, code }) => {
                    self.stats.count_ovc_cmp();
                    let same_group =
                        code.is_valid() && code.offset(self.in_key_len) >= self.group_len;
                    match (&mut self.pending, same_group) {
                        (Some((_, _, accs, last_key)), true) => {
                            for (acc, agg) in accs.iter_mut().zip(&self.aggregates) {
                                *acc = agg.fold(*acc, &row);
                            }
                            if self.carry_last_key {
                                last_key.copy_from_slice(row.key(self.in_key_len));
                            }
                        }
                        (pending @ None, _) => {
                            let accs: Vec<Value> =
                                self.aggregates.iter().map(|a| a.init(&row)).collect();
                            let last = if self.carry_last_key {
                                row.key(self.in_key_len).to_vec()
                            } else {
                                Vec::new()
                            };
                            *pending = Some((row, code, accs, last));
                        }
                        (pending @ Some(_), false) => {
                            let accs: Vec<Value> =
                                self.aggregates.iter().map(|a| a.init(&row)).collect();
                            let last = if self.carry_last_key {
                                row.key(self.in_key_len).to_vec()
                            } else {
                                Vec::new()
                            };
                            let done = pending
                                .replace((row, code, accs, last))
                                .expect("pending group");
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for GroupPartial<S> {
    fn key_len(&self) -> usize {
        self.in_key_len
    }
}

/// Count-distinct flavour of [`GroupPartial`]: per local group, emit
/// `[first-row key (in_key_len)] ++ [local distinct count]` with the
/// first row's unclamped code.  Distinct full keys never split across
/// hash partitions (equal rows hash equally), so the per-partition
/// counts are disjoint and a [`GroupFinal`] over `[Aggregate::Count]`
/// sums them into the exact global counts.
pub struct GroupCountDistinctPartial<S> {
    input: S,
    in_key_len: usize,
    group_len: usize,
    pending: Option<(Row, Ovc, u64)>,
    stats: Arc<Stats>,
}

impl<S: OvcStream> GroupCountDistinctPartial<S> {
    /// Build the operator; panics unless `group_len <= input.key_len()`.
    pub fn new(input: S, group_len: usize, stats: Arc<Stats>) -> Self {
        let in_key_len = input.key_len();
        assert!(group_len <= in_key_len);
        GroupCountDistinctPartial {
            input,
            in_key_len,
            group_len,
            pending: None,
            stats,
        }
    }

    fn finish(&self, (row, code, distinct): (Row, Ovc, u64)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.in_key_len + 1);
        cols.extend_from_slice(row.key(self.in_key_len));
        cols.push(distinct);
        OvcRow::new(Row::new(cols), code)
    }
}

impl<S: OvcStream> Iterator for GroupCountDistinctPartial<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => return self.pending.take().map(|g| self.finish(g)),
                Some(OvcRow { row, code }) => {
                    self.stats.count_ovc_cmp(); // duplicate test
                    self.stats.count_ovc_cmp(); // group-boundary test
                    let is_duplicate = code.is_duplicate();
                    let same_group =
                        code.is_valid() && code.offset(self.in_key_len) >= self.group_len;
                    match (&mut self.pending, same_group) {
                        (Some((_, _, distinct)), true) => {
                            if !is_duplicate {
                                *distinct += 1;
                            }
                        }
                        (pending @ None, _) => {
                            *pending = Some((row, code, 1));
                        }
                        (pending @ Some(_), false) => {
                            let done = pending.replace((row, code, 1)).expect("pending group");
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for GroupCountDistinctPartial<S> {
    fn key_len(&self) -> usize {
        self.in_key_len
    }
}

/// Final-merge half of the parallel group-by decomposition: consumes a
/// gathered stream of [`GroupPartial`] (or
/// [`GroupCountDistinctPartial`]) rows — sorted and coded at the full
/// input arity — and merges the partials of each group with
/// [`Aggregate::merge`] into exactly the rows and codes the serial
/// [`GroupAggregate`] would have produced:
///
/// * group membership is the same one-integer boundary test
///   (`offset >= group_len`);
/// * `First` keeps the first gathered partial's value — the gather
///   merge orders partials by their first-row keys, so the first
///   partial holds the globally-first row;
/// * `Last` compares the carried last-row keys (the one place the
///   decomposition must touch column values; those comparisons are
///   counted) and keeps the value of the partial whose slice ends last;
/// * the output code is the first partial's code clamped to the group
///   arity, which equals the serial code because group boundaries fall
///   inside the shared group-key prefix.
pub struct GroupFinal<S> {
    input: S,
    in_key_len: usize,
    group_len: usize,
    aggregates: Vec<Aggregate>,
    carry_last_key: bool,
    /// Representative (first) partial row, its code, merged
    /// accumulators, and the winning last-row key so far.
    pending: Option<(Row, Ovc, Vec<Value>, Vec<Value>)>,
    stats: Arc<Stats>,
}

impl<S: OvcStream> GroupFinal<S> {
    /// Build the operator over a gathered partial stream.  Panics unless
    /// `group_len <= input.key_len()`.
    pub fn new(input: S, group_len: usize, aggregates: Vec<Aggregate>, stats: Arc<Stats>) -> Self {
        let in_key_len = input.key_len();
        assert!(
            group_len <= in_key_len,
            "group key must be a sort-key prefix"
        );
        let carry_last_key = aggregates.iter().any(|a| matches!(a, Aggregate::Last(_)));
        GroupFinal {
            input,
            in_key_len,
            group_len,
            aggregates,
            carry_last_key,
            pending: None,
            stats,
        }
    }

    fn finish(&self, (row, code, accs, _): (Row, Ovc, Vec<Value>, Vec<Value>)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.group_len + accs.len());
        cols.extend_from_slice(row.key(self.group_len));
        cols.extend_from_slice(&accs);
        OvcRow::new(
            Row::new(cols),
            clamp_to_prefix(code, self.in_key_len, self.group_len),
        )
    }
}

impl<S: OvcStream> Iterator for GroupFinal<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => return self.pending.take().map(|g| self.finish(g)),
                Some(OvcRow { row, code }) => {
                    self.stats.count_ovc_cmp();
                    let n = self.aggregates.len();
                    let in_key = self.in_key_len;
                    debug_assert_eq!(
                        row.width(),
                        in_key + n + if self.carry_last_key { in_key } else { 0 },
                        "partial row layout mismatch"
                    );
                    let same_group = code.is_valid() && code.offset(in_key) >= self.group_len;
                    match (&mut self.pending, same_group) {
                        (Some((_, _, accs, last_key)), true) => {
                            let cand_accs = &row.cols()[in_key..in_key + n];
                            let cand_last = &row.cols()[in_key + n..];
                            // Does the candidate partial's slice end after
                            // the pending one's?  Only Last cares; the
                            // column comparisons it takes are counted.
                            let cand_is_later = if self.carry_last_key {
                                let mut later = false;
                                for (a, b) in cand_last.iter().zip(last_key.iter()) {
                                    self.stats.count_col_cmp();
                                    match a.cmp(b) {
                                        std::cmp::Ordering::Greater => {
                                            later = true;
                                            break;
                                        }
                                        std::cmp::Ordering::Less => break,
                                        std::cmp::Ordering::Equal => {}
                                    }
                                }
                                later
                            } else {
                                false
                            };
                            for (i, (acc, agg)) in accs.iter_mut().zip(&self.aggregates).enumerate()
                            {
                                *acc = match agg {
                                    Aggregate::Last(_) if !cand_is_later => *acc,
                                    _ => agg.merge(*acc, cand_accs[i]),
                                };
                            }
                            if cand_is_later {
                                last_key.copy_from_slice(cand_last);
                            }
                        }
                        (pending @ None, _) => {
                            let accs = row.cols()[in_key..in_key + n].to_vec();
                            let last = row.cols()[in_key + n..].to_vec();
                            *pending = Some((row, code, accs, last));
                        }
                        (pending @ Some(_), false) => {
                            let accs = row.cols()[in_key..in_key + n].to_vec();
                            let last = row.cols()[in_key + n..].to_vec();
                            let done = pending
                                .replace((row, code, accs, last))
                                .expect("pending group");
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for GroupFinal<S> {
    fn key_len(&self) -> usize {
        self.group_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn groups_table1_on_two_columns() {
        // "grouping on the first two columns can use offset-value codes
        // similarly to segmentation" — Table 1 has groups (5,7), (5,8),
        // (5,9) of sizes 2, 1, 4.
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let group = GroupAggregate::new(input, 2, vec![Aggregate::Count], Stats::new_shared());
        let pairs = collect_pairs(group);
        let got: Vec<(Vec<u64>, u64)> = pairs
            .iter()
            .map(|(r, _)| (r.key(2).to_vec(), r.cols()[2]))
            .collect();
        assert_eq!(
            got,
            vec![(vec![5, 7], 2), (vec![5, 8], 1), (vec![5, 9], 4),]
        );
        assert_codes_exact(&pairs, 2);
        // No output offset reaches the group-key arity.
        assert!(pairs.iter().all(|(_, c)| c.offset(2) < 2 || !c.is_valid()));
    }

    #[test]
    fn aggregates_compute_correctly() {
        let rows = vec![
            Row::new(vec![1, 10]),
            Row::new(vec![1, 30]),
            Row::new(vec![1, 20]),
            Row::new(vec![2, 5]),
        ];
        let input = VecStream::from_unsorted_rows(rows, 1);
        let group = GroupAggregate::new(
            input,
            1,
            vec![
                Aggregate::Count,
                Aggregate::Sum(1),
                Aggregate::Min(1),
                Aggregate::Max(1),
                Aggregate::First(1),
                Aggregate::Last(1),
            ],
            Stats::new_shared(),
        );
        let out: Vec<Row> = group.map(|r| r.row).collect();
        // Stable sort keeps group-1 payloads in arrival order 10, 30, 20.
        assert_eq!(out[0], Row::new(vec![1, 3, 60, 10, 30, 10, 20]));
        assert_eq!(out[1], Row::new(vec![2, 1, 5, 5, 5, 5, 5]));
    }

    #[test]
    fn random_grouping_matches_reference() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut rows: Vec<Row> = (0..800)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..4u64),
                    rng.gen_range(0..4u64),
                    rng.gen_range(0..100u64),
                ])
            })
            .collect();
        rows.sort();
        let mut expect: BTreeMap<Vec<u64>, (u64, u64)> = BTreeMap::new();
        for r in &rows {
            let e = expect.entry(r.key(2).to_vec()).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.cols()[2];
        }
        let input = VecStream::from_sorted_rows(rows, 3);
        let group = GroupAggregate::new(
            input,
            2,
            vec![Aggregate::Count, Aggregate::Sum(2)],
            Stats::new_shared(),
        );
        let pairs = collect_pairs(group);
        assert_codes_exact(&pairs, 2);
        let got: Vec<(Vec<u64>, (u64, u64))> = pairs
            .iter()
            .map(|(r, _)| (r.key(2).to_vec(), (r.cols()[2], r.cols()[3])))
            .collect();
        let expect: Vec<(Vec<u64>, (u64, u64))> = expect.into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn group_by_full_key_is_dedup_with_count() {
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let group = GroupAggregate::new(input, 4, vec![Aggregate::Count], Stats::new_shared());
        let pairs = collect_pairs(group);
        assert_eq!(pairs.len(), 6);
        let counts: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[4]).collect();
        assert_eq!(counts, vec![1, 1, 1, 2, 1, 1]);
        assert_codes_exact(&pairs, 4);
    }

    #[test]
    fn group_by_empty_key_aggregates_everything() {
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let group = GroupAggregate::new(input, 0, vec![Aggregate::Count], Stats::new_shared());
        let out: Vec<Row> = group.map(|r| r.row).collect();
        assert_eq!(out, vec![Row::new(vec![7])]);
    }

    #[test]
    fn empty_input() {
        let input = VecStream::from_sorted_rows(vec![], 2);
        let mut group = GroupAggregate::new(input, 1, vec![Aggregate::Count], Stats::new_shared());
        assert!(group.next().is_none());
    }

    #[test]
    fn count_distinct_group_by() {
        // select g, count(distinct d) from t group by g — over key (g, d).
        let rows = vec![
            Row::new(vec![1, 5]),
            Row::new(vec![1, 5]), // duplicate
            Row::new(vec![1, 7]),
            Row::new(vec![2, 5]),
            Row::new(vec![2, 5]), // duplicate
            Row::new(vec![2, 5]), // duplicate
            Row::new(vec![3, 1]),
        ];
        let n_rows = rows.len() as u64;
        let input = VecStream::from_sorted_rows(rows, 2);
        // The handle is *attached to the operator*: the zero below pins
        // the operator's own accounting, not an unused counter.
        let stats = Stats::new_shared();
        let out: Vec<(u64, u64)> = GroupCountDistinct::new(input, 1, Arc::clone(&stats))
            .map(|r| (r.row.cols()[0], r.row.cols()[1]))
            .collect();
        assert_eq!(out, vec![(1, 2), (2, 1), (3, 1)]);
        assert_eq!(stats.col_value_cmps(), 0);
        // Liveness: the duplicate and boundary tests were counted (two
        // integer comparisons per input row), so the zero above is a
        // measurement, not a vacuous assert on a dangling handle.
        assert_eq!(stats.ovc_cmps(), 2 * n_rows);
    }

    #[test]
    fn count_distinct_matches_reference_randomized() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut rows: Vec<Row> = (0..600)
            .map(|_| Row::new(vec![rng.gen_range(0..5u64), rng.gen_range(0..5u64)]))
            .collect();
        rows.sort();
        let mut expect: BTreeMap<u64, std::collections::BTreeSet<u64>> = BTreeMap::new();
        for r in &rows {
            expect.entry(r.cols()[0]).or_default().insert(r.cols()[1]);
        }
        let input = VecStream::from_sorted_rows(rows, 2);
        let pairs = collect_pairs(GroupCountDistinct::new(input, 1, Stats::new_shared()));
        assert_codes_exact(&pairs, 1);
        let got: Vec<(u64, u64)> = pairs
            .iter()
            .map(|(r, _)| (r.cols()[0], r.cols()[1]))
            .collect();
        let expect: Vec<(u64, u64)> = expect
            .into_iter()
            .map(|(k, s)| (k, s.len() as u64))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn count_distinct_empty_input() {
        let input = VecStream::from_sorted_rows(vec![], 2);
        assert_eq!(
            GroupCountDistinct::new(input, 1, Stats::new_shared()).count(),
            0
        );
    }

    #[test]
    fn boundary_detection_uses_no_column_comparisons() {
        let rows = ovc_core::table1::rows();
        let n_rows = rows.len() as u64;
        let input = VecStream::from_sorted_rows(rows, 4);
        let stats = Stats::new_shared();
        let group = GroupAggregate::new(input, 2, vec![Aggregate::Count], Arc::clone(&stats));
        let _ = collect_pairs(group);
        assert_eq!(stats.col_value_cmps(), 0);
        // One counted integer test per input row proves the handle is the
        // one the operator accounts into.
        assert_eq!(stats.ovc_cmps(), n_rows);
    }

    #[test]
    fn count_accumulator_wraps_instead_of_panicking() {
        // A pre-saturated Count accumulator must wrap in every build
        // profile (the documented uniform overflow discipline).
        assert_eq!(Aggregate::Count.fold(u64::MAX, &Row::new(vec![1])), 0);
        assert_eq!(
            Aggregate::Sum(0).fold(u64::MAX, &Row::new(vec![2])),
            1,
            "Sum wraps identically"
        );
        assert_eq!(Aggregate::Count.merge(u64::MAX, 2), 1, "merge wraps too");
    }

    #[test]
    fn merge_law_matches_fold_on_split_groups() {
        // fold(whole group) == merge(fold(front), fold(back)) for every
        // aggregate whose merge is order-trusting (First/Last orientation
        // is established by GroupFinal; here the split is in order).
        let rows: Vec<Row> = [[1u64, 10], [1, 30], [1, 20], [1, 5]]
            .iter()
            .map(|c| Row::new(c.to_vec()))
            .collect();
        for agg in [
            Aggregate::Count,
            Aggregate::Sum(1),
            Aggregate::Min(1),
            Aggregate::Max(1),
            Aggregate::First(1),
            Aggregate::Last(1),
        ] {
            let fold_all = rows[1..]
                .iter()
                .fold(agg.init(&rows[0]), |acc, r| agg.fold(acc, r));
            let front = rows[1..2]
                .iter()
                .fold(agg.init(&rows[0]), |acc, r| agg.fold(acc, r));
            let back = rows[3..]
                .iter()
                .fold(agg.init(&rows[2]), |acc, r| agg.fold(acc, r));
            assert_eq!(fold_all, agg.merge(front, back), "{agg:?}");
        }
    }

    #[test]
    fn partial_then_final_equals_direct_grouping() {
        // One partition (no parallelism): GroupPartial -> GroupFinal must
        // already reproduce GroupAggregate byte for byte.
        let mut rng = StdRng::seed_from_u64(99);
        let mut rows: Vec<Row> = (0..500)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..4u64),
                    rng.gen_range(0..6u64),
                    rng.gen_range(0..50u64),
                ])
            })
            .collect();
        rows.sort();
        let aggs = vec![
            Aggregate::Count,
            Aggregate::Sum(2),
            Aggregate::Min(2),
            Aggregate::Max(2),
            Aggregate::First(2),
            Aggregate::Last(2),
        ];
        let serial = collect_pairs(GroupAggregate::new(
            VecStream::from_sorted_rows(rows.clone(), 3),
            1,
            aggs.clone(),
            Stats::new_shared(),
        ));
        let stats = Stats::new_shared();
        let partial = GroupPartial::new(
            VecStream::from_sorted_rows(rows, 3),
            1,
            aggs.clone(),
            Arc::clone(&stats),
        );
        assert_eq!(partial.key_len(), 3, "partials stay at full arity");
        let partial_rows: Vec<OvcRow> = partial.collect();
        let gathered = VecStream::from_coded(partial_rows, 3);
        let final_pairs = collect_pairs(GroupFinal::new(gathered, 1, aggs, stats));
        assert_eq!(final_pairs, serial);
        assert_codes_exact(&final_pairs, 1);
    }

    #[test]
    fn count_distinct_partial_then_final_equals_direct() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut rows: Vec<Row> = (0..400)
            .map(|_| Row::new(vec![rng.gen_range(0..5u64), rng.gen_range(0..5u64)]))
            .collect();
        rows.sort();
        let serial = collect_pairs(GroupCountDistinct::new(
            VecStream::from_sorted_rows(rows.clone(), 2),
            1,
            Stats::new_shared(),
        ));
        let stats = Stats::new_shared();
        let partial_rows: Vec<OvcRow> = GroupCountDistinctPartial::new(
            VecStream::from_sorted_rows(rows, 2),
            1,
            Arc::clone(&stats),
        )
        .collect();
        let gathered = VecStream::from_coded(partial_rows, 2);
        let final_pairs =
            collect_pairs(GroupFinal::new(gathered, 1, vec![Aggregate::Count], stats));
        assert_eq!(final_pairs, serial);
    }
}
