//! Grouping and aggregation in sorted streams (Section 4.5) — the
//! operator behind Figure 4.
//!
//! "In a stream with offset-value codes sorted on a 'group by' list,
//! grouping aggregates input rows with offsets equal to or larger than the
//! 'group by' list.  In the aggregation output, no row has an offset equal
//! to or larger than the 'group by' list.  The output rows retain the
//! offset-value codes of the first row in each group of input rows."
//!
//! Group-boundary detection is one integer comparison per row against a
//! precomputed code threshold — the exact mechanism Figure 4 benchmarks
//! against "full comparisons of multiple key columns".

use ovc_core::theorem::clamp_to_prefix;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Value};

/// An aggregate function over a group of rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of rows in the group.
    Count,
    /// Sum of the column at the given index.
    Sum(usize),
    /// Minimum of the column at the given index.
    Min(usize),
    /// Maximum of the column at the given index.
    Max(usize),
    /// The column value of the group's first row.
    First(usize),
    /// The column value of the group's last row.
    Last(usize),
}

impl Aggregate {
    /// Initialize the accumulator from a group's first row.
    pub fn init(&self, row: &Row) -> Value {
        match *self {
            Aggregate::Count => 1,
            Aggregate::Sum(c)
            | Aggregate::Min(c)
            | Aggregate::Max(c)
            | Aggregate::First(c)
            | Aggregate::Last(c) => row.cols()[c],
        }
    }

    /// Fold one more row into the accumulator.
    pub fn fold(&self, acc: Value, row: &Row) -> Value {
        match *self {
            Aggregate::Count => acc + 1,
            Aggregate::Sum(c) => acc.wrapping_add(row.cols()[c]),
            Aggregate::Min(c) => acc.min(row.cols()[c]),
            Aggregate::Max(c) => acc.max(row.cols()[c]),
            Aggregate::First(_) => acc,
            Aggregate::Last(c) => row.cols()[c],
        }
    }
}

/// In-stream grouping: aggregates consecutive rows that share the first
/// `group_len` columns.  Output rows are the group key followed by one
/// column per aggregate; output codes have arity `group_len` and are the
/// (clamped) code of each group's first input row.
pub struct GroupAggregate<S> {
    input: S,
    in_key_len: usize,
    group_len: usize,
    aggregates: Vec<Aggregate>,
    /// First row of the group currently being accumulated.
    pending: Option<(Row, Ovc, Vec<Value>)>,
}

impl<S: OvcStream> GroupAggregate<S> {
    /// Build the operator.  Panics unless `group_len <= input.key_len()`.
    pub fn new(input: S, group_len: usize, aggregates: Vec<Aggregate>) -> Self {
        let in_key_len = input.key_len();
        assert!(
            group_len <= in_key_len,
            "group key must be a sort-key prefix"
        );
        GroupAggregate {
            input,
            in_key_len,
            group_len,
            aggregates,
            pending: None,
        }
    }

    fn finish(&self, (row, code, accs): (Row, Ovc, Vec<Value>)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.group_len + accs.len());
        cols.extend_from_slice(row.key(self.group_len));
        cols.extend_from_slice(&accs);
        OvcRow::new(
            Row::new(cols),
            clamp_to_prefix(code, self.in_key_len, self.group_len),
        )
    }
}

impl<S: OvcStream> Iterator for GroupAggregate<S> {
    type Item = OvcRow;

    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => {
                    // Input exhausted: flush the final group, if any.
                    return self.pending.take().map(|g| self.finish(g));
                }
                Some(OvcRow { row, code }) => {
                    // Group membership by code inspection alone: an offset
                    // of at least `group_len` means the entire group key is
                    // shared with the predecessor.
                    let same_group =
                        code.is_valid() && code.offset(self.in_key_len) >= self.group_len;
                    match (&mut self.pending, same_group) {
                        (Some((_, _, accs)), true) => {
                            for (acc, agg) in accs.iter_mut().zip(&self.aggregates) {
                                *acc = agg.fold(*acc, &row);
                            }
                        }
                        (pending @ None, _) => {
                            let accs = self.aggregates.iter().map(|a| a.init(&row)).collect();
                            *pending = Some((row, code, accs));
                        }
                        (pending @ Some(_), false) => {
                            // Boundary: emit the finished group, start anew.
                            let accs: Vec<Value> =
                                self.aggregates.iter().map(|a| a.init(&row)).collect();
                            let done = pending.replace((row, code, accs)).expect("pending group");
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for GroupAggregate<S> {
    fn key_len(&self) -> usize {
        self.group_len
    }
}

/// The paper's motivating two-step query (Section 3): "in a query like
/// `select …, count (distinct …) group by …`, the sort can detect
/// duplicate rows by offsets equal to the column count and, after the
/// sort, in-stream aggregation can detect group boundaries by offsets
/// smaller than the grouping key."
///
/// Input: sorted on `(group key ++ distinct columns)` = the full sort key.
/// Output: group key plus the count of distinct full keys per group —
/// both tests are single integer comparisons against code thresholds.
pub struct GroupCountDistinct<S> {
    input: S,
    in_key_len: usize,
    group_len: usize,
    pending: Option<(Row, Ovc, u64)>,
}

impl<S: OvcStream> GroupCountDistinct<S> {
    /// Build the operator; the distinct columns are the sort-key suffix
    /// past `group_len`.
    pub fn new(input: S, group_len: usize) -> Self {
        let in_key_len = input.key_len();
        assert!(group_len <= in_key_len);
        GroupCountDistinct {
            input,
            in_key_len,
            group_len,
            pending: None,
        }
    }

    fn finish(&self, (row, code, distinct): (Row, Ovc, u64)) -> OvcRow {
        let mut cols = Vec::with_capacity(self.group_len + 1);
        cols.extend_from_slice(row.key(self.group_len));
        cols.push(distinct);
        OvcRow::new(
            Row::new(cols),
            clamp_to_prefix(code, self.in_key_len, self.group_len),
        )
    }
}

impl<S: OvcStream> Iterator for GroupCountDistinct<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            match self.input.next() {
                None => return self.pending.take().map(|g| self.finish(g)),
                Some(OvcRow { row, code }) => {
                    // Two integer tests per row, zero column comparisons:
                    let is_duplicate = code.is_duplicate();
                    let same_group =
                        code.is_valid() && code.offset(self.in_key_len) >= self.group_len;
                    match (&mut self.pending, same_group) {
                        (Some((_, _, distinct)), true) => {
                            if !is_duplicate {
                                *distinct += 1;
                            }
                        }
                        (pending @ None, _) => {
                            *pending = Some((row, code, 1));
                        }
                        (pending @ Some(_), false) => {
                            let done = pending.replace((row, code, 1)).expect("pending group");
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

impl<S: OvcStream> OvcStream for GroupCountDistinct<S> {
    fn key_len(&self) -> usize {
        self.group_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn groups_table1_on_two_columns() {
        // "grouping on the first two columns can use offset-value codes
        // similarly to segmentation" — Table 1 has groups (5,7), (5,8),
        // (5,9) of sizes 2, 1, 4.
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let group = GroupAggregate::new(input, 2, vec![Aggregate::Count]);
        let pairs = collect_pairs(group);
        let got: Vec<(Vec<u64>, u64)> = pairs
            .iter()
            .map(|(r, _)| (r.key(2).to_vec(), r.cols()[2]))
            .collect();
        assert_eq!(
            got,
            vec![(vec![5, 7], 2), (vec![5, 8], 1), (vec![5, 9], 4),]
        );
        assert_codes_exact(&pairs, 2);
        // No output offset reaches the group-key arity.
        assert!(pairs.iter().all(|(_, c)| c.offset(2) < 2 || !c.is_valid()));
    }

    #[test]
    fn aggregates_compute_correctly() {
        let rows = vec![
            Row::new(vec![1, 10]),
            Row::new(vec![1, 30]),
            Row::new(vec![1, 20]),
            Row::new(vec![2, 5]),
        ];
        let input = VecStream::from_unsorted_rows(rows, 1);
        let group = GroupAggregate::new(
            input,
            1,
            vec![
                Aggregate::Count,
                Aggregate::Sum(1),
                Aggregate::Min(1),
                Aggregate::Max(1),
                Aggregate::First(1),
                Aggregate::Last(1),
            ],
        );
        let out: Vec<Row> = group.map(|r| r.row).collect();
        // Stable sort keeps group-1 payloads in arrival order 10, 30, 20.
        assert_eq!(out[0], Row::new(vec![1, 3, 60, 10, 30, 10, 20]));
        assert_eq!(out[1], Row::new(vec![2, 1, 5, 5, 5, 5, 5]));
    }

    #[test]
    fn random_grouping_matches_reference() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut rows: Vec<Row> = (0..800)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..4u64),
                    rng.gen_range(0..4u64),
                    rng.gen_range(0..100u64),
                ])
            })
            .collect();
        rows.sort();
        let mut expect: BTreeMap<Vec<u64>, (u64, u64)> = BTreeMap::new();
        for r in &rows {
            let e = expect.entry(r.key(2).to_vec()).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.cols()[2];
        }
        let input = VecStream::from_sorted_rows(rows, 3);
        let group = GroupAggregate::new(input, 2, vec![Aggregate::Count, Aggregate::Sum(2)]);
        let pairs = collect_pairs(group);
        assert_codes_exact(&pairs, 2);
        let got: Vec<(Vec<u64>, (u64, u64))> = pairs
            .iter()
            .map(|(r, _)| (r.key(2).to_vec(), (r.cols()[2], r.cols()[3])))
            .collect();
        let expect: Vec<(Vec<u64>, (u64, u64))> = expect.into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn group_by_full_key_is_dedup_with_count() {
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let group = GroupAggregate::new(input, 4, vec![Aggregate::Count]);
        let pairs = collect_pairs(group);
        assert_eq!(pairs.len(), 6);
        let counts: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[4]).collect();
        assert_eq!(counts, vec![1, 1, 1, 2, 1, 1]);
        assert_codes_exact(&pairs, 4);
    }

    #[test]
    fn group_by_empty_key_aggregates_everything() {
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let group = GroupAggregate::new(input, 0, vec![Aggregate::Count]);
        let out: Vec<Row> = group.map(|r| r.row).collect();
        assert_eq!(out, vec![Row::new(vec![7])]);
    }

    #[test]
    fn empty_input() {
        let input = VecStream::from_sorted_rows(vec![], 2);
        let mut group = GroupAggregate::new(input, 1, vec![Aggregate::Count]);
        assert!(group.next().is_none());
    }

    #[test]
    fn count_distinct_group_by() {
        // select g, count(distinct d) from t group by g — over key (g, d).
        let rows = vec![
            Row::new(vec![1, 5]),
            Row::new(vec![1, 5]), // duplicate
            Row::new(vec![1, 7]),
            Row::new(vec![2, 5]),
            Row::new(vec![2, 5]), // duplicate
            Row::new(vec![2, 5]), // duplicate
            Row::new(vec![3, 1]),
        ];
        let input = VecStream::from_sorted_rows(rows, 2);
        let stats = ovc_core::Stats::default();
        let out: Vec<(u64, u64)> = GroupCountDistinct::new(input, 1)
            .map(|r| (r.row.cols()[0], r.row.cols()[1]))
            .collect();
        assert_eq!(out, vec![(1, 2), (2, 1), (3, 1)]);
        assert_eq!(stats.col_value_cmps(), 0);
    }

    #[test]
    fn count_distinct_matches_reference_randomized() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut rows: Vec<Row> = (0..600)
            .map(|_| Row::new(vec![rng.gen_range(0..5u64), rng.gen_range(0..5u64)]))
            .collect();
        rows.sort();
        let mut expect: BTreeMap<u64, std::collections::BTreeSet<u64>> = BTreeMap::new();
        for r in &rows {
            expect.entry(r.cols()[0]).or_default().insert(r.cols()[1]);
        }
        let input = VecStream::from_sorted_rows(rows, 2);
        let pairs = collect_pairs(GroupCountDistinct::new(input, 1));
        assert_codes_exact(&pairs, 1);
        let got: Vec<(u64, u64)> = pairs
            .iter()
            .map(|(r, _)| (r.cols()[0], r.cols()[1]))
            .collect();
        let expect: Vec<(u64, u64)> = expect
            .into_iter()
            .map(|(k, s)| (k, s.len() as u64))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn count_distinct_empty_input() {
        let input = VecStream::from_sorted_rows(vec![], 2);
        assert_eq!(GroupCountDistinct::new(input, 1).count(), 0);
    }

    #[test]
    fn boundary_detection_uses_no_column_comparisons() {
        let stats = ovc_core::Stats::default();
        let input = VecStream::from_sorted_rows(ovc_core::table1::rows(), 4);
        let group = GroupAggregate::new(input, 2, vec![Aggregate::Count]);
        let _ = collect_pairs(group);
        assert_eq!(stats.col_value_cmps(), 0);
    }
}
