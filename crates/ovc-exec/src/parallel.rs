//! The order-preserving exchange with real threads (Section 4.10, scaled).
//!
//! [`crate::exchange`] implements the paper's splitting/merging shuffles as
//! single-threaded data-flow; this module runs the same code computations
//! across producer/consumer threads connected by **bounded channels**
//! (`std::sync::mpsc::sync_channel` — backpressure, no unbounded queues):
//!
//! * [`split_threaded`] — one-to-many: a producer thread routes rows by
//!   range/hash/round-robin and repairs codes with one
//!   [`OvcAccumulator`] per partition (the filter corollary); each output
//!   partition is a [`ChannelStream`] that any thread may consume.
//! * [`merge_threaded`] — many-to-one: one feeder thread per input pushes
//!   coded rows into its channel; the consuming thread runs the
//!   tree-of-losers merge over the channel streams, producing exact codes
//!   while the feeders are still running.
//! * [`repartition_threaded`] — many-to-many: N splitter threads and P
//!   merger threads all live at once, bounded channels throughout — the
//!   shape of F1 Query's exchange-parallel plans.
//! * [`merge_join_partitions`], [`group_partitions`], and
//!   [`set_op_partitions`] — partition-wise operator workers between a
//!   splitting and a gathering shuffle: one thread per partition (pair),
//!   each running the ordinary serial operator, correct because the
//!   split hashes the operator's whole key (join key, group key, or
//!   full row) so every key group is local to one worker.
//! * [`group_partitions_partial`] / [`count_distinct_partitions_partial`]
//!   — the partial-aggregate side of the split-group decomposition for
//!   exchanges hashed on a sort-key prefix longer than the group key;
//!   a `GroupFinal` above the gathering merge recombines the partials.
//!
//! Code exactness survives every hand-off because codes are a function of
//! the row sequence within a partition stream, and each thread sees its
//! partition in order.  Comparison counters from worker threads are kept
//! in per-thread [`Stats`] and merged into the caller's by snapshot
//! (`ovc_core::stats`), so accounting is identical to the serial exchange.
//!
//! **Channel gauges** ([`split_threaded_gauged`],
//! [`merge_threaded_spec_gauged`]): profiled runs attach one
//! [`ChannelGauge`] per partition, recording producer send waits,
//! consumer receive waits, and peak queue occupancy — the per-channel
//! evidence behind the "exchange sandwich" costs of EXPERIMENTS.md §5.
//! Ungauged calls add no clock reads to the exchange hot path.
//!
//! **Fault model** (DESIGN.md §14): every worker thread runs under
//! `ovc_core::ctx::contain`.  A panicking producer sends one **poison
//! frame** — a typed [`ExecError`] — down each of its still-open
//! channels; consumers re-raise it (`ctx::propagate`) the moment they
//! receive it, mergers drain their inlets to completion first so no
//! peer ever blocks on a full channel, and every join site collects
//! *all* workers before the first error propagates.  The net contract:
//! a worker panic fails the **query** with
//! [`ExecError::WorkerPanic`] — it never deadlocks peers, never leaks
//! threads, and never kills the process.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle, ScopedJoinHandle};
use std::time::Instant;

use ovc_core::ctx::{self, ExecError};
use ovc_core::fault;
use ovc_core::metrics::{ChannelGauge, ExchangeGauges};
use ovc_core::theorem::OvcAccumulator;
use ovc_core::{CodedBatch, OvcRow, OvcStream, Row, SortSpec, Stats};
use ovc_sort::TreeOfLosers;

use crate::group::{Aggregate, GroupAggregate, GroupCountDistinctPartial, GroupPartial};
use crate::merge_join::{JoinType, MergeJoin};
use crate::set_ops::{SetOp, SetOperation};

/// Default bound of every exchange channel, in rows.  Small enough for
/// backpressure to keep memory flat, large enough to amortize wakeups.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

/// What flows over an exchange channel: a coded row, or — exactly once,
/// as the producer's last word before it exits — a **poison frame**
/// carrying the typed error that killed the producer.  Consumers
/// re-raise the poison via [`ctx::propagate`]; a channel that closes
/// without poison is a clean end-of-stream.
enum Frame {
    Row(OvcRow),
    Poison(ExecError),
}

/// Join every handle, collecting successful results and the **first**
/// failure (a contained [`ExecError`] or a raw panic payload).  Joining
/// all peers before any error propagates is the no-deadlock half of the
/// fault contract: no worker outlives the failing query, and no bounded
/// channel keeps a peer blocked behind an early return.
fn reap<'scope, T>(
    handles: Vec<ScopedJoinHandle<'scope, Result<T, ExecError>>>,
) -> (Vec<T>, Option<ExecError>) {
    let mut outs = Vec::with_capacity(handles.len());
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(value)) => outs.push(value),
            Ok(Err(err)) => {
                failure.get_or_insert(err);
            }
            Err(payload) => {
                failure.get_or_insert(ctx::error_from_panic(payload));
            }
        }
    }
    (outs, failure)
}

/// A coded stream arriving over a bounded channel from a producer thread.
///
/// `ChannelStream` is `Send`: it can be handed to whichever thread runs
/// the consuming operator.  Iteration blocks on the producer (that is the
/// backpressure) and ends when the producer drops its sender; a poison
/// frame re-raises the producer's typed error on the consuming thread.
pub struct ChannelStream {
    rx: Receiver<Frame>,
    spec: SortSpec,
    /// Wait/occupancy gauge for this channel (profiled exchanges only —
    /// `None` keeps the unprofiled hot path free of clock reads).
    gauge: Option<Arc<ChannelGauge>>,
}

impl Iterator for ChannelStream {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        fault::maybe_slow_consumer();
        let frame = match &self.gauge {
            None => self.rx.recv().ok(),
            Some(g) => {
                let t0 = Instant::now();
                let frame = self.rx.recv().ok();
                g.note_recv(t0.elapsed(), matches!(frame, Some(Frame::Row(_))));
                frame
            }
        };
        match frame {
            Some(Frame::Row(row)) => Some(row),
            Some(Frame::Poison(err)) => ctx::propagate(err),
            None => None,
        }
    }
}

impl OvcStream for ChannelStream {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// The output side of [`split_threaded`]: per-partition channel streams
/// plus the producer's join handle.
pub struct SplitThreads {
    partitions: Vec<ChannelStream>,
    producer: JoinHandle<()>,
}

impl SplitThreads {
    /// Take the partition streams (each `Send`, consumable by any thread)
    /// and the producer handle to [`join`](JoinHandle::join) afterwards.
    pub fn into_parts(self) -> (Vec<ChannelStream>, JoinHandle<()>) {
        (self.partitions, self.producer)
    }

    /// Drain every partition concurrently (one consumer thread each) and
    /// return the materialized batches.
    ///
    /// Draining partitions **sequentially** against a bounded-channel
    /// producer deadlocks — the producer blocks on a full buffer of a
    /// partition nobody is reading yet (the very deadlock §4.10 notes
    /// real systems design around) — so this helper always fans out.
    pub fn collect_all(self) -> Vec<CodedBatch> {
        let (parts, producer) = self.into_parts();
        let (out, failure) = thread::scope(|scope| {
            let consumers: Vec<_> = parts
                .into_iter()
                .map(|p| scope.spawn(move || ctx::contain(|| CodedBatch::from_stream(p))))
                .collect();
            reap(consumers)
        });
        // Every consumer has drained or dropped its channel, so the
        // producer (which contains its own panics into poison frames)
        // has already exited; a join failure here can only be the
        // poison hand-off itself dying, which still maps to a typed
        // error rather than a crash.
        let producer_failure = producer.join().err().map(ctx::error_from_panic);
        if let Some(err) = failure.or(producer_failure) {
            ctx::propagate(err);
        }
        out
    }
}

/// One-to-many splitting shuffle on a real producer thread.
///
/// The producer owns one [`OvcAccumulator`] per partition: a row routed to
/// partition `p` is "kept" there and "absorbed" by every other partition's
/// accumulator, so each partition stream carries exact codes relative to
/// its own previous row — the same repair the serial
/// [`crate::exchange::split`] performs, now overlapped with consumption.
pub fn split_threaded<P>(input: CodedBatch, parts: usize, part: P, capacity: usize) -> SplitThreads
where
    P: FnMut(&Row) -> usize + Send + 'static,
{
    split_threaded_gauged(input, parts, part, capacity, None)
}

/// [`split_threaded`] with per-partition [`ChannelGauge`]s: the producer
/// times every `send` (blocked time = backpressure from that partition's
/// consumer) and each partition's consumer times every `recv`, so a
/// profiled run can read skew and stalls per channel.  `None` gauges are
/// the ungauged fast path — not a single clock read is added.
pub fn split_threaded_gauged<P>(
    input: CodedBatch,
    parts: usize,
    part: P,
    capacity: usize,
    gauges: Option<&ExchangeGauges>,
) -> SplitThreads
where
    P: FnMut(&Row) -> usize + Send + 'static,
{
    assert!(parts > 0, "split needs at least one partition");
    let spec = input.sort_spec().clone();
    let capacity = capacity.max(1);
    let (txs, rxs): (Vec<SyncSender<Frame>>, Vec<Receiver<Frame>>) =
        (0..parts).map(|_| sync_channel(capacity)).unzip();
    let send_gauges: Vec<Option<Arc<ChannelGauge>>> = match gauges {
        Some(g) => (0..parts).map(|p| Some(g.channel(p))).collect(),
        None => vec![None; parts],
    };
    let recv_gauges: Vec<Option<Arc<ChannelGauge>>> = match gauges {
        Some(g) => (0..parts).map(|p| Some(g.channel(p))).collect(),
        None => vec![None; parts],
    };
    let producer = thread::spawn(move || {
        let result = ctx::contain(|| {
            fault::maybe_panic();
            route_coded_rows(input, parts, part, |p, row| match &send_gauges[p] {
                None => txs[p].send(Frame::Row(row)).is_ok(),
                Some(g) => {
                    let t0 = Instant::now();
                    let ok = txs[p].send(Frame::Row(row)).is_ok();
                    if ok {
                        g.note_send(t0.elapsed());
                    }
                    ok
                }
            });
        });
        if let Err(err) = result {
            // Poison every partition so consumers see the typed error
            // instead of mistaking the close for clean end-of-stream.
            // Backpressure cannot wedge this: a live consumer drains
            // its channel, and a dead one makes the send fail cleanly.
            for tx in &txs {
                let _ = tx.send(Frame::Poison(err.clone()));
            }
        }
    });
    SplitThreads {
        partitions: rxs
            .into_iter()
            .zip(recv_gauges)
            .map(|(rx, gauge)| ChannelStream {
                rx,
                spec: spec.clone(),
                gauge,
            })
            .collect(),
        producer,
    }
}

/// The splitting side shared by [`split_threaded`] and
/// [`repartition_threaded`]: route every row of `input` with `part`,
/// repairing codes with one [`OvcAccumulator`] per partition (a row
/// "kept" by partition `p` is "absorbed" by every other partition's
/// accumulator — the filter corollary), and hand each coded row to
/// `send`.  A `false` return from `send` closes that partition (its
/// consumer is gone); the others keep flowing.
fn route_coded_rows<P>(
    input: CodedBatch,
    parts: usize,
    mut part: P,
    mut send: impl FnMut(usize, OvcRow) -> bool,
) where
    P: FnMut(&Row) -> usize,
{
    let mut accs = vec![OvcAccumulator::new(); parts];
    let mut open = vec![true; parts];
    for OvcRow { row, code } in input.into_stream() {
        let p = part(&row);
        assert!(p < parts, "partition function out of range");
        let out_code = accs[p].emit(code);
        for (i, acc) in accs.iter_mut().enumerate() {
            if i != p {
                acc.absorb(code);
            }
        }
        // The row moves straight into the send — no per-row clone.
        if open[p] && !send(p, OvcRow::new(row, out_code)) {
            open[p] = false;
        }
    }
}

/// Many-to-one merging shuffle: feeder threads push each input batch into
/// a bounded channel; the *calling* thread consumes the tree-of-losers
/// merge as a coded stream while the feeders run.
///
/// Dropping the stream early is safe: closed channels make the feeders
/// exit, and the feeder threads are joined on drop.
pub struct MergeThreaded {
    tree: Option<TreeOfLosers<ChannelStream>>,
    feeders: Vec<JoinHandle<()>>,
    spec: SortSpec,
}

impl Iterator for MergeThreaded {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.tree.as_mut().and_then(|t| t.next())
    }
}

impl OvcStream for MergeThreaded {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

impl Drop for MergeThreaded {
    fn drop(&mut self) {
        // Drop the tree (and its receivers) first so blocked feeders see
        // closed channels instead of deadlocking, then reap them.
        self.tree = None;
        for f in self.feeders.drain(..) {
            let _ = f.join();
        }
    }
}

/// Order-preserving many-to-one merge over worker-fed channels, with
/// the default ascending ordering on the leading `key_len` columns.
pub fn merge_threaded(
    inputs: Vec<CodedBatch>,
    key_len: usize,
    capacity: usize,
    stats: &Arc<Stats>,
) -> MergeThreaded {
    merge_threaded_spec(inputs, SortSpec::asc(key_len), capacity, stats)
}

/// Order-preserving many-to-one merge over worker-fed channels under an
/// arbitrary [`SortSpec`] (the inputs must all carry it).
pub fn merge_threaded_spec(
    inputs: Vec<CodedBatch>,
    spec: SortSpec,
    capacity: usize,
    stats: &Arc<Stats>,
) -> MergeThreaded {
    merge_threaded_spec_gauged(inputs, spec, capacity, stats, None)
}

/// [`merge_threaded_spec`] with per-input [`ChannelGauge`]s: feeder `i`
/// times its sends into channel `i` (blocked time = the merge consuming
/// other inputs) and the merging thread times its receives, so a
/// profiled run can see which partition starved the gather.  `None` is
/// the ungauged fast path.
pub fn merge_threaded_spec_gauged(
    inputs: Vec<CodedBatch>,
    spec: SortSpec,
    capacity: usize,
    stats: &Arc<Stats>,
    gauges: Option<&ExchangeGauges>,
) -> MergeThreaded {
    debug_assert!(inputs.iter().all(|b| b.sort_spec() == &spec));
    let capacity = capacity.max(1);
    let mut streams = Vec::with_capacity(inputs.len());
    let mut feeders = Vec::with_capacity(inputs.len());
    for (i, batch) in inputs.into_iter().enumerate() {
        let (tx, rx) = sync_channel::<Frame>(capacity);
        let gauge = gauges.map(|g| g.channel(i));
        let feeder_gauge = gauge.clone();
        feeders.push(thread::spawn(move || {
            let result = ctx::contain(|| {
                fault::maybe_panic();
                for row in batch.into_stream() {
                    match &feeder_gauge {
                        None => {
                            if tx.send(Frame::Row(row)).is_err() {
                                break; // consumer gone: stop feeding
                            }
                        }
                        Some(g) => {
                            let t0 = Instant::now();
                            if tx.send(Frame::Row(row)).is_err() {
                                break;
                            }
                            g.note_send(t0.elapsed());
                        }
                    }
                }
            });
            if let Err(err) = result {
                // Poison this inlet: the merge re-raises the typed
                // error the moment the tournament next reads it.
                let _ = tx.send(Frame::Poison(err));
            }
        }));
        streams.push(ChannelStream {
            rx,
            spec: spec.clone(),
            gauge,
        });
    }
    MergeThreaded {
        tree: Some(TreeOfLosers::new_spec(
            streams,
            spec.clone(),
            Arc::clone(stats),
        )),
        feeders,
        spec,
    }
}

/// Many-to-many shuffle with N splitter threads and `parts_out` merger
/// threads running concurrently, one bounded channel per merger.
///
/// Each splitter repairs codes per output partition (as in
/// [`split_threaded`]); each merger drains its inlet into per-splitter
/// buffers and runs a tree-of-losers over them with a per-thread
/// [`Stats`], merged into the caller's counters after the join.  Returns
/// the materialized output partitions.
pub fn repartition_threaded<P>(
    inputs: Vec<CodedBatch>,
    key_len: usize,
    parts_out: usize,
    mut make_part: impl FnMut() -> P,
    capacity: usize,
    stats: &Arc<Stats>,
) -> Vec<CodedBatch>
where
    P: FnMut(&Row) -> usize + Send,
{
    assert!(parts_out > 0, "repartition needs at least one partition");
    debug_assert!(inputs.iter().all(|b| b.key_len() == key_len));
    let capacity = capacity.max(1);
    let n_inputs = inputs.len();

    // One bounded channel per *merger*, shared by all splitters, rows
    // tagged with their splitter index.  A merger blocks on its single
    // inlet and is therefore always draining, which is the deadlock
    // avoidance §4.10 alludes to: with one bounded channel per
    // splitter×merger edge, a merge that waits on one splitter's row
    // while another splitter's buffer sits full forms a
    // producer/consumer wait cycle.  mpsc guarantees per-sender FIFO, so
    // each splitter's partition order (and with it code exactness)
    // survives the shared channel.
    let mut merger_rxs = Vec::with_capacity(parts_out);
    let mut txs_template: Vec<SyncSender<(usize, Frame)>> = Vec::with_capacity(parts_out);
    for _ in 0..parts_out {
        let (tx, rx) = sync_channel::<(usize, Frame)>(capacity);
        txs_template.push(tx);
        merger_rxs.push(rx);
    }

    let (merged, failure) = thread::scope(|scope| {
        // Splitters: one thread per input, the same routing core as
        // split_threaded, rows tagged with their splitter index.  Each
        // runs contained: a panicking splitter poisons every merger
        // inlet it still holds and exits instead of tearing the scope.
        for (idx, batch) in inputs.into_iter().enumerate() {
            let txs = txs_template.clone();
            let part = make_part();
            scope.spawn(move || {
                let result = ctx::contain(|| {
                    fault::maybe_panic();
                    route_coded_rows(batch, parts_out, part, |p, row| {
                        txs[p].send((idx, Frame::Row(row))).is_ok()
                    });
                });
                if let Err(err) = result {
                    for tx in &txs {
                        let _ = tx.send((idx, Frame::Poison(err.clone())));
                    }
                }
            });
        }
        // The template senders must drop before the mergers can see
        // end-of-input (a merger's channel closes when every splitter
        // has dropped its clone).
        drop(txs_template);

        // Mergers: one thread per output partition, per-thread Stats.
        // Each blocks on its inlet, demultiplexes rows back into
        // per-splitter buffers, then runs the coded tree-of-losers merge.
        // A poison frame fails the merger's partition — but it keeps
        // draining its inlet to the end first, so the *healthy*
        // splitters never block on a full channel (§4.10's wait cycle).
        let mergers: Vec<_> = merger_rxs
            .into_iter()
            .map(|rx| {
                scope.spawn(move || {
                    let mut bufs: Vec<Vec<OvcRow>> = vec![Vec::new(); n_inputs];
                    let mut poison: Option<ExecError> = None;
                    while let Ok((idx, frame)) = rx.recv() {
                        match frame {
                            Frame::Row(row) => {
                                if poison.is_none() {
                                    bufs[idx].push(row);
                                }
                            }
                            Frame::Poison(err) => {
                                if poison.is_none() {
                                    poison = Some(err);
                                    bufs.iter_mut().for_each(Vec::clear);
                                }
                            }
                        }
                    }
                    if let Some(err) = poison {
                        return Err(err);
                    }
                    let local = Stats::new_shared();
                    let streams: Vec<_> = bufs
                        .into_iter()
                        .map(|rows| CodedBatch::from_coded(rows, key_len).into_stream())
                        .collect();
                    let rows: Vec<OvcRow> =
                        TreeOfLosers::new(streams, key_len, Arc::clone(&local)).collect();
                    Ok((rows, local.snapshot()))
                })
            })
            .collect();
        reap(mergers)
    });

    let outs: Vec<CodedBatch> = merged
        .into_iter()
        .map(|(rows, snapshot)| {
            stats.absorb(&snapshot);
            CodedBatch::from_coded(rows, key_len)
        })
        .collect();
    if let Some(err) = failure {
        ctx::propagate(err);
    }
    outs
}

/// Partition-parallel merge join: one worker thread per partition pair,
/// each running the ordinary [`MergeJoin`] over its co-partitioned
/// inputs with a per-thread [`Stats`] (merged into the caller's by
/// snapshot, as everywhere in this module).
///
/// Correctness rests on co-partitioning: rows with equal join keys must
/// sit in the same partition index on both sides (hash the *whole* join
/// key — [`crate::exchange::partition::by_key_hash`]), so every join
/// group is local to one worker, and merging the sorted per-partition
/// outputs ([`merge_threaded`]) reproduces the serial join's row
/// sequence — and therefore, codes being a function of the row sequence,
/// its exact codes — byte for byte.
pub fn merge_join_partitions(
    left: Vec<CodedBatch>,
    right: Vec<CodedBatch>,
    join_len: usize,
    join_type: JoinType,
    left_width: usize,
    right_width: usize,
    stats: &Arc<Stats>,
) -> Vec<CodedBatch> {
    assert_eq!(
        left.len(),
        right.len(),
        "partitioned merge join requires co-partitioned inputs"
    );
    let (joined, failure) = thread::scope(|scope| {
        let workers: Vec<_> = left
            .into_iter()
            .zip(right)
            .map(|(l, r)| {
                scope.spawn(move || {
                    ctx::contain(|| {
                        fault::maybe_panic();
                        let local = Stats::new_shared();
                        let join = MergeJoin::new(
                            l.into_stream(),
                            r.into_stream(),
                            join_len,
                            join_type,
                            left_width,
                            right_width,
                            Arc::clone(&local),
                        );
                        let spec = join.sort_spec();
                        let rows: Vec<OvcRow> = join.collect();
                        (rows, spec, local.snapshot())
                    })
                })
            })
            .collect();
        reap(workers)
    });
    let outs: Vec<CodedBatch> = joined
        .into_iter()
        .map(|(rows, spec, snapshot)| {
            stats.absorb(&snapshot);
            CodedBatch::from_coded_spec(rows, spec)
        })
        .collect();
    if let Some(err) = failure {
        ctx::propagate(err);
    }
    outs
}

/// Shared worker harness of the partition operators: one thread per
/// partition item (a batch, or a co-partitioned batch pair), each with
/// its own [`Stats`] merged into the caller's by snapshot after the
/// join.
fn partition_workers<T, F>(parts: Vec<T>, stats: &Arc<Stats>, work: F) -> Vec<CodedBatch>
where
    T: Send,
    F: Fn(T, Arc<Stats>) -> CodedBatch + Send + Sync,
{
    let (outs, failure) = thread::scope(|scope| {
        let workers: Vec<_> = parts
            .into_iter()
            .map(|item| {
                let work = &work;
                scope.spawn(move || {
                    ctx::contain(|| {
                        fault::maybe_panic();
                        let local = Stats::new_shared();
                        let out = work(item, Arc::clone(&local));
                        (out, local.snapshot())
                    })
                })
            })
            .collect();
        reap(workers)
    });
    let batches: Vec<CodedBatch> = outs
        .into_iter()
        .map(|(batch, snapshot)| {
            stats.absorb(&snapshot);
            batch
        })
        .collect();
    if let Some(err) = failure {
        ctx::propagate(err);
    }
    batches
}

/// Partition-parallel grouping: one worker thread per partition, each
/// running the ordinary [`GroupAggregate`] over its partition with a
/// per-thread [`Stats`] (snapshot-merged into the caller's).
///
/// Correctness rests on group co-location: the partitioning must hash
/// the full group key (or any subset of its columns —
/// [`crate::exchange::partition::by_key_hash`] over `group_len`), so
/// rows of one group agree on the hashed columns and land in the same
/// partition.  Every group is then completed by exactly one worker, and
/// the gathering merge ([`merge_threaded`]) reproduces the serial
/// grouping's row sequence — and, codes being a function of the row
/// sequence, its exact codes — byte for byte.
///
/// When the exchange must hash on a sort-key prefix *longer* than the
/// group key (groups split across partitions), use
/// [`group_partitions_partial`] plus a [`crate::group::GroupFinal`]
/// above the gather instead.
pub fn group_partitions(
    parts: Vec<CodedBatch>,
    group_len: usize,
    aggs: Vec<Aggregate>,
    stats: &Arc<Stats>,
) -> Vec<CodedBatch> {
    partition_workers(parts, stats, move |batch, local| {
        let rows: Vec<OvcRow> =
            GroupAggregate::new(batch.into_stream(), group_len, aggs.clone(), local).collect();
        CodedBatch::from_coded(rows, group_len)
    })
}

/// Partial half of the split-group decomposition: one
/// [`crate::group::GroupPartial`] worker per partition, for exchanges
/// hashed on a sort-key prefix longer than the group key.  The returned
/// batches stay coded at the **full input arity**; gather them with
/// [`merge_threaded`] at that arity and merge the adjacent partials
/// with [`crate::group::GroupFinal`] to recover the serial rows and
/// codes.
pub fn group_partitions_partial(
    parts: Vec<CodedBatch>,
    group_len: usize,
    aggs: Vec<Aggregate>,
    stats: &Arc<Stats>,
) -> Vec<CodedBatch> {
    partition_workers(parts, stats, move |batch, local| {
        let key_len = batch.key_len();
        let rows: Vec<OvcRow> =
            GroupPartial::new(batch.into_stream(), group_len, aggs.clone(), local).collect();
        CodedBatch::from_coded(rows, key_len)
    })
}

/// Count-distinct flavour of [`group_partitions_partial`]: per-partition
/// [`crate::group::GroupCountDistinctPartial`] workers.  Equal full keys
/// hash equally, so per-partition distinct counts are disjoint and the
/// downstream [`crate::group::GroupFinal`] (over `[Aggregate::Count]`)
/// sums them into the exact global counts.
pub fn count_distinct_partitions_partial(
    parts: Vec<CodedBatch>,
    group_len: usize,
    stats: &Arc<Stats>,
) -> Vec<CodedBatch> {
    partition_workers(parts, stats, move |batch, local| {
        let key_len = batch.key_len();
        let rows: Vec<OvcRow> =
            GroupCountDistinctPartial::new(batch.into_stream(), group_len, local).collect();
        CodedBatch::from_coded(rows, key_len)
    })
}

/// Partition-parallel set operation: one worker thread per partition
/// pair, each running the ordinary [`SetOperation`] over its
/// co-partitioned inputs with a per-thread [`Stats`] (snapshot-merged).
///
/// Correctness rests on co-partitioning on the **full row** (set
/// semantics compare entire rows — hash all `key_len` columns on both
/// sides): equal rows co-locate whichever input they come from, so
/// every key group is local to one worker and the gathering merge
/// reproduces the serial operation's rows and codes byte for byte.
pub fn set_op_partitions(
    left: Vec<CodedBatch>,
    right: Vec<CodedBatch>,
    op: SetOp,
    stats: &Arc<Stats>,
) -> Vec<CodedBatch> {
    assert_eq!(
        left.len(),
        right.len(),
        "partitioned set operation requires co-partitioned inputs"
    );
    let pairs: Vec<(CodedBatch, CodedBatch)> = left.into_iter().zip(right).collect();
    partition_workers(pairs, stats, move |(l, r), local| {
        let key_len = l.key_len();
        let rows: Vec<OvcRow> =
            SetOperation::new(l.into_stream(), r.into_stream(), op, local).collect();
        CodedBatch::from_coded(rows, key_len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::{self, partition};
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::{Ovc, VecStream};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn batch(n: usize, seed: u64) -> (CodedBatch, Vec<Row>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..30u64), rng.gen_range(0..30u64)]))
            .collect();
        rows.sort();
        (CodedBatch::from_sorted_rows(rows.clone(), 2), rows)
    }

    fn check_exact(b: &CodedBatch) {
        let pairs: Vec<(Row, Ovc)> = b
            .to_ovc_rows()
            .iter()
            .map(|r| (r.row.clone(), r.code))
            .collect();
        assert_codes_exact(&pairs, b.key_len());
    }

    #[test]
    fn threaded_split_matches_serial_split() {
        let (input, rows) = batch(400, 1);
        let serial = exchange::split(
            VecStream::from_sorted_rows(rows, 2),
            4,
            partition::by_hash(0, 4),
        );
        let threaded = split_threaded(input, 4, partition::by_hash(0, 4), 16).collect_all();
        assert_eq!(threaded.len(), 4);
        for (t, s) in threaded.into_iter().zip(serial) {
            check_exact(&t);
            assert_eq!(t.into_rows(), s.collect::<Vec<OvcRow>>());
        }
    }

    #[test]
    fn threaded_split_partitions_consumed_on_worker_threads() {
        let (input, rows) = batch(300, 2);
        let (parts, producer) = split_threaded(input, 3, partition::by_hash(1, 3), 8).into_parts();
        let consumers: Vec<_> = parts
            .into_iter()
            .map(|p| thread::spawn(move || CodedBatch::from_stream(p)))
            .collect();
        let mut total = 0;
        for c in consumers {
            let b = match c.join() {
                Ok(b) => b,
                Err(payload) => ctx::propagate(ctx::error_from_panic(payload)),
            };
            check_exact(&b);
            total += b.len();
        }
        assert!(producer.join().is_ok(), "split producer must exit cleanly");
        assert_eq!(total, rows.len());
    }

    #[test]
    fn poisoned_split_surfaces_typed_error_on_every_partition() {
        // A partition function that dies mid-stream runs on the producer
        // thread: the containment there must poison every partition, and
        // each consumer must see WorkerPanic — not a clean short stream.
        let (input, _) = batch(300, 23);
        let mut n = 0usize;
        let split = split_threaded(
            input,
            3,
            move |_row: &Row| {
                n += 1;
                assert!(n <= 50, "router failed mid-stream");
                n % 3
            },
            256, // roomy channels: partitions are drained sequentially below
        );
        let (parts, producer) = split.into_parts();
        for p in parts {
            match ctx::contain(|| p.collect::<Vec<OvcRow>>()) {
                Err(err) => assert_eq!(err.reason(), "worker_panic"),
                Ok(rows) => panic!("partition must end in poison, got {} rows", rows.len()),
            }
        }
        assert!(
            producer.join().is_ok(),
            "producer must contain its own panic"
        );
    }

    #[test]
    fn panicking_partition_worker_yields_typed_error_after_all_peers_join() {
        let (a, _) = batch(100, 24);
        let (b, _) = batch(100, 25);
        let stats = Stats::new_shared();
        let result = ctx::contain(|| {
            partition_workers(vec![(a, false), (b, true)], &stats, |(batch, fail), _| {
                assert!(!fail, "worker blew up");
                batch
            })
        });
        match result {
            Err(err) => {
                assert_eq!(err.reason(), "worker_panic");
                assert!(err.to_string().contains("worker blew up"), "{err}");
            }
            Ok(_) => panic!("injected worker panic must fail the query"),
        }
    }

    #[test]
    fn threaded_merge_round_trips() {
        let (input, rows) = batch(500, 3);
        let stats = Stats::new_shared();
        let parts = split_threaded(input, 8, partition::by_hash(0, 8), DEFAULT_CHANNEL_CAPACITY)
            .collect_all();
        let merged = merge_threaded(parts, 2, DEFAULT_CHANNEL_CAPACITY, &stats);
        let pairs = collect_pairs(merged);
        assert_codes_exact(&pairs, 2);
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, rows, "threaded shuffle round trip");
    }

    #[test]
    fn threaded_merge_dropped_early_joins_cleanly() {
        let (input, _) = batch(2000, 4);
        let stats = Stats::new_shared();
        let parts = split_threaded(input, 4, partition::round_robin(4), 8).collect_all();
        let mut merged = merge_threaded(parts, 2, 2, &stats);
        let _ = merged.next();
        drop(merged); // feeders must exit via closed channels, not hang
    }

    #[test]
    fn repartition_matches_serial_many_to_many() {
        let (a, rows_a) = batch(300, 5);
        let (b, rows_b) = batch(300, 6);
        let stats = Stats::new_shared();
        let outs = repartition_threaded(vec![a, b], 2, 4, || partition::by_hash(0, 4), 16, &stats);
        let serial_stats = Stats::new_shared();
        let serial = exchange::many_to_many(
            vec![
                VecStream::from_sorted_rows(rows_a.clone(), 2),
                VecStream::from_sorted_rows(rows_b.clone(), 2),
            ],
            4,
            || partition::by_hash(0, 4),
            &serial_stats,
        );
        let mut total = 0;
        for (t, s) in outs.into_iter().zip(serial) {
            check_exact(&t);
            total += t.len();
            assert_eq!(t.into_rows(), s.collect::<Vec<OvcRow>>());
        }
        assert_eq!(total, rows_a.len() + rows_b.len());
        // Per-thread merger counters landed in the caller's stats, and the
        // totals agree with the serial exchange (dop-invariant accounting).
        assert_eq!(stats.ovc_cmps(), serial_stats.ovc_cmps());
        assert_eq!(stats.col_value_cmps(), serial_stats.col_value_cmps());
    }

    #[test]
    fn skewed_split_one_empty_one_hot() {
        let (input, rows) = batch(200, 7);
        // by_range routes values below the boundary to partition 0, so a
        // boundary above the whole domain leaves partition 1 empty and
        // partition 0 hot.
        let parts = split_threaded(input, 2, partition::by_range(vec![1000]), 4).collect_all();
        assert_eq!(parts[1].len(), 0, "nothing reaches the upper range");
        assert_eq!(parts[0].len(), rows.len());
        check_exact(&parts[0]);
    }

    #[test]
    fn partitioned_merge_join_matches_serial_join() {
        use ovc_core::derive::assert_codes_exact;
        let mut rng = StdRng::seed_from_u64(91);
        let mk = |seed: u64| -> Vec<Row> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rows: Vec<Row> = (0..300)
                .map(|_| Row::new(vec![rng.gen_range(0..20u64), rng.gen_range(0..20u64)]))
                .collect();
            rows.sort();
            rows
        };
        let _ = rng.gen_range(0..2u64);
        for join_type in [JoinType::Inner, JoinType::LeftOuter, JoinType::LeftSemi] {
            let (l, r) = (mk(1), mk(2));
            // Serial reference.
            let serial_stats = Stats::new_shared();
            let serial: Vec<OvcRow> = MergeJoin::new(
                VecStream::from_sorted_rows(l.clone(), 2),
                VecStream::from_sorted_rows(r.clone(), 2),
                1,
                join_type,
                2,
                2,
                Arc::clone(&serial_stats),
            )
            .collect();

            // Partition both sides on the whole join key, join per
            // partition on worker threads, gather with the merging
            // exchange.
            let parts = 3;
            let stats = Stats::new_shared();
            let lp = split_threaded(
                CodedBatch::from_sorted_rows(l, 2),
                parts,
                partition::by_key_hash(1, parts),
                16,
            )
            .collect_all();
            let rp = split_threaded(
                CodedBatch::from_sorted_rows(r, 2),
                parts,
                partition::by_key_hash(1, parts),
                16,
            )
            .collect_all();
            let joined = merge_join_partitions(lp, rp, 1, join_type, 2, 2, &stats);
            let out_key = joined.first().map(|b| b.key_len()).unwrap_or(1);
            let gathered: Vec<OvcRow> = merge_threaded(joined, out_key, 16, &stats).collect();
            assert_eq!(gathered, serial, "{join_type:?}: rows and codes");
            let pairs: Vec<(Row, Ovc)> = gathered.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact(&pairs, out_key);
        }
    }

    #[test]
    fn partitioned_group_by_matches_serial_grouping() {
        use crate::group::GroupAggregate;
        let mut rows: Vec<Row> = {
            let mut rng = StdRng::seed_from_u64(55);
            (0..400)
                .map(|_| Row::new(vec![rng.gen_range(0..12u64), rng.gen_range(0..40u64)]))
                .collect()
        };
        rows.sort();
        let aggs = vec![
            crate::group::Aggregate::Count,
            crate::group::Aggregate::Sum(1),
            crate::group::Aggregate::Min(1),
            crate::group::Aggregate::Max(1),
            crate::group::Aggregate::First(1),
            crate::group::Aggregate::Last(1),
        ];
        let serial: Vec<OvcRow> = GroupAggregate::new(
            VecStream::from_sorted_rows(rows.clone(), 2),
            1,
            aggs.clone(),
            Stats::new_shared(),
        )
        .collect();

        // Split on the full group key (groups co-locate), group each
        // partition on a worker, gather with the merging exchange.
        let parts = 3;
        let stats = Stats::new_shared();
        let split = split_threaded(
            CodedBatch::from_sorted_rows(rows, 2),
            parts,
            partition::by_key_hash(1, parts),
            16,
        )
        .collect_all();
        let grouped = group_partitions(split, 1, aggs, &stats);
        let gathered: Vec<OvcRow> = merge_threaded(grouped, 1, 16, &stats).collect();
        assert_eq!(gathered, serial, "rows and codes");
        let pairs: Vec<(Row, Ovc)> = gathered.into_iter().map(|r| (r.row, r.code)).collect();
        assert_codes_exact(&pairs, 1);
        // Worker-side boundary tests were snapshot-merged into the
        // caller's counters (one per input row plus gather work).
        assert!(stats.ovc_cmps() >= 400);
    }

    #[test]
    fn partitioned_set_ops_match_serial_for_all_six_ops() {
        use crate::set_ops::{SetOp, SetOperation};
        let mk = |seed: u64, n: usize| -> Vec<Row> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rows: Vec<Row> = (0..n)
                .map(|_| Row::new(vec![rng.gen_range(0..8u64), rng.gen_range(0..4u64)]))
                .collect();
            rows.sort();
            rows
        };
        for op in [
            SetOp::Union,
            SetOp::UnionAll,
            SetOp::Intersect,
            SetOp::IntersectAll,
            SetOp::Except,
            SetOp::ExceptAll,
        ] {
            let (l, r) = (mk(61, 250), mk(62, 200));
            let serial: Vec<OvcRow> = SetOperation::new(
                VecStream::from_sorted_rows(l.clone(), 2),
                VecStream::from_sorted_rows(r.clone(), 2),
                op,
                Stats::new_shared(),
            )
            .collect();

            // Hash both sides on the full row: equal rows co-locate.
            let parts = 3;
            let stats = Stats::new_shared();
            let lp = split_threaded(
                CodedBatch::from_sorted_rows(l, 2),
                parts,
                partition::by_key_hash(2, parts),
                16,
            )
            .collect_all();
            let rp = split_threaded(
                CodedBatch::from_sorted_rows(r, 2),
                parts,
                partition::by_key_hash(2, parts),
                16,
            )
            .collect_all();
            let outs = set_op_partitions(lp, rp, op, &stats);
            let gathered: Vec<OvcRow> = merge_threaded(outs, 2, 16, &stats).collect();
            assert_eq!(gathered, serial, "{op:?}: rows and codes");
            let pairs: Vec<(Row, Ovc)> = gathered.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact(&pairs, 2);
        }
    }

    #[test]
    fn prefix_hashed_partial_aggregation_matches_serial() {
        use crate::group::{Aggregate, GroupAggregate, GroupFinal};
        // Hash on the FULL sort key while grouping on a 1-column prefix:
        // groups split across partitions, so each worker emits partials
        // and a final merge above the gather recombines them.
        let mut rows: Vec<Row> = {
            let mut rng = StdRng::seed_from_u64(73);
            (0..500)
                .map(|_| {
                    Row::new(vec![
                        rng.gen_range(0..5u64),
                        rng.gen_range(0..10u64),
                        rng.gen_range(0..30u64),
                    ])
                })
                .collect()
        };
        rows.sort();
        let aggs = vec![
            Aggregate::Count,
            Aggregate::Sum(2),
            Aggregate::Min(2),
            Aggregate::Max(2),
            Aggregate::First(2),
            Aggregate::Last(2),
        ];
        let serial: Vec<OvcRow> = GroupAggregate::new(
            VecStream::from_sorted_rows(rows.clone(), 3),
            1,
            aggs.clone(),
            Stats::new_shared(),
        )
        .collect();
        for parts in [1usize, 2, 4] {
            let stats = Stats::new_shared();
            let split = split_threaded(
                CodedBatch::from_sorted_rows(rows.clone(), 3),
                parts,
                partition::by_key_hash(3, parts),
                16,
            )
            .collect_all();
            let partials = group_partitions_partial(split, 1, aggs.clone(), &stats);
            let gathered = merge_threaded(partials, 3, 16, &stats);
            let out: Vec<OvcRow> =
                GroupFinal::new(gathered, 1, aggs.clone(), Arc::clone(&stats)).collect();
            assert_eq!(out, serial, "parts={parts}: rows and codes");
        }
    }

    #[test]
    fn prefix_hashed_count_distinct_partials_match_serial() {
        use crate::group::{Aggregate, GroupCountDistinct, GroupFinal};
        let mut rows: Vec<Row> = {
            let mut rng = StdRng::seed_from_u64(81);
            (0..400)
                .map(|_| Row::new(vec![rng.gen_range(0..4u64), rng.gen_range(0..6u64)]))
                .collect()
        };
        rows.sort();
        let serial: Vec<OvcRow> = GroupCountDistinct::new(
            VecStream::from_sorted_rows(rows.clone(), 2),
            1,
            Stats::new_shared(),
        )
        .collect();
        for parts in [2usize, 3] {
            let stats = Stats::new_shared();
            let split = split_threaded(
                CodedBatch::from_sorted_rows(rows.clone(), 2),
                parts,
                partition::by_key_hash(2, parts),
                16,
            )
            .collect_all();
            let partials = count_distinct_partitions_partial(split, 1, &stats);
            let gathered = merge_threaded(partials, 2, 16, &stats);
            let out: Vec<OvcRow> =
                GroupFinal::new(gathered, 1, vec![Aggregate::Count], Arc::clone(&stats)).collect();
            assert_eq!(out, serial, "parts={parts}: rows and codes");
        }
    }

    #[test]
    fn gauged_exchange_counts_rows_and_occupancy_without_perturbing_codes() {
        let (input, rows) = batch(400, 11);
        let split_gauges = ExchangeGauges::new(4);
        let merge_gauges = ExchangeGauges::new(4);
        let stats = Stats::new_shared();
        let parts =
            split_threaded_gauged(input, 4, partition::by_hash(0, 4), 8, Some(&split_gauges))
                .collect_all();
        // Every row crossed exactly one split channel; waits accrued and
        // occupancy never exceeded the channel bound (+1 for the row in
        // flight on the consumer side — see ChannelGauge::note_send).
        let snap = split_gauges.snapshot();
        assert_eq!(snap.iter().map(|g| g.rows).sum::<u64>(), rows.len() as u64);
        assert!(snap.iter().all(|g| g.peak_depth <= 8 + 1), "{snap:?}");

        // Gauged gather: rows and codes identical to the ungauged merge.
        let reference: Vec<OvcRow> =
            merge_threaded(parts.clone(), 2, 8, &Stats::new_shared()).collect();
        let merged: Vec<OvcRow> =
            merge_threaded_spec_gauged(parts, SortSpec::asc(2), 8, &stats, Some(&merge_gauges))
                .collect();
        assert_eq!(merged, reference, "gauges must not perturb rows or codes");
        let snap = merge_gauges.snapshot();
        assert_eq!(snap.iter().map(|g| g.rows).sum::<u64>(), rows.len() as u64);
        assert!(snap.iter().any(|g| g.peak_depth >= 1));
    }

    #[test]
    fn empty_input_produces_empty_partitions() {
        let input = CodedBatch::from_sorted_rows(vec![], 1);
        let parts = split_threaded(input, 3, partition::round_robin(3), 4).collect_all();
        assert!(parts.iter().all(|p| p.is_empty()));
        let stats = Stats::new_shared();
        assert_eq!(merge_threaded(vec![], 1, 4, &stats).count(), 0);
    }
}
