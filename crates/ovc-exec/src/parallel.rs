//! The order-preserving exchange with real threads (Section 4.10, scaled).
//!
//! [`crate::exchange`] implements the paper's splitting/merging shuffles as
//! single-threaded data-flow; this module runs the same code computations
//! across producer/consumer threads connected by **bounded channels**
//! (`std::sync::mpsc::sync_channel` — backpressure, no unbounded queues):
//!
//! * [`split_threaded`] — one-to-many: a producer thread routes rows by
//!   range/hash/round-robin and repairs codes with one
//!   [`OvcAccumulator`] per partition (the filter corollary); each output
//!   partition is a [`ChannelStream`] that any thread may consume.
//! * [`merge_threaded`] — many-to-one: one feeder thread per input pushes
//!   coded rows into its channel; the consuming thread runs the
//!   tree-of-losers merge over the channel streams, producing exact codes
//!   while the feeders are still running.
//! * [`repartition_threaded`] — many-to-many: N splitter threads and P
//!   merger threads all live at once, bounded channels throughout — the
//!   shape of F1 Query's exchange-parallel plans.
//!
//! Code exactness survives every hand-off because codes are a function of
//! the row sequence within a partition stream, and each thread sees its
//! partition in order.  Comparison counters from worker threads are kept
//! in per-thread [`Stats`] and merged into the caller's by snapshot
//! (`ovc_core::stats`), so accounting is identical to the serial exchange.

use std::rc::Rc;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::{self, JoinHandle};

use ovc_core::theorem::OvcAccumulator;
use ovc_core::{CodedBatch, OvcRow, OvcStream, Row, SortSpec, Stats, StatsSnapshot};
use ovc_sort::TreeOfLosers;

use crate::merge_join::{JoinType, MergeJoin};

/// Default bound of every exchange channel, in rows.  Small enough for
/// backpressure to keep memory flat, large enough to amortize wakeups.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

/// A coded stream arriving over a bounded channel from a producer thread.
///
/// `ChannelStream` is `Send`: it can be handed to whichever thread runs
/// the consuming operator.  Iteration blocks on the producer (that is the
/// backpressure) and ends when the producer drops its sender.
pub struct ChannelStream {
    rx: Receiver<OvcRow>,
    spec: SortSpec,
}

impl Iterator for ChannelStream {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.rx.recv().ok()
    }
}

impl OvcStream for ChannelStream {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// The output side of [`split_threaded`]: per-partition channel streams
/// plus the producer's join handle.
pub struct SplitThreads {
    partitions: Vec<ChannelStream>,
    producer: JoinHandle<()>,
}

impl SplitThreads {
    /// Take the partition streams (each `Send`, consumable by any thread)
    /// and the producer handle to [`join`](JoinHandle::join) afterwards.
    pub fn into_parts(self) -> (Vec<ChannelStream>, JoinHandle<()>) {
        (self.partitions, self.producer)
    }

    /// Drain every partition concurrently (one consumer thread each) and
    /// return the materialized batches.
    ///
    /// Draining partitions **sequentially** against a bounded-channel
    /// producer deadlocks — the producer blocks on a full buffer of a
    /// partition nobody is reading yet (the very deadlock §4.10 notes
    /// real systems design around) — so this helper always fans out.
    pub fn collect_all(self) -> Vec<CodedBatch> {
        let (parts, producer) = self.into_parts();
        let out = thread::scope(|scope| {
            let consumers: Vec<_> = parts
                .into_iter()
                .map(|p| scope.spawn(move || CodedBatch::from_stream(p)))
                .collect();
            consumers
                .into_iter()
                .map(|c| c.join().expect("split consumer panicked"))
                .collect()
        });
        producer.join().expect("split producer panicked");
        out
    }
}

/// One-to-many splitting shuffle on a real producer thread.
///
/// The producer owns one [`OvcAccumulator`] per partition: a row routed to
/// partition `p` is "kept" there and "absorbed" by every other partition's
/// accumulator, so each partition stream carries exact codes relative to
/// its own previous row — the same repair the serial
/// [`crate::exchange::split`] performs, now overlapped with consumption.
pub fn split_threaded<P>(input: CodedBatch, parts: usize, part: P, capacity: usize) -> SplitThreads
where
    P: FnMut(&Row) -> usize + Send + 'static,
{
    assert!(parts > 0, "split needs at least one partition");
    let spec = input.sort_spec().clone();
    let capacity = capacity.max(1);
    let (txs, rxs): (Vec<SyncSender<OvcRow>>, Vec<Receiver<OvcRow>>) =
        (0..parts).map(|_| sync_channel(capacity)).unzip();
    let producer = thread::spawn(move || {
        route_coded_rows(input, parts, part, |p, row| txs[p].send(row).is_ok());
    });
    SplitThreads {
        partitions: rxs
            .into_iter()
            .map(|rx| ChannelStream {
                rx,
                spec: spec.clone(),
            })
            .collect(),
        producer,
    }
}

/// The splitting side shared by [`split_threaded`] and
/// [`repartition_threaded`]: route every row of `input` with `part`,
/// repairing codes with one [`OvcAccumulator`] per partition (a row
/// "kept" by partition `p` is "absorbed" by every other partition's
/// accumulator — the filter corollary), and hand each coded row to
/// `send`.  A `false` return from `send` closes that partition (its
/// consumer is gone); the others keep flowing.
fn route_coded_rows<P>(
    input: CodedBatch,
    parts: usize,
    mut part: P,
    mut send: impl FnMut(usize, OvcRow) -> bool,
) where
    P: FnMut(&Row) -> usize,
{
    let mut accs = vec![OvcAccumulator::new(); parts];
    let mut open = vec![true; parts];
    for OvcRow { row, code } in input.into_stream() {
        let p = part(&row);
        assert!(p < parts, "partition function out of range");
        let out_code = accs[p].emit(code);
        for (i, acc) in accs.iter_mut().enumerate() {
            if i != p {
                acc.absorb(code);
            }
        }
        // The row moves straight into the send — no per-row clone.
        if open[p] && !send(p, OvcRow::new(row, out_code)) {
            open[p] = false;
        }
    }
}

/// Many-to-one merging shuffle: feeder threads push each input batch into
/// a bounded channel; the *calling* thread consumes the tree-of-losers
/// merge as a coded stream while the feeders run.
///
/// Dropping the stream early is safe: closed channels make the feeders
/// exit, and the feeder threads are joined on drop.
pub struct MergeThreaded {
    tree: Option<TreeOfLosers<ChannelStream>>,
    feeders: Vec<JoinHandle<()>>,
    spec: SortSpec,
}

impl Iterator for MergeThreaded {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.tree.as_mut().and_then(|t| t.next())
    }
}

impl OvcStream for MergeThreaded {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

impl Drop for MergeThreaded {
    fn drop(&mut self) {
        // Drop the tree (and its receivers) first so blocked feeders see
        // closed channels instead of deadlocking, then reap them.
        self.tree = None;
        for f in self.feeders.drain(..) {
            let _ = f.join();
        }
    }
}

/// Order-preserving many-to-one merge over worker-fed channels, with
/// the default ascending ordering on the leading `key_len` columns.
pub fn merge_threaded(
    inputs: Vec<CodedBatch>,
    key_len: usize,
    capacity: usize,
    stats: &Rc<Stats>,
) -> MergeThreaded {
    merge_threaded_spec(inputs, SortSpec::asc(key_len), capacity, stats)
}

/// Order-preserving many-to-one merge over worker-fed channels under an
/// arbitrary [`SortSpec`] (the inputs must all carry it).
pub fn merge_threaded_spec(
    inputs: Vec<CodedBatch>,
    spec: SortSpec,
    capacity: usize,
    stats: &Rc<Stats>,
) -> MergeThreaded {
    debug_assert!(inputs.iter().all(|b| b.sort_spec() == &spec));
    let capacity = capacity.max(1);
    let mut streams = Vec::with_capacity(inputs.len());
    let mut feeders = Vec::with_capacity(inputs.len());
    for batch in inputs {
        let (tx, rx) = sync_channel::<OvcRow>(capacity);
        feeders.push(thread::spawn(move || {
            for row in batch.into_stream() {
                if tx.send(row).is_err() {
                    break; // consumer gone: stop feeding
                }
            }
        }));
        streams.push(ChannelStream {
            rx,
            spec: spec.clone(),
        });
    }
    MergeThreaded {
        tree: Some(TreeOfLosers::new_spec(
            streams,
            spec.clone(),
            Rc::clone(stats),
        )),
        feeders,
        spec,
    }
}

/// Many-to-many shuffle with N splitter threads and `parts_out` merger
/// threads running concurrently, one bounded channel per merger.
///
/// Each splitter repairs codes per output partition (as in
/// [`split_threaded`]); each merger drains its inlet into per-splitter
/// buffers and runs a tree-of-losers over them with a per-thread
/// [`Stats`], merged into the caller's counters after the join.  Returns
/// the materialized output partitions.
pub fn repartition_threaded<P>(
    inputs: Vec<CodedBatch>,
    key_len: usize,
    parts_out: usize,
    mut make_part: impl FnMut() -> P,
    capacity: usize,
    stats: &Rc<Stats>,
) -> Vec<CodedBatch>
where
    P: FnMut(&Row) -> usize + Send,
{
    assert!(parts_out > 0, "repartition needs at least one partition");
    debug_assert!(inputs.iter().all(|b| b.key_len() == key_len));
    let capacity = capacity.max(1);
    let n_inputs = inputs.len();

    // One bounded channel per *merger*, shared by all splitters, rows
    // tagged with their splitter index.  A merger blocks on its single
    // inlet and is therefore always draining, which is the deadlock
    // avoidance §4.10 alludes to: with one bounded channel per
    // splitter×merger edge, a merge that waits on one splitter's row
    // while another splitter's buffer sits full forms a
    // producer/consumer wait cycle.  mpsc guarantees per-sender FIFO, so
    // each splitter's partition order (and with it code exactness)
    // survives the shared channel.
    let mut merger_rxs = Vec::with_capacity(parts_out);
    let mut txs_template: Vec<SyncSender<(usize, OvcRow)>> = Vec::with_capacity(parts_out);
    for _ in 0..parts_out {
        let (tx, rx) = sync_channel::<(usize, OvcRow)>(capacity);
        txs_template.push(tx);
        merger_rxs.push(rx);
    }

    let merged: Vec<(Vec<OvcRow>, StatsSnapshot)> = thread::scope(|scope| {
        // Splitters: one thread per input, the same routing core as
        // split_threaded, rows tagged with their splitter index.
        for (idx, batch) in inputs.into_iter().enumerate() {
            let txs = txs_template.clone();
            let part = make_part();
            scope.spawn(move || {
                route_coded_rows(batch, parts_out, part, |p, row| {
                    txs[p].send((idx, row)).is_ok()
                });
            });
        }
        // The template senders must drop before the mergers can see
        // end-of-input (a merger's channel closes when every splitter
        // has dropped its clone).
        drop(txs_template);

        // Mergers: one thread per output partition, per-thread Stats.
        // Each blocks on its inlet, demultiplexes rows back into
        // per-splitter buffers, then runs the coded tree-of-losers merge.
        let mergers: Vec<_> = merger_rxs
            .into_iter()
            .map(|rx| {
                scope.spawn(move || {
                    let mut bufs: Vec<Vec<OvcRow>> = vec![Vec::new(); n_inputs];
                    while let Ok((idx, row)) = rx.recv() {
                        bufs[idx].push(row);
                    }
                    let local = Stats::new_shared();
                    let streams: Vec<_> = bufs
                        .into_iter()
                        .map(|rows| CodedBatch::from_coded(rows, key_len).into_stream())
                        .collect();
                    let rows: Vec<OvcRow> =
                        TreeOfLosers::new(streams, key_len, Rc::clone(&local)).collect();
                    (rows, local.snapshot())
                })
            })
            .collect();
        mergers
            .into_iter()
            .map(|m| m.join().expect("exchange merger panicked"))
            .collect()
    });

    merged
        .into_iter()
        .map(|(rows, snapshot)| {
            stats.absorb(&snapshot);
            CodedBatch::from_coded(rows, key_len)
        })
        .collect()
}

/// Partition-parallel merge join: one worker thread per partition pair,
/// each running the ordinary [`MergeJoin`] over its co-partitioned
/// inputs with a per-thread [`Stats`] (merged into the caller's by
/// snapshot, as everywhere in this module).
///
/// Correctness rests on co-partitioning: rows with equal join keys must
/// sit in the same partition index on both sides (hash the *whole* join
/// key — [`crate::exchange::partition::by_key_hash`]), so every join
/// group is local to one worker, and merging the sorted per-partition
/// outputs ([`merge_threaded`]) reproduces the serial join's row
/// sequence — and therefore, codes being a function of the row sequence,
/// its exact codes — byte for byte.
pub fn merge_join_partitions(
    left: Vec<CodedBatch>,
    right: Vec<CodedBatch>,
    join_len: usize,
    join_type: JoinType,
    left_width: usize,
    right_width: usize,
    stats: &Rc<Stats>,
) -> Vec<CodedBatch> {
    assert_eq!(
        left.len(),
        right.len(),
        "partitioned merge join requires co-partitioned inputs"
    );
    let joined: Vec<(Vec<OvcRow>, SortSpec, StatsSnapshot)> = thread::scope(|scope| {
        let workers: Vec<_> = left
            .into_iter()
            .zip(right)
            .map(|(l, r)| {
                scope.spawn(move || {
                    let local = Stats::new_shared();
                    let join = MergeJoin::new(
                        l.into_stream(),
                        r.into_stream(),
                        join_len,
                        join_type,
                        left_width,
                        right_width,
                        Rc::clone(&local),
                    );
                    let spec = join.sort_spec();
                    let rows: Vec<OvcRow> = join.collect();
                    (rows, spec, local.snapshot())
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("partitioned join worker panicked"))
            .collect()
    });
    joined
        .into_iter()
        .map(|(rows, spec, snapshot)| {
            stats.absorb(&snapshot);
            CodedBatch::from_coded_spec(rows, spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::{self, partition};
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::{Ovc, VecStream};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn batch(n: usize, seed: u64) -> (CodedBatch, Vec<Row>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..30u64), rng.gen_range(0..30u64)]))
            .collect();
        rows.sort();
        (CodedBatch::from_sorted_rows(rows.clone(), 2), rows)
    }

    fn check_exact(b: &CodedBatch) {
        let pairs: Vec<(Row, Ovc)> = b
            .to_ovc_rows()
            .iter()
            .map(|r| (r.row.clone(), r.code))
            .collect();
        assert_codes_exact(&pairs, b.key_len());
    }

    #[test]
    fn threaded_split_matches_serial_split() {
        let (input, rows) = batch(400, 1);
        let serial = exchange::split(
            VecStream::from_sorted_rows(rows, 2),
            4,
            partition::by_hash(0, 4),
        );
        let threaded = split_threaded(input, 4, partition::by_hash(0, 4), 16).collect_all();
        assert_eq!(threaded.len(), 4);
        for (t, s) in threaded.into_iter().zip(serial) {
            check_exact(&t);
            assert_eq!(t.into_rows(), s.collect::<Vec<OvcRow>>());
        }
    }

    #[test]
    fn threaded_split_partitions_consumed_on_worker_threads() {
        let (input, rows) = batch(300, 2);
        let (parts, producer) = split_threaded(input, 3, partition::by_hash(1, 3), 8).into_parts();
        let consumers: Vec<_> = parts
            .into_iter()
            .map(|p| thread::spawn(move || CodedBatch::from_stream(p)))
            .collect();
        let mut total = 0;
        for c in consumers {
            let b = c.join().unwrap();
            check_exact(&b);
            total += b.len();
        }
        producer.join().unwrap();
        assert_eq!(total, rows.len());
    }

    #[test]
    fn threaded_merge_round_trips() {
        let (input, rows) = batch(500, 3);
        let stats = Stats::new_shared();
        let parts = split_threaded(input, 8, partition::by_hash(0, 8), DEFAULT_CHANNEL_CAPACITY)
            .collect_all();
        let merged = merge_threaded(parts, 2, DEFAULT_CHANNEL_CAPACITY, &stats);
        let pairs = collect_pairs(merged);
        assert_codes_exact(&pairs, 2);
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, rows, "threaded shuffle round trip");
    }

    #[test]
    fn threaded_merge_dropped_early_joins_cleanly() {
        let (input, _) = batch(2000, 4);
        let stats = Stats::new_shared();
        let parts = split_threaded(input, 4, partition::round_robin(4), 8).collect_all();
        let mut merged = merge_threaded(parts, 2, 2, &stats);
        let _ = merged.next();
        drop(merged); // feeders must exit via closed channels, not hang
    }

    #[test]
    fn repartition_matches_serial_many_to_many() {
        let (a, rows_a) = batch(300, 5);
        let (b, rows_b) = batch(300, 6);
        let stats = Stats::new_shared();
        let outs = repartition_threaded(vec![a, b], 2, 4, || partition::by_hash(0, 4), 16, &stats);
        let serial_stats = Stats::new_shared();
        let serial = exchange::many_to_many(
            vec![
                VecStream::from_sorted_rows(rows_a.clone(), 2),
                VecStream::from_sorted_rows(rows_b.clone(), 2),
            ],
            4,
            || partition::by_hash(0, 4),
            &serial_stats,
        );
        let mut total = 0;
        for (t, s) in outs.into_iter().zip(serial) {
            check_exact(&t);
            total += t.len();
            assert_eq!(t.into_rows(), s.collect::<Vec<OvcRow>>());
        }
        assert_eq!(total, rows_a.len() + rows_b.len());
        // Per-thread merger counters landed in the caller's stats, and the
        // totals agree with the serial exchange (dop-invariant accounting).
        assert_eq!(stats.ovc_cmps(), serial_stats.ovc_cmps());
        assert_eq!(stats.col_value_cmps(), serial_stats.col_value_cmps());
    }

    #[test]
    fn skewed_split_one_empty_one_hot() {
        let (input, rows) = batch(200, 7);
        // by_range routes values below the boundary to partition 0, so a
        // boundary above the whole domain leaves partition 1 empty and
        // partition 0 hot.
        let parts = split_threaded(input, 2, partition::by_range(vec![1000]), 4).collect_all();
        assert_eq!(parts[1].len(), 0, "nothing reaches the upper range");
        assert_eq!(parts[0].len(), rows.len());
        check_exact(&parts[0]);
    }

    #[test]
    fn partitioned_merge_join_matches_serial_join() {
        use ovc_core::derive::assert_codes_exact;
        let mut rng = StdRng::seed_from_u64(91);
        let mk = |seed: u64| -> Vec<Row> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rows: Vec<Row> = (0..300)
                .map(|_| Row::new(vec![rng.gen_range(0..20u64), rng.gen_range(0..20u64)]))
                .collect();
            rows.sort();
            rows
        };
        let _ = rng.gen_range(0..2u64);
        for join_type in [JoinType::Inner, JoinType::LeftOuter, JoinType::LeftSemi] {
            let (l, r) = (mk(1), mk(2));
            // Serial reference.
            let serial_stats = Stats::new_shared();
            let serial: Vec<OvcRow> = MergeJoin::new(
                VecStream::from_sorted_rows(l.clone(), 2),
                VecStream::from_sorted_rows(r.clone(), 2),
                1,
                join_type,
                2,
                2,
                Rc::clone(&serial_stats),
            )
            .collect();

            // Partition both sides on the whole join key, join per
            // partition on worker threads, gather with the merging
            // exchange.
            let parts = 3;
            let stats = Stats::new_shared();
            let lp = split_threaded(
                CodedBatch::from_sorted_rows(l, 2),
                parts,
                partition::by_key_hash(1, parts),
                16,
            )
            .collect_all();
            let rp = split_threaded(
                CodedBatch::from_sorted_rows(r, 2),
                parts,
                partition::by_key_hash(1, parts),
                16,
            )
            .collect_all();
            let joined = merge_join_partitions(lp, rp, 1, join_type, 2, 2, &stats);
            let out_key = joined.first().map(|b| b.key_len()).unwrap_or(1);
            let gathered: Vec<OvcRow> = merge_threaded(joined, out_key, 16, &stats).collect();
            assert_eq!(gathered, serial, "{join_type:?}: rows and codes");
            let pairs: Vec<(Row, Ovc)> = gathered.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact(&pairs, out_key);
        }
    }

    #[test]
    fn empty_input_produces_empty_partitions() {
        let input = CodedBatch::from_sorted_rows(vec![], 1);
        let parts = split_threaded(input, 3, partition::round_robin(3), 4).collect_all();
        assert!(parts.iter().all(|p| p.is_empty()));
        let stats = Stats::new_shared();
        assert_eq!(merge_threaded(vec![], 1, 4, &stats).count(), 0);
    }
}
