//! Morsel-style batch operators over [`FlatRows`] batches.
//!
//! These are the batch-at-a-time counterparts of the row operators in
//! [`crate::filter`], [`crate::project`], [`crate::dedup`] and the
//! splitting side of [`crate::exchange`].  Each one consumes and produces
//! [`BatchStream`] batches whose codes stay exact *across batch seams*
//! (DESIGN.md §12): batch `k+1`'s first code is relative to batch `k`'s
//! last row, so no repair happens at a seam — only at a standalone lift
//! ([`ovc_core::batch::repair_head`]).
//!
//! Counting discipline mirrors the row operators exactly, which is what
//! the differential harness (`tests/batch_pipeline_properties.rs`)
//! asserts: [`BatchFilter`] accounts one code operation per *input* row,
//! projection/clamping/dedup account nothing, and [`route_batches`]'s
//! per-partition accumulators are uncounted — identical to
//! `route_coded_rows` in [`crate::parallel`].

use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

use ovc_core::ctx::{self, ExecError};
use ovc_core::fault;
use ovc_core::theorem::{clamp_to_prefix, OvcAccumulator};
use ovc_core::{BatchStream, ChannelGauge, FlatRows, Row, SortSpec, Stats, Value};

/// What flows over a batched exchange channel: a flat batch, or — as the
/// producer's last word before it exits — a **poison frame** carrying the
/// typed error that killed it (the batched twin of the row exchange's
/// poison protocol, DESIGN.md §14).  A channel that closes without
/// poison is a clean end-of-stream.
pub enum BatchFrame {
    /// A flat batch of coded rows.
    Batch(FlatRows),
    /// The producer died: re-raise this typed error on the consumer.
    Poison(ExecError),
}

/// The receiving end of a batched exchange channel: a [`BatchStream`]
/// over a bounded (or unbounded) channel of [`BatchFrame`]s, the batched
/// counterpart of [`crate::parallel::ChannelStream`].
///
/// With a gauge attached, every `recv` is timed and the *rows* (not just
/// messages) crossing the channel are counted —
/// [`ChannelGauge::note_recv_rows`].  A poison frame re-raises the
/// producer's typed error on the consuming thread ([`ctx::propagate`]).
pub struct BatchChannelStream {
    rx: Receiver<BatchFrame>,
    spec: SortSpec,
    gauge: Option<Arc<ChannelGauge>>,
}

impl BatchChannelStream {
    /// Wrap a channel receiver as a coded batch stream with the given
    /// ordering contract.
    pub fn new(rx: Receiver<BatchFrame>, spec: SortSpec, gauge: Option<Arc<ChannelGauge>>) -> Self {
        BatchChannelStream { rx, spec, gauge }
    }
}

impl BatchStream for BatchChannelStream {
    fn next_batch(&mut self) -> Option<FlatRows> {
        fault::maybe_slow_consumer();
        let frame = match &self.gauge {
            None => self.rx.recv().ok(),
            Some(g) => {
                let t0 = Instant::now();
                let got = self.rx.recv().ok();
                g.note_recv_rows(
                    t0.elapsed(),
                    match &got {
                        Some(BatchFrame::Batch(b)) => Some(b.len() as u64),
                        _ => None,
                    },
                );
                got
            }
        };
        match frame {
            Some(BatchFrame::Batch(b)) => Some(b),
            Some(BatchFrame::Poison(err)) => ctx::propagate(err),
            None => None,
        }
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// The splitting side of a batched exchange: route every row of `input`
/// to a partition chosen by `part`, repairing codes with one
/// [`OvcAccumulator`] per partition (a row "kept" by partition `p` is
/// "absorbed" by every other partition's accumulator — the filter
/// corollary), buffering up to `batch_size` rows per partition before
/// handing the batch to `send`.
///
/// This is `route_coded_rows` of [`crate::parallel`] re-expressed over
/// flat batches: same accumulators, same codes, but one channel operation
/// per *batch* instead of per row.  A `false` return from `send` closes
/// that partition (its consumer is gone); the others keep flowing.  Any
/// partial batches are flushed when the input is exhausted.
pub fn route_batches<B, P>(
    mut input: B,
    parts: usize,
    mut part: P,
    batch_size: usize,
    mut send: impl FnMut(usize, FlatRows) -> bool,
) where
    B: BatchStream,
    P: FnMut(&[Value]) -> usize,
{
    assert!(parts > 0, "split needs at least one partition");
    assert!(batch_size > 0, "batch size must be positive");
    let mut accs = vec![OvcAccumulator::new(); parts];
    let mut open = vec![true; parts];
    let mut pending: Vec<Option<FlatRows>> = (0..parts).map(|_| None).collect();
    while let Some(batch) = input.next_batch() {
        let width = batch.width();
        for i in 0..batch.len() {
            let row = batch.row(i);
            let code = batch.code(i);
            let p = part(row);
            assert!(p < parts, "partition function out of range");
            let out_code = accs[p].emit(code);
            for (j, acc) in accs.iter_mut().enumerate() {
                if j != p {
                    acc.absorb(code);
                }
            }
            if open[p] {
                let buf =
                    pending[p].get_or_insert_with(|| FlatRows::with_capacity(width, batch_size));
                buf.push(row, out_code);
                if buf.len() >= batch_size {
                    let full = pending[p].take().expect("buffer just filled");
                    if !send(p, full) {
                        open[p] = false;
                    }
                }
            }
        }
    }
    for (p, buf) in pending.into_iter().enumerate() {
        if let Some(buf) = buf {
            if open[p] && !buf.is_empty() {
                let _ = send(p, buf);
            }
        }
    }
}

/// Batched predicate filter — [`crate::filter::Filter`] over flat batches.
///
/// Accounting is identical to the row operator: one code operation per
/// *input* row (the accumulator `max`), no column comparisons.  Output
/// batches may be shorter than input batches (never empty).
pub struct BatchFilter<B, P> {
    input: B,
    predicate: P,
    acc: OvcAccumulator,
    stats: Arc<Stats>,
}

impl<B: BatchStream, P: FnMut(&[Value]) -> bool> BatchFilter<B, P> {
    /// Filter `input`, keeping rows for which `predicate` returns true.
    pub fn new(input: B, predicate: P, stats: Arc<Stats>) -> Self {
        BatchFilter {
            input,
            predicate,
            acc: OvcAccumulator::new(),
            stats,
        }
    }
}

impl<B: BatchStream, P: FnMut(&[Value]) -> bool> BatchStream for BatchFilter<B, P> {
    fn next_batch(&mut self) -> Option<FlatRows> {
        loop {
            let batch = self.input.next_batch()?;
            let mut out = FlatRows::with_capacity(batch.width(), batch.len());
            for i in 0..batch.len() {
                let code = batch.code(i);
                self.stats.count_ovc_cmp();
                let row = batch.row(i);
                if (self.predicate)(row) {
                    // Filter theorem: max over the dropped chain plus this row.
                    out.push(row, self.acc.emit(code));
                } else {
                    self.acc.absorb(code);
                }
            }
            if !out.is_empty() {
                return Some(out);
            }
        }
    }
    fn sort_spec(&self) -> SortSpec {
        self.input.sort_spec()
    }
}

/// Batched projection preserving the first `surviving_key` sort-key
/// columns — [`crate::project::Project`] over flat batches.  Codes are
/// clamped to the surviving prefix; nothing is counted (§4.2: projection
/// compares no columns).
pub struct BatchProject<B, F> {
    input: B,
    map: F,
    in_key_len: usize,
    surviving_key: usize,
    spec: SortSpec,
}

impl<B: BatchStream, F: FnMut(&[Value]) -> Row> BatchProject<B, F> {
    /// Build a projection.  `map` receives each input row's columns and
    /// produces the output row, whose first `surviving_key` columns must
    /// equal the input's (debug-asserted).  Panics if `surviving_key`
    /// exceeds the input key length.
    pub fn new(input: B, surviving_key: usize, map: F) -> Self {
        let in_key_len = input.key_len();
        assert!(surviving_key <= in_key_len);
        let spec = input.sort_spec().prefix(surviving_key);
        BatchProject {
            input,
            map,
            in_key_len,
            surviving_key,
            spec,
        }
    }
}

impl<B: BatchStream, F: FnMut(&[Value]) -> Row> BatchStream for BatchProject<B, F> {
    fn next_batch(&mut self) -> Option<FlatRows> {
        let batch = self.input.next_batch()?;
        let mut out: Option<FlatRows> = None;
        for i in 0..batch.len() {
            let row = batch.row(i);
            let mapped = (self.map)(row);
            debug_assert_eq!(
                mapped.key(self.surviving_key),
                &row[..self.surviving_key],
                "projection must preserve the surviving key prefix"
            );
            let code = clamp_to_prefix(batch.code(i), self.in_key_len, self.surviving_key);
            out.get_or_insert_with(|| FlatRows::with_capacity(mapped.width(), batch.len()))
                .push(mapped.cols(), code);
        }
        // Input batches are never empty, so `out` is always populated.
        out
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Batched sort-key clamp — [`crate::project::ClampKey`] over flat
/// batches: rows untouched, codes clamped in place to the shorter key.
pub struct BatchClampKey<B> {
    input: B,
    in_key_len: usize,
    new_key_len: usize,
    spec: SortSpec,
}

impl<B: BatchStream> BatchClampKey<B> {
    /// Wrap `input` with a shorter sort key.
    pub fn new(input: B, new_key_len: usize) -> Self {
        let in_key_len = input.key_len();
        assert!(new_key_len <= in_key_len);
        let spec = input.sort_spec().prefix(new_key_len);
        BatchClampKey {
            input,
            in_key_len,
            new_key_len,
            spec,
        }
    }
}

impl<B: BatchStream> BatchStream for BatchClampKey<B> {
    fn next_batch(&mut self) -> Option<FlatRows> {
        let mut batch = self.input.next_batch()?;
        for i in 0..batch.len() {
            batch.set_code(
                i,
                clamp_to_prefix(batch.code(i), self.in_key_len, self.new_key_len),
            );
        }
        Some(batch)
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Batched duplicate removal by code inspection — [`crate::dedup::Dedup`]
/// over flat batches.  A duplicate-coded first row of a batch is relative
/// to the previous batch's last row, so per-batch filtering is exact
/// across seams: survivors keep their input codes (§4.4).
pub struct BatchDedup<B> {
    input: B,
}

impl<B: BatchStream> BatchDedup<B> {
    /// Remove rows whose key equals the previous row's key.
    pub fn new(input: B) -> Self {
        BatchDedup { input }
    }
}

impl<B: BatchStream> BatchStream for BatchDedup<B> {
    fn next_batch(&mut self) -> Option<FlatRows> {
        loop {
            let batch = self.input.next_batch()?;
            if batch.codes().iter().all(|c| !c.is_duplicate()) {
                return Some(batch); // duplicate-free: no copy needed
            }
            let kept = batch.retain_indices(|_, c| !c.is_duplicate());
            if !kept.is_empty() {
                return Some(kept);
            }
        }
    }
    fn sort_spec(&self) -> SortSpec {
        self.input.sort_spec()
    }
}

/// Batched top-k: pass batches through until `k` rows have flowed, then
/// stop pulling — truncating the final batch so exactly `k` rows emerge.
/// Codes of a stream prefix are exact as-is.
pub struct BatchTake<B> {
    input: B,
    left: usize,
}

impl<B: BatchStream> BatchTake<B> {
    /// Keep the first `k` rows of `input`.
    pub fn new(input: B, k: usize) -> Self {
        BatchTake { input, left: k }
    }
}

impl<B: BatchStream> BatchStream for BatchTake<B> {
    fn next_batch(&mut self) -> Option<FlatRows> {
        if self.left == 0 {
            return None;
        }
        let mut batch = self.input.next_batch()?;
        if batch.len() >= self.left {
            batch.truncate(self.left);
            self.left = 0;
        } else {
            self.left -= batch.len();
        }
        Some(batch)
    }
    fn sort_spec(&self) -> SortSpec {
        self.input.sort_spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dedup::Dedup;
    use crate::exchange::{partition, split};
    use crate::filter::Filter;
    use crate::project::{ClampKey, Project};
    use ovc_core::batch::collect_batch_pairs;
    use ovc_core::derive::assert_codes_exact_spec;
    use ovc_core::stream::collect_pairs;
    use ovc_core::{Batcher, Ovc, VecStream};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_rows(n: usize, seed: u64, cols: usize, domain: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..n)
            .map(|_| Row::new((0..cols).map(|_| rng.gen_range(0..domain)).collect()))
            .collect();
        rows.sort();
        rows
    }

    fn batched(rows: Vec<Row>, key_len: usize, batch_size: usize) -> Batcher<VecStream> {
        Batcher::new(VecStream::from_sorted_rows(rows, key_len), batch_size)
    }

    #[test]
    fn batch_filter_matches_row_filter_rows_codes_and_stats() {
        for batch_size in [1, 3, 7, 64] {
            let rows = sorted_rows(300, 11, 3, 5);
            let row_stats = Stats::new_shared();
            let row_pairs = collect_pairs(Filter::new(
                VecStream::from_sorted_rows(rows.clone(), 3),
                |r| r.cols()[1] % 2 == 0,
                Arc::clone(&row_stats),
            ));
            let batch_stats = Stats::new_shared();
            let batch_pairs = collect_batch_pairs(BatchFilter::new(
                batched(rows, 3, batch_size),
                |r: &[Value]| r[1].is_multiple_of(2),
                Arc::clone(&batch_stats),
            ));
            assert_eq!(batch_pairs, row_pairs, "batch={batch_size}");
            assert_eq!(
                batch_stats.snapshot(),
                row_stats.snapshot(),
                "batch={batch_size}"
            );
        }
    }

    #[test]
    fn batch_project_matches_row_project() {
        for batch_size in [1, 5, 300] {
            let rows = sorted_rows(300, 12, 4, 6);
            let row_pairs = collect_pairs(Project::new(
                VecStream::from_sorted_rows(rows.clone(), 4),
                2,
                |r| r.project(&[0, 1, 3]),
            ));
            let spec = SortSpec::asc(2);
            let batch_op = BatchProject::new(batched(rows, 4, batch_size), 2, |r: &[Value]| {
                Row::from_slice(r).project(&[0, 1, 3])
            });
            assert_eq!(batch_op.sort_spec(), spec);
            let batch_pairs = collect_batch_pairs(batch_op);
            assert_eq!(batch_pairs, row_pairs, "batch={batch_size}");
            assert_codes_exact_spec(&batch_pairs, &spec);
        }
    }

    #[test]
    fn batch_clamp_matches_row_clamp() {
        for batch_size in [1, 4, 17] {
            let rows = sorted_rows(250, 13, 3, 4);
            let row_pairs = collect_pairs(ClampKey::new(
                VecStream::from_sorted_rows(rows.clone(), 3),
                1,
            ));
            let batch_pairs =
                collect_batch_pairs(BatchClampKey::new(batched(rows, 3, batch_size), 1));
            assert_eq!(batch_pairs, row_pairs, "batch={batch_size}");
        }
    }

    #[test]
    fn batch_dedup_matches_row_dedup_on_duplicate_heavy_input() {
        for batch_size in [1, 2, 9, 1024] {
            let rows = sorted_rows(400, 14, 2, 3); // tiny domain: mostly duplicates
            let row_pairs = collect_pairs(Dedup::new(VecStream::from_sorted_rows(rows.clone(), 2)));
            let batch_pairs = collect_batch_pairs(BatchDedup::new(batched(rows, 2, batch_size)));
            assert_eq!(batch_pairs, row_pairs, "batch={batch_size}");
            assert_codes_exact_spec(&batch_pairs, &SortSpec::asc(2));
        }
    }

    #[test]
    fn batch_take_truncates_to_exactly_k() {
        let rows = sorted_rows(100, 15, 2, 10);
        let all = collect_pairs(VecStream::from_sorted_rows(rows.clone(), 2));
        for (k, batch_size) in [
            (0usize, 7usize),
            (1, 7),
            (23, 7),
            (100, 7),
            (100, 1),
            (7, 100),
        ] {
            let got = collect_batch_pairs(BatchTake::new(batched(rows.clone(), 2, batch_size), k));
            assert_eq!(got, all[..k.min(all.len())], "k={k} batch={batch_size}");
        }
    }

    #[test]
    fn route_batches_matches_serial_split_codes_and_hash() {
        let parts = 4;
        for batch_size in [1, 3, 64] {
            let rows = sorted_rows(500, 16, 3, 7);
            // Serial reference: the §4.10 one-to-many split on boxed rows.
            let expect: Vec<Vec<(Row, Ovc)>> = split(
                VecStream::from_sorted_rows(rows.clone(), 3),
                parts,
                partition::by_cols_hash(vec![0, 2], parts),
            )
            .into_iter()
            .map(collect_pairs)
            .collect();
            // Batched routing with the slice-based twin of the same hash.
            let mut got: Vec<Vec<(Row, Ovc)>> = vec![Vec::new(); parts];
            let mut max_seen = 0usize;
            route_batches(
                batched(rows, 3, batch_size),
                parts,
                partition::by_cols_hash_slice(vec![0, 2], parts),
                batch_size,
                |p, batch| {
                    assert!(!batch.is_empty());
                    max_seen = max_seen.max(batch.len());
                    got[p].extend(batch.iter().map(|(r, c)| (Row::from_slice(r), c)));
                    true
                },
            );
            assert!(max_seen <= batch_size);
            assert_eq!(got, expect, "batch={batch_size}");
            for pairs in &got {
                assert_codes_exact_spec(pairs, &SortSpec::asc(3));
            }
        }
    }

    #[test]
    fn route_batches_closed_partition_keeps_others_exact() {
        let parts = 3;
        let rows = sorted_rows(200, 17, 2, 5);
        let mut got: Vec<Vec<(Row, Ovc)>> = vec![Vec::new(); parts];
        route_batches(
            batched(rows, 2, 4),
            parts,
            partition::by_cols_hash_slice(vec![0, 1], parts),
            4,
            |p, batch| {
                if p == 1 {
                    return false; // partition 1's consumer is gone
                }
                got[p].extend(batch.iter().map(|(r, c)| (Row::from_slice(r), c)));
                true
            },
        );
        assert!(got[1].is_empty());
        for p in [0, 2] {
            assert!(!got[p].is_empty());
            assert_codes_exact_spec(&got[p], &SortSpec::asc(2));
        }
    }

    #[test]
    fn batch_channel_stream_yields_batches_in_order() {
        let (tx, rx) = std::sync::mpsc::channel();
        let rows = sorted_rows(50, 18, 2, 9);
        let expect = collect_pairs(VecStream::from_sorted_rows(rows.clone(), 2));
        let mut batcher = batched(rows, 2, 8);
        while let Some(b) = batcher.next_batch() {
            tx.send(BatchFrame::Batch(b)).unwrap();
        }
        drop(tx);
        let stream = BatchChannelStream::new(rx, SortSpec::asc(2), None);
        assert_eq!(stream.sort_spec(), SortSpec::asc(2));
        assert_eq!(collect_batch_pairs(stream), expect);
    }

    #[test]
    fn batch_channel_poison_frame_surfaces_typed_error() {
        let (tx, rx) = std::sync::mpsc::channel();
        let rows = sorted_rows(20, 20, 2, 9);
        let mut batcher = batched(rows, 2, 8);
        let first = batcher.next_batch().unwrap();
        tx.send(BatchFrame::Batch(first)).unwrap();
        tx.send(BatchFrame::Poison(ExecError::WorkerPanic {
            detail: "producer died".into(),
        }))
        .unwrap();
        drop(tx);
        let mut stream = BatchChannelStream::new(rx, SortSpec::asc(2), None);
        assert!(stream.next_batch().is_some(), "clean batch before poison");
        match ctx::contain(|| stream.next_batch()) {
            Err(err) => assert_eq!(err.reason(), "worker_panic"),
            Ok(_) => panic!("poison frame must re-raise the producer's error"),
        }
    }

    #[test]
    fn filter_over_desc_spec_stays_exact() {
        let mut rows = sorted_rows(200, 19, 2, 6);
        rows.reverse();
        let spec = SortSpec::desc(2);
        let input = Batcher::new(VecStream::from_sorted_rows_spec(rows, spec.clone()), 5);
        let op = BatchFilter::new(input, |r: &[Value]| r[0] != 3, Stats::new_shared());
        assert_eq!(op.sort_spec(), spec);
        let pairs = collect_batch_pairs(op);
        assert_codes_exact_spec(&pairs, &spec);
    }
}
