//! Analytic (window) functions over sorted coded streams.
//!
//! Section 5 lists "analytic functions" among the sort-based operators
//! that "can leverage offset-value codes in their inputs" in F1 Query.
//! With codes, partition boundaries (`offset < partition key length`) and
//! peer-group boundaries (`offset < order key length`) are single integer
//! tests — the same mechanism as grouping and segmentation.
//!
//! The operator appends one column per window function to each row.  It is
//! order-preserving: rows pass through unchanged and in order, so input
//! codes are also the output codes (a projection that keeps the whole sort
//! key, Section 4.2).

use std::collections::VecDeque;

use ovc_core::{OvcRow, OvcStream, Row, Value};

/// Supported window functions.  Frames are "rows between unbounded
/// preceding and current row" for the running variants, and the whole
/// partition for `PartitionCount`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowFunc {
    /// 1, 2, 3, … within the partition in stream order.
    RowNumber,
    /// Rank with gaps: peers (equal order keys) share a rank.
    Rank,
    /// Rank without gaps.
    DenseRank,
    /// Running sum of a column from partition start to the current row.
    RunningSum(usize),
    /// Running minimum of a column.
    RunningMin(usize),
    /// Running maximum of a column.
    RunningMax(usize),
    /// Total rows in the partition (requires buffering the partition).
    PartitionCount,
    /// The column value of the previous row in the partition (`LAG(col, 1)`),
    /// [`crate::merge_join::NULL_VALUE`] for the first row.
    Lag(usize),
}

impl WindowFunc {
    /// Does this function need the whole partition before emitting?
    fn blocking(self) -> bool {
        matches!(self, WindowFunc::PartitionCount)
    }
}

/// Window operator: partition by the first `partition_len` sort-key
/// columns, order within partitions by the next `order_len` columns
/// (both prefixes of the input sort key, so both kinds of boundaries come
/// from code inspection).
pub struct Window<S: OvcStream> {
    input: S,
    in_key_len: usize,
    partition_len: usize,
    order_len: usize,
    funcs: Vec<WindowFunc>,
    /// Buffered current partition (only when a blocking function runs).
    queue: VecDeque<OvcRow>,
    /// Lookahead row that begins the next partition.
    carry: Option<OvcRow>,
    /// Running state per function, reset at partition boundaries.
    state: PartitionState,
    buffering: bool,
    done: bool,
    /// Peer flag of the row currently being annotated.
    is_peer_cached: bool,
    /// Size of the buffered partition (blocking path).
    partition_count: u64,
}

#[derive(Default)]
struct PartitionState {
    row_number: u64,
    rank: u64,
    dense_rank: u64,
    sums: Vec<Value>,
    mins: Vec<Value>,
    maxs: Vec<Value>,
    lags: Vec<Value>,
}

impl<S: OvcStream> Window<S> {
    /// Build the operator.  `partition_len + order_len` must not exceed
    /// the input key length.
    pub fn new(input: S, partition_len: usize, order_len: usize, funcs: Vec<WindowFunc>) -> Self {
        let in_key_len = input.key_len();
        assert!(partition_len + order_len <= in_key_len);
        let buffering = funcs.iter().any(|f| f.blocking());
        Window {
            input,
            in_key_len,
            partition_len,
            order_len,
            funcs,
            queue: VecDeque::new(),
            carry: None,
            state: PartitionState::default(),
            buffering,
            done: false,
            is_peer_cached: false,
            partition_count: 0,
        }
    }

    /// Is this row the start of a new partition?  Code inspection only.
    fn new_partition(&self, r: &OvcRow) -> bool {
        !(r.code.is_valid() && r.code.offset(self.in_key_len) >= self.partition_len)
    }

    /// Is this row a peer of its predecessor (equal partition + order
    /// keys)?  Code inspection only.
    fn is_peer(&self, r: &OvcRow) -> bool {
        r.code.is_valid() && r.code.offset(self.in_key_len) >= self.partition_len + self.order_len
    }

    fn annotate(&mut self, r: &OvcRow, partition_count: Option<u64>) -> Row {
        let st = &mut self.state;
        let first = st.row_number == 0;
        st.row_number += 1;
        let peer = !first && self.is_peer_cached;
        if first {
            st.rank = 1;
            st.dense_rank = 1;
        } else if !peer {
            st.rank = st.row_number;
            st.dense_rank += 1;
        }
        let mut cols = r.row.cols().to_vec();
        let mut sum_i = 0usize;
        let mut min_i = 0usize;
        let mut max_i = 0usize;
        let mut lag_i = 0usize;
        for f in &self.funcs {
            match *f {
                WindowFunc::RowNumber => cols.push(st.row_number),
                WindowFunc::Rank => cols.push(st.rank),
                WindowFunc::DenseRank => cols.push(st.dense_rank),
                WindowFunc::RunningSum(c) => {
                    let v = r.row.cols()[c];
                    if first {
                        st.sums.push(v);
                    } else {
                        st.sums[sum_i] = st.sums[sum_i].wrapping_add(v);
                    }
                    cols.push(st.sums[sum_i]);
                    sum_i += 1;
                }
                WindowFunc::RunningMin(c) => {
                    let v = r.row.cols()[c];
                    if first {
                        st.mins.push(v);
                    } else {
                        st.mins[min_i] = st.mins[min_i].min(v);
                    }
                    cols.push(st.mins[min_i]);
                    min_i += 1;
                }
                WindowFunc::RunningMax(c) => {
                    let v = r.row.cols()[c];
                    if first {
                        st.maxs.push(v);
                    } else {
                        st.maxs[max_i] = st.maxs[max_i].max(v);
                    }
                    cols.push(st.maxs[max_i]);
                    max_i += 1;
                }
                WindowFunc::PartitionCount => {
                    cols.push(partition_count.expect("buffered partition"));
                }
                WindowFunc::Lag(c) => {
                    let prev = if first {
                        crate::merge_join::NULL_VALUE
                    } else {
                        st.lags[lag_i]
                    };
                    cols.push(prev);
                    if first {
                        st.lags.push(r.row.cols()[c]);
                    } else {
                        st.lags[lag_i] = r.row.cols()[c];
                    }
                    lag_i += 1;
                }
            }
        }
        Row::new(cols)
    }
}

// `is_peer` must be evaluated on the *input* row before `annotate`
// consumes state; cache it on the struct first.
impl<S: OvcStream> Window<S> {
    fn annotate_row(&mut self, r: OvcRow, partition_count: Option<u64>) -> OvcRow {
        self.is_peer_cached = self.is_peer(&r);
        let row = self.annotate(&r, partition_count);
        OvcRow::new(row, r.code)
    }
}

impl<S: OvcStream> Iterator for Window<S> {
    type Item = OvcRow;

    fn next(&mut self) -> Option<OvcRow> {
        if !self.buffering {
            // Streaming path: one pass, constant memory.
            let r = match self.carry.take() {
                Some(r) => r,
                None => self.input.next()?,
            };
            if self.new_partition(&r) && self.state.row_number > 0 {
                self.state = PartitionState::default();
            }
            return Some(self.annotate_row(r, None));
        }
        // Buffering path: collect one whole partition, then drain it.
        loop {
            if let Some(r) = self.queue.pop_front() {
                let count = self.partition_count;
                return Some(self.annotate_row(r, Some(count)));
            }
            if self.done {
                return None;
            }
            // Fill the next partition.
            let first = match self.carry.take() {
                Some(r) => r,
                None => match self.input.next() {
                    Some(r) => r,
                    None => {
                        self.done = true;
                        return None;
                    }
                },
            };
            self.state = PartitionState::default();
            self.queue.push_back(first);
            loop {
                match self.input.next() {
                    None => {
                        self.done = true;
                        break;
                    }
                    Some(r) => {
                        if self.new_partition(&r) {
                            self.carry = Some(r);
                            break;
                        }
                        self.queue.push_back(r);
                    }
                }
            }
            self.partition_count = self.queue.len() as u64;
        }
    }
}

impl<S: OvcStream> OvcStream for Window<S> {
    fn key_len(&self) -> usize {
        self.in_key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::{Ovc, VecStream};

    fn input() -> VecStream {
        // (partition, order, payload)
        let rows = vec![
            Row::new(vec![1, 1, 10]),
            Row::new(vec![1, 1, 20]), // peer of the previous row
            Row::new(vec![1, 2, 30]),
            Row::new(vec![2, 1, 40]),
            Row::new(vec![2, 3, 50]),
        ];
        VecStream::from_sorted_rows(rows, 3)
    }

    #[test]
    fn row_number_rank_dense_rank() {
        let w = Window::new(
            input(),
            1,
            1,
            vec![
                WindowFunc::RowNumber,
                WindowFunc::Rank,
                WindowFunc::DenseRank,
            ],
        );
        let got: Vec<Vec<u64>> = w.map(|r| r.row.cols()[3..].to_vec()).collect();
        assert_eq!(
            got,
            vec![
                vec![1, 1, 1],
                vec![2, 1, 1], // peer: same rank
                vec![3, 3, 2],
                vec![1, 1, 1], // new partition resets
                vec![2, 2, 2],
            ]
        );
    }

    #[test]
    fn running_aggregates() {
        let w = Window::new(
            input(),
            1,
            1,
            vec![
                WindowFunc::RunningSum(2),
                WindowFunc::RunningMin(2),
                WindowFunc::RunningMax(2),
            ],
        );
        let got: Vec<Vec<u64>> = w.map(|r| r.row.cols()[3..].to_vec()).collect();
        assert_eq!(
            got,
            vec![
                vec![10, 10, 10],
                vec![30, 10, 20],
                vec![60, 10, 30],
                vec![40, 40, 40],
                vec![90, 40, 50],
            ]
        );
    }

    #[test]
    fn partition_count_buffers() {
        let w = Window::new(input(), 1, 1, vec![WindowFunc::PartitionCount]);
        let got: Vec<u64> = w.map(|r| *r.row.cols().last().unwrap()).collect();
        assert_eq!(got, vec![3, 3, 3, 2, 2]);
    }

    #[test]
    fn lag_function() {
        let w = Window::new(input(), 1, 1, vec![WindowFunc::Lag(2)]);
        let got: Vec<u64> = w.map(|r| *r.row.cols().last().unwrap()).collect();
        assert_eq!(
            got,
            vec![
                crate::merge_join::NULL_VALUE,
                10,
                20,
                crate::merge_join::NULL_VALUE,
                40
            ]
        );
    }

    #[test]
    fn codes_pass_through_exactly() {
        let w = Window::new(input(), 1, 1, vec![WindowFunc::RowNumber]);
        let pairs: Vec<(Row, Ovc)> = collect_pairs(w);
        assert_codes_exact(&pairs, 3);
    }

    #[test]
    fn empty_input() {
        let s = VecStream::from_sorted_rows(vec![], 2);
        assert_eq!(Window::new(s, 1, 0, vec![WindowFunc::RowNumber]).count(), 0);
        let s = VecStream::from_sorted_rows(vec![], 2);
        assert_eq!(
            Window::new(s, 1, 0, vec![WindowFunc::PartitionCount]).count(),
            0
        );
    }

    #[test]
    fn global_window_partition_len_zero() {
        let w = Window::new(input(), 0, 1, vec![WindowFunc::RowNumber]);
        let got: Vec<u64> = w.map(|r| *r.row.cols().last().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }
}
