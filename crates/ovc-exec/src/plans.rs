//! The sort-based query plan of Figure 5: "select B from T1 intersect
//! select B from T2".
//!
//! "In contrast, the sort-based plan has only two blocking operators: both
//! are in-sort aggregation operators for duplicate removal.  The merge
//! join computing the intersection exploits not only interesting orderings
//! but also offset-value codes in the output of in-sort aggregation …
//! the sort-based plan spills each input row only once."
//!
//! In-sort duplicate removal drops duplicates (detected by their codes)
//! before runs spill *and* after the final merge, so the sort never
//! spills a row twice and the join input arrives deduplicated and coded.
//!
//! Since the `ovc-plan` crate landed, this pipeline is **planner
//! territory**: [`in_sort_distinct`] is the physical building block that
//! `ovc_plan`'s executor lowers `InSortDistinct` nodes onto, and the
//! planner derives this exact plan (and its hash-based rival) from the
//! one logical query in `ovc_plan::figure5`.  [`sort_intersect_distinct`]
//! remains as the hand-written reference that benches and planner tests
//! compare against, row for row and spill for spill.

use std::sync::Arc;

use ovc_core::{OvcRow, OvcStream, Row, Stats};
use ovc_sort::{generate_runs, merge_runs, Run, RunGenStrategy, RunStorage, SortOutput};

use crate::dedup::Dedup;
use crate::set_ops::{SetOp, SetOperation};

/// External sort with in-sort duplicate removal: duplicates vanish inside
/// run generation (before spilling) and inside every merge, all detected
/// by offset-value codes alone.
pub fn in_sort_distinct<I, S>(
    input: I,
    key_len: usize,
    memory_rows: usize,
    fan_in: usize,
    storage: &mut S,
    stats: &Arc<Stats>,
) -> impl OvcStream
where
    I: IntoIterator<Item = Row>,
    S: RunStorage,
{
    // Run generation; each run deduplicated by code inspection before it
    // spills (this is what makes the aggregation "in-sort").
    let runs: Vec<Run> = generate_runs(
        input,
        key_len,
        memory_rows,
        RunGenStrategy::OvcPriorityQueue,
        stats,
    )
    .into_iter()
    .map(Run::into_distinct)
    .collect();

    if runs.len() <= 1 {
        let run = runs
            .into_iter()
            .next()
            .unwrap_or_else(|| Run::empty(key_len));
        return DistinctSortOutput(Dedup::new(SortOutput::Memory(run.cursor())));
    }

    // Spill once; merge with dedup folded into every merge step.  The
    // intermediate levels stay on the flat path: duplicate-coded rows are
    // dropped as winners copy between contiguous buffers.
    // Spill failures propagate as typed panic payloads, contained at the
    // executor boundary (`ovc_core::ctx`) like every other `ExecError`.
    let spill = |res: Result<usize, ovc_core::ExecError>| -> usize {
        res.unwrap_or_else(|e| ovc_core::ctx::propagate(e))
    };
    let unspill = |res: Result<Run, ovc_core::ExecError>| -> Run {
        res.unwrap_or_else(|e| ovc_core::ctx::propagate(e))
    };
    let mut handles: Vec<usize> = runs
        .into_iter()
        .map(|r| spill(storage.write_run(r)))
        .collect();
    while handles.len() > fan_in {
        let mut next = Vec::new();
        for chunk in handles.chunks(fan_in) {
            let level: Vec<Run> = chunk
                .iter()
                .map(|&h| unspill(storage.read_run(h)))
                .collect();
            let merged = merge_runs(level, key_len, stats).into_run_distinct();
            next.push(spill(storage.write_run(merged)));
        }
        handles = next;
    }
    let final_runs: Vec<Run> = handles
        .into_iter()
        .map(|h| unspill(storage.read_run(h)))
        .collect();
    DistinctSortOutput(Dedup::new(SortOutput::Merge(merge_runs(
        final_runs, key_len, stats,
    ))))
}

/// Newtype so the function can return a concrete `impl OvcStream`.
struct DistinctSortOutput(Dedup<SortOutput>);

impl Iterator for DistinctSortOutput {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.0.next()
    }
}

impl OvcStream for DistinctSortOutput {
    fn key_len(&self) -> usize {
        self.0.key_len()
    }
}

/// Knobs of the Figure 5/6 experiment.
#[derive(Clone, Copy, Debug)]
pub struct IntersectConfig {
    /// Row width (= sort-key arity: set semantics compare whole rows).
    pub key_len: usize,
    /// Memory budget in rows per blocking operator.
    pub memory_rows: usize,
    /// Merge fan-in.
    pub fan_in: usize,
}

/// The sort-based "intersect distinct" plan of Figure 5: two in-sort
/// duplicate removals feeding a merge join (intersection), which consumes
/// the aggregations' offset-value codes.
///
/// Returns the result rows; spill volume and comparison counts accumulate
/// in `stats`.
pub fn sort_intersect_distinct<S: RunStorage>(
    t1: Vec<Row>,
    t2: Vec<Row>,
    config: IntersectConfig,
    storage1: &mut S,
    storage2: &mut S,
    stats: &Arc<Stats>,
) -> Vec<OvcRow> {
    let d1 = in_sort_distinct(
        t1,
        config.key_len,
        config.memory_rows,
        config.fan_in,
        storage1,
        stats,
    );
    let d2 = in_sort_distinct(
        t2,
        config.key_len,
        config.memory_rows,
        config.fan_in,
        storage2,
        stats,
    );
    SetOperation::new(d1, d2, SetOp::Intersect, Arc::clone(stats)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::Ovc;
    use ovc_sort::MemoryRunStorage;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn table(n: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..domain)]))
            .collect()
    }

    #[test]
    fn in_sort_distinct_output_is_distinct_sorted_exact() {
        let rows = table(2000, 50, 1);
        let stats = Stats::new_shared();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        let out: Vec<OvcRow> =
            in_sort_distinct(rows.clone(), 1, 128, 64, &mut storage, &stats).collect();
        let expect: BTreeSet<u64> = rows.iter().map(|r| r.cols()[0]).collect();
        let got: Vec<u64> = out.iter().map(|r| r.row.cols()[0]).collect();
        assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
        let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
        assert_codes_exact(&pairs, 1);
    }

    #[test]
    fn in_sort_distinct_spills_less_than_input() {
        // With 2000 rows over 50 distinct values and 128-row memory, early
        // duplicate removal shrinks every spilled run drastically.
        let rows = table(2000, 50, 2);
        let stats = Stats::new_shared();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        let _ = in_sort_distinct(rows, 1, 128, 64, &mut storage, &stats).count();
        assert!(
            stats.rows_spilled() < 2000,
            "in-sort aggregation must spill fewer rows than the input ({})",
            stats.rows_spilled()
        );
    }

    #[test]
    fn sort_intersect_matches_reference() {
        let t1 = table(3000, 40, 3);
        let t2 = table(3000, 60, 4);
        let expect: Vec<u64> = {
            let a: BTreeSet<u64> = t1.iter().map(|r| r.cols()[0]).collect();
            let b: BTreeSet<u64> = t2.iter().map(|r| r.cols()[0]).collect();
            a.intersection(&b).copied().collect()
        };
        let stats = Stats::new_shared();
        let mut s1 = MemoryRunStorage::new(Arc::clone(&stats));
        let mut s2 = MemoryRunStorage::new(Arc::clone(&stats));
        let cfg = IntersectConfig {
            key_len: 1,
            memory_rows: 256,
            fan_in: 64,
        };
        let out = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &stats);
        let got: Vec<u64> = out.iter().map(|r| r.row.cols()[0]).collect();
        assert_eq!(got, expect);
        let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
        assert_codes_exact(&pairs, 1);
    }

    #[test]
    fn sort_plan_spills_each_row_at_most_once() {
        // Figure 6's claim: the sort-based plan spills each input row only
        // once (here even less, thanks to in-sort dedup).
        let t1 = table(4000, 3000, 5); // mostly distinct
        let t2 = table(4000, 3000, 6);
        let stats = Stats::new_shared();
        let mut s1 = MemoryRunStorage::new(Arc::clone(&stats));
        let mut s2 = MemoryRunStorage::new(Arc::clone(&stats));
        let cfg = IntersectConfig {
            key_len: 1,
            memory_rows: 400,
            fan_in: 64,
        };
        let _ = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &stats);
        assert!(
            stats.rows_spilled() <= 8000,
            "each row spilled at most once, got {}",
            stats.rows_spilled()
        );
    }

    #[test]
    fn small_inputs_never_spill() {
        let stats = Stats::new_shared();
        let mut s1 = MemoryRunStorage::new(Arc::clone(&stats));
        let mut s2 = MemoryRunStorage::new(Arc::clone(&stats));
        let cfg = IntersectConfig {
            key_len: 1,
            memory_rows: 1000,
            fan_in: 64,
        };
        let out = sort_intersect_distinct(
            table(100, 10, 7),
            table(100, 10, 8),
            cfg,
            &mut s1,
            &mut s2,
            &stats,
        );
        assert!(!out.is_empty());
        assert_eq!(stats.rows_spilled(), 0);
    }
}
