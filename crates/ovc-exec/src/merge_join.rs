//! Merge join (Section 4.7): inner, semi, anti, and outer joins over
//! sorted coded inputs.
//!
//! "The logic of merge join is similar to an external merge sort; hence,
//! it can exploit offset-value codes in its two sorted inputs" — and it
//! must produce codes for its output "without additional column value
//! comparisons" beyond the merge logic itself.
//!
//! Structure:
//!
//! * a `GroupedMerge` runs a two-way merge of the two inputs with their
//!   codes clamped to the join-key arity.  Exactly like a tree-of-losers
//!   with two leaves, every comparison is a same-base code comparison: the
//!   current row of each side is coded relative to the row most recently
//!   consumed from *either* side, so codes decide most comparisons and
//!   equal join keys surface as duplicate codes for free;
//! * join-key groups fall out of the merged stream's codes (a
//!   non-duplicate code marks a boundary);
//! * per group, the join type decides what to emit.  Output codes come
//!   from the filter theorem over the merged chain: the first output of an
//!   emitted group carries the accumulated `max` since the previous output,
//!   every further output within the group is a duplicate under the
//!   join-key arity.  Semi and anti joins instead preserve the *left*
//!   input's codes at its full arity, "just like the derivation of Table 3
//!   from Table 1" (Section 4.7).

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::sync::Arc;

use ovc_core::compare::compare_same_base_spec;
use ovc_core::theorem::{clamp_to_prefix, OvcAccumulator};
use ovc_core::{Ovc, OvcRow, OvcStream, Row, SortSpec, Stats, Value};

/// The "null" padding value for outer-join non-matches.  Rows are plain
/// `u64` columns, so a sentinel stands in for SQL NULL (DESIGN.md §3.6).
pub const NULL_VALUE: Value = u64::MAX;

/// Supported join types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinType {
    /// All matching combinations.
    Inner,
    /// Matching combinations plus left rows without match (right padded).
    LeftOuter,
    /// Matching combinations plus right rows without match (left padded).
    RightOuter,
    /// Both of the above.
    FullOuter,
    /// Left rows with at least one match (SQL `EXISTS`).
    LeftSemi,
    /// Left rows without any match (SQL `NOT EXISTS`).
    LeftAnti,
}

/// A buffered input row inside a join group: the row plus its code at the
/// side's original arity (used by semi/anti joins).
#[derive(Clone, Debug)]
pub(crate) struct Item {
    pub row: Row,
    pub orig_code: Ovc,
}

/// One join-key group from the merged chain.
pub(crate) struct JoinGroup {
    /// Exact merged-chain code of the group's first row, at join arity.
    pub code: Ovc,
    pub left: Vec<Item>,
    pub right: Vec<Item>,
}

/// Which side a merged item came from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// The current head of one side: comparison code (join arity, relative to
/// the last row consumed from either side) plus the original code.
struct Head {
    row: Row,
    cmp_code: Ovc,
    orig_code: Ovc,
}

/// Two-way merge of the join inputs, grouped by join key.
pub(crate) struct GroupedMerge<L: OvcStream, R: OvcStream> {
    left: L,
    right: R,
    join_len: usize,
    /// Ordering contract of the join-key prefix (shared by both inputs);
    /// drives every merge comparison, so mixed asc/desc join keys work.
    join_spec: SortSpec,
    left_key_len: usize,
    right_key_len: usize,
    cur_l: Option<Head>,
    cur_r: Option<Head>,
    /// Lookahead: the first item of the next group, if already popped.
    carry: Option<(Side, Item, Ovc)>,
    stats: Arc<Stats>,
    started: bool,
}

impl<L: OvcStream, R: OvcStream> GroupedMerge<L, R> {
    pub fn new(mut left: L, mut right: R, join_len: usize, stats: Arc<Stats>) -> Self {
        let left_key_len = left.key_len();
        let right_key_len = right.key_len();
        assert!(
            join_len <= left_key_len && join_len <= right_key_len,
            "join key must be a sort-key prefix of both inputs"
        );
        let join_spec = left.sort_spec().prefix(join_len).with_normalized(false);
        assert_eq!(
            join_spec.keys(),
            right.sort_spec().prefix(join_len).keys(),
            "join inputs must agree on the join-key ordering contract"
        );
        let cur_l = Self::load(&mut left, left_key_len, join_len);
        let cur_r = Self::load(&mut right, right_key_len, join_len);
        GroupedMerge {
            left,
            right,
            join_len,
            join_spec,
            left_key_len,
            right_key_len,
            cur_l,
            cur_r,
            carry: None,
            stats,
            started: false,
        }
    }

    fn load<S: OvcStream>(input: &mut S, key_len: usize, join_len: usize) -> Option<Head> {
        input.next().map(|OvcRow { row, code }| Head {
            cmp_code: clamp_to_prefix(code, key_len, join_len),
            orig_code: code,
            row,
        })
    }

    /// Pop the next item of the merged chain; its code is exact relative
    /// to the previously popped item.
    fn pop(&mut self) -> Option<(Side, Item, Ovc)> {
        let side = match (&mut self.cur_l, &mut self.cur_r) {
            (None, None) => return None,
            (Some(_), None) => Side::Left,
            (None, Some(_)) => Side::Right,
            (Some(l), Some(r)) => {
                let ord = compare_same_base_spec(
                    l.row.key(self.join_len),
                    r.row.key(self.join_len),
                    &mut l.cmp_code,
                    &mut r.cmp_code,
                    &self.join_spec,
                    &self.stats,
                );
                match ord {
                    Ordering::Less => Side::Left,
                    Ordering::Greater => Side::Right,
                    Ordering::Equal => {
                        // Equal join keys: take the left first (stability);
                        // the right head becomes a duplicate of it.
                        r.cmp_code = Ovc::duplicate();
                        Side::Left
                    }
                }
            }
        };
        let head = match side {
            Side::Left => {
                let head = self.cur_l.take().expect("left head");
                self.cur_l = Self::load(&mut self.left, self.left_key_len, self.join_len);
                head
            }
            Side::Right => {
                let head = self.cur_r.take().expect("right head");
                self.cur_r = Self::load(&mut self.right, self.right_key_len, self.join_len);
                head
            }
        };
        Some((
            side,
            Item {
                row: head.row,
                orig_code: head.orig_code,
            },
            head.cmp_code,
        ))
    }
}

impl<L: OvcStream, R: OvcStream> Iterator for GroupedMerge<L, R> {
    type Item = JoinGroup;

    fn next(&mut self) -> Option<JoinGroup> {
        let (side, item, code) = match self.carry.take() {
            Some(c) => c,
            None => self.pop()?,
        };
        debug_assert!(
            !self.started || !code.is_duplicate() || self.join_len == 0,
            "group must start at a boundary"
        );
        self.started = true;
        let mut group = JoinGroup {
            code,
            left: Vec::new(),
            right: Vec::new(),
        };
        match side {
            Side::Left => group.left.push(item),
            Side::Right => group.right.push(item),
        }
        // Absorb the rest of the group: items whose merged-chain code is a
        // duplicate at join arity (free detection; with an empty join key
        // everything is one group).
        while let Some((side, item, code)) = self.pop() {
            if code.is_duplicate() {
                match side {
                    Side::Left => group.left.push(item),
                    Side::Right => group.right.push(item),
                }
            } else {
                self.carry = Some((side, item, code));
                break;
            }
        }
        Some(group)
    }
}

/// Merge join over two coded streams.
///
/// The join key is the first `join_len` columns of both inputs.  Output
/// rows are `left columns ++ right columns past the join key` (matching
/// SQL `USING` semantics); outer-join non-matches pad the absent side with
/// [`NULL_VALUE`].  Output codes have arity `join_len`, except for semi
/// and anti joins whose outputs are unmodified left rows with codes at the
/// left input's full arity.
pub struct MergeJoin<L: OvcStream, R: OvcStream> {
    groups: GroupedMerge<L, R>,
    join_type: JoinType,
    join_len: usize,
    left_key_len: usize,
    /// The left input's full ordering contract (semi/anti output spec).
    left_spec: SortSpec,
    left_width: usize,
    right_width: usize,
    /// Filter-theorem accumulator over the merged chain (join arity).
    acc: OvcAccumulator,
    /// Filter-theorem accumulator over the left chain (semi/anti).
    left_acc: OvcAccumulator,
    queue: VecDeque<OvcRow>,
}

impl<L: OvcStream, R: OvcStream> MergeJoin<L, R> {
    /// Build a merge join.  `left_width`/`right_width` are the inputs'
    /// column counts (needed to pad outer-join non-matches).
    pub fn new(
        left: L,
        right: R,
        join_len: usize,
        join_type: JoinType,
        left_width: usize,
        right_width: usize,
        stats: Arc<Stats>,
    ) -> Self {
        let left_key_len = left.key_len();
        let left_spec = left.sort_spec();
        assert!(join_len <= right_width && join_len <= left_width);
        MergeJoin {
            groups: GroupedMerge::new(left, right, join_len, stats),
            join_type,
            join_len,
            left_key_len,
            left_spec,
            left_width,
            right_width,
            acc: OvcAccumulator::new(),
            left_acc: OvcAccumulator::new(),
            queue: VecDeque::new(),
        }
    }

    fn combine(&self, l: &Row, r: &Row) -> Row {
        let mut cols = Vec::with_capacity(self.left_width + self.right_width - self.join_len);
        cols.extend_from_slice(l.cols());
        cols.extend_from_slice(&r.cols()[self.join_len..]);
        Row::new(cols)
    }

    fn pad_right(&self, l: &Row) -> Row {
        let mut cols = Vec::with_capacity(self.left_width + self.right_width - self.join_len);
        cols.extend_from_slice(l.cols());
        cols.resize(
            self.left_width + self.right_width - self.join_len,
            NULL_VALUE,
        );
        Row::new(cols)
    }

    fn pad_left(&self, r: &Row) -> Row {
        let mut cols = Vec::with_capacity(self.left_width + self.right_width - self.join_len);
        cols.extend_from_slice(&r.cols()[..self.join_len]);
        cols.resize(self.left_width, NULL_VALUE);
        cols.extend_from_slice(&r.cols()[self.join_len..]);
        Row::new(cols)
    }

    /// Emit a group's combined rows into the queue, coding the first with
    /// the accumulated merged-chain code and the rest as duplicates.
    fn emit_combined(&mut self, group_code: Ovc, rows: Vec<Row>) {
        let mut first = true;
        for row in rows {
            let code = if first {
                first = false;
                self.acc.emit(group_code)
            } else {
                Ovc::duplicate()
            };
            self.queue.push_back(OvcRow::new(row, code));
        }
    }

    fn process_group(&mut self, group: JoinGroup) {
        let JoinGroup { code, left, right } = group;
        match self.join_type {
            JoinType::Inner | JoinType::LeftOuter | JoinType::RightOuter | JoinType::FullOuter => {
                let matched = !left.is_empty() && !right.is_empty();
                let rows: Vec<Row> = if matched {
                    left.iter()
                        .flat_map(|l| right.iter().map(|r| self.combine(&l.row, &r.row)))
                        .collect()
                } else if right.is_empty()
                    && matches!(self.join_type, JoinType::LeftOuter | JoinType::FullOuter)
                {
                    left.iter().map(|l| self.pad_right(&l.row)).collect()
                } else if left.is_empty()
                    && matches!(self.join_type, JoinType::RightOuter | JoinType::FullOuter)
                {
                    right.iter().map(|r| self.pad_left(&r.row)).collect()
                } else {
                    Vec::new()
                };
                if rows.is_empty() {
                    self.acc.absorb(code);
                } else {
                    self.emit_combined(code, rows);
                }
            }
            JoinType::LeftSemi | JoinType::LeftAnti => {
                let emit = match self.join_type {
                    JoinType::LeftSemi => !right.is_empty(),
                    _ => right.is_empty(),
                } && !left.is_empty();
                if emit {
                    // Output codes follow the filter theorem over the left
                    // input at its full arity (Section 4.7: "the rule for
                    // setting offset-value codes in the output is the same
                    // as given in the 'filter theorem'").  Rows move out of
                    // the group buffer — no clone.
                    let mut first = true;
                    for item in left {
                        let code = if first {
                            first = false;
                            self.left_acc.emit(item.orig_code)
                        } else {
                            item.orig_code
                        };
                        self.queue.push_back(OvcRow::new(item.row, code));
                    }
                } else {
                    for item in &left {
                        self.left_acc.absorb(item.orig_code);
                    }
                }
            }
        }
    }
}

impl<L: OvcStream, R: OvcStream> Iterator for MergeJoin<L, R> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            if let Some(r) = self.queue.pop_front() {
                return Some(r);
            }
            let group = self.groups.next()?;
            self.process_group(group);
        }
    }
}

impl<L: OvcStream, R: OvcStream> OvcStream for MergeJoin<L, R> {
    fn key_len(&self) -> usize {
        match self.join_type {
            JoinType::LeftSemi | JoinType::LeftAnti => self.left_key_len,
            _ => self.join_len,
        }
    }
    fn sort_spec(&self) -> SortSpec {
        match self.join_type {
            JoinType::LeftSemi | JoinType::LeftAnti => self.left_spec.clone(),
            _ => self.groups.join_spec.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn stream(rows: Vec<Vec<u64>>, key_len: usize) -> VecStream {
        VecStream::from_unsorted_rows(rows.into_iter().map(Row::new).collect(), key_len)
    }

    /// Reference join on the first `j` columns, for all types.
    fn reference_join(
        l: &[Vec<u64>],
        r: &[Vec<u64>],
        j: usize,
        jt: JoinType,
        lw: usize,
        rw: usize,
    ) -> Vec<Vec<u64>> {
        let mut lsort = l.to_vec();
        let mut rsort = r.to_vec();
        lsort.sort();
        rsort.sort();
        // Group by borrowed key slices — no per-row key allocation.
        let mut rmap: BTreeMap<&[u64], Vec<&Vec<u64>>> = BTreeMap::new();
        for row in &rsort {
            rmap.entry(&row[..j]).or_default().push(row);
        }
        let mut out = Vec::new();
        match jt {
            JoinType::Inner | JoinType::LeftOuter => {
                for lrow in &lsort {
                    match rmap.get(&lrow[..j]) {
                        Some(matches) => {
                            for m in matches {
                                let mut c = lrow.clone();
                                c.extend_from_slice(&m[j..]);
                                out.push(c);
                            }
                        }
                        None if jt == JoinType::LeftOuter => {
                            let mut c = lrow.clone();
                            c.resize(lw + rw - j, NULL_VALUE);
                            out.push(c);
                        }
                        None => {}
                    }
                }
            }
            JoinType::LeftSemi => {
                for lrow in &lsort {
                    if rmap.contains_key(&lrow[..j]) {
                        out.push(lrow.clone());
                    }
                }
            }
            JoinType::LeftAnti => {
                for lrow in &lsort {
                    if !rmap.contains_key(&lrow[..j]) {
                        out.push(lrow.clone());
                    }
                }
            }
            JoinType::RightOuter | JoinType::FullOuter => {
                let mut lmap: BTreeMap<&[u64], Vec<&Vec<u64>>> = BTreeMap::new();
                for row in &lsort {
                    lmap.entry(&row[..j]).or_default().push(row);
                }
                let mut keys: Vec<&[u64]> = lmap
                    .keys()
                    .chain(rmap.keys())
                    .copied()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                keys.sort();
                for k in keys {
                    match (lmap.get(&k), rmap.get(&k)) {
                        (Some(ls), Some(rs)) => {
                            for lrow in ls {
                                for rrow in rs {
                                    let mut c = (*lrow).clone();
                                    c.extend_from_slice(&rrow[j..]);
                                    out.push(c);
                                }
                            }
                        }
                        (Some(ls), None) if jt == JoinType::FullOuter => {
                            for lrow in ls {
                                let mut c = (*lrow).clone();
                                c.resize(lw + rw - j, NULL_VALUE);
                                out.push(c);
                            }
                        }
                        (None, Some(rs)) => {
                            for rrow in rs {
                                let mut c = rrow[..j].to_vec();
                                c.resize(lw, NULL_VALUE);
                                c.extend_from_slice(&rrow[j..]);
                                out.push(c);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_join_widths(
        l: Vec<Vec<u64>>,
        r: Vec<Vec<u64>>,
        j: usize,
        lkl: usize,
        rkl: usize,
        jt: JoinType,
        lw: usize,
        rw: usize,
    ) -> Vec<(Row, Ovc)> {
        let stats = Stats::new_shared();
        let join = MergeJoin::new(stream(l, lkl), stream(r, rkl), j, jt, lw, rw, stats);
        let arity = join.key_len();
        let pairs = collect_pairs(join);
        assert_codes_exact(&pairs, arity);
        pairs
    }

    fn run_join(
        l: Vec<Vec<u64>>,
        r: Vec<Vec<u64>>,
        j: usize,
        lkl: usize,
        rkl: usize,
        jt: JoinType,
    ) -> Vec<(Row, Ovc)> {
        let lw = l.first().map(|x| x.len()).unwrap_or(lkl);
        let rw = r.first().map(|x| x.len()).unwrap_or(rkl);
        run_join_widths(l, r, j, lkl, rkl, jt, lw, rw)
    }

    fn rows_of(pairs: &[(Row, Ovc)]) -> Vec<Vec<u64>> {
        pairs.iter().map(|(r, _)| r.cols().to_vec()).collect()
    }

    #[test]
    fn inner_join_basic() {
        let l = vec![vec![1, 10], vec![2, 20], vec![4, 40]];
        let r = vec![vec![2, 200], vec![3, 300], vec![4, 400]];
        let pairs = run_join(l.clone(), r.clone(), 1, 1, 1, JoinType::Inner);
        assert_eq!(
            rows_of(&pairs),
            reference_join(&l, &r, 1, JoinType::Inner, 2, 2)
        );
    }

    #[test]
    fn many_to_many_duplicates() {
        let l = vec![vec![1, 1], vec![1, 2], vec![2, 1]];
        let r = vec![vec![1, 10], vec![1, 20], vec![1, 30]];
        let pairs = run_join(l.clone(), r.clone(), 1, 1, 1, JoinType::Inner);
        assert_eq!(pairs.len(), 6);
        assert_eq!(
            rows_of(&pairs),
            reference_join(&l, &r, 1, JoinType::Inner, 2, 2)
        );
        // All rows of a many-to-many group after the first are duplicates
        // under the join key.
        assert!(pairs[1..6].iter().all(|(_, c)| c.is_duplicate()));
    }

    #[test]
    fn all_join_types_match_reference_randomized() {
        let mut rng = StdRng::seed_from_u64(21);
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
            JoinType::LeftSemi,
            JoinType::LeftAnti,
        ] {
            for trial in 0..5 {
                let l: Vec<Vec<u64>> = (0..rng.gen_range(0..60))
                    .map(|_| vec![rng.gen_range(0..8u64), rng.gen_range(0..4u64), rng.gen()])
                    .collect();
                let r: Vec<Vec<u64>> = (0..rng.gen_range(0..60))
                    .map(|_| vec![rng.gen_range(0..8u64), rng.gen_range(0..4u64), rng.gen()])
                    .collect();
                let pairs = run_join_widths(l.clone(), r.clone(), 2, 2, 2, jt, 3, 3);
                let mut got = rows_of(&pairs);
                let mut expect = reference_join(&l, &r, 2, jt, 3, 3);
                got.sort();
                expect.sort();
                assert_eq!(got, expect, "{jt:?} trial {trial}");
            }
        }
    }

    #[test]
    fn semi_join_preserves_left_codes_at_full_arity() {
        // Table 3 analogue: semi join selecting first and last Table 1 rows.
        let l = ovc_core::table1::rows();
        let left = VecStream::from_sorted_rows(l, 4);
        let right = stream(vec![vec![5, 7, 3, 9], vec![5, 9, 3, 7]], 4);
        let stats = Stats::new_shared();
        let join = MergeJoin::new(left, right, 4, JoinType::LeftSemi, 4, 4, stats);
        let pairs = collect_pairs(join);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].1.paper_decimal(), 405);
        assert_eq!(pairs[1].1.paper_decimal(), 309);
        assert_codes_exact(&pairs, 4);
    }

    #[test]
    fn join_with_empty_sides() {
        let l = vec![vec![1, 1], vec![2, 2]];
        assert_eq!(
            run_join(l.clone(), vec![], 1, 1, 1, JoinType::Inner).len(),
            0
        );
        assert_eq!(
            run_join(l.clone(), vec![], 1, 1, 1, JoinType::LeftAnti).len(),
            2
        );
        assert_eq!(run_join(vec![], l, 1, 1, 1, JoinType::Inner).len(), 0);
    }

    #[test]
    fn codes_decide_most_join_comparisons() {
        // With few distinct join keys, column comparisons in the merge are
        // bounded by N*K while code comparisons do the bulk of the work.
        let mut rng = StdRng::seed_from_u64(30);
        let l: Vec<Vec<u64>> = (0..500)
            .map(|_| vec![rng.gen_range(0..16u64), rng.gen_range(0..16u64), rng.gen()])
            .collect();
        let r: Vec<Vec<u64>> = (0..500)
            .map(|_| vec![rng.gen_range(0..16u64), rng.gen_range(0..16u64), rng.gen()])
            .collect();
        let stats = Stats::new_shared();
        let join = MergeJoin::new(
            stream(l, 2),
            stream(r, 2),
            2,
            JoinType::Inner,
            3,
            3,
            Arc::clone(&stats),
        );
        let _ = join.count();
        assert!(
            stats.col_value_cmps() <= 1000 * 2,
            "join merge logic exceeded the N*K bound: {}",
            stats.col_value_cmps()
        );
    }

    #[test]
    fn mixed_direction_join_keys_match_reference() {
        use ovc_core::derive::assert_codes_exact_spec;
        use ovc_core::{Direction, SortSpec};
        let spec = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        let mut rng = StdRng::seed_from_u64(77);
        let mut l: Vec<Row> = (0..80)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..6u64),
                    rng.gen_range(0..4u64),
                    rng.gen(),
                ])
            })
            .collect();
        let mut r: Vec<Row> = (0..80)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..6u64),
                    rng.gen_range(0..4u64),
                    rng.gen(),
                ])
            })
            .collect();
        let jspec = spec.clone();
        l.sort_by(|a, b| jspec.cmp_keys(a.key(2), b.key(2)));
        r.sort_by(|a, b| jspec.cmp_keys(a.key(2), b.key(2)));
        let stats = Stats::new_shared();
        let join = MergeJoin::new(
            VecStream::from_sorted_rows_spec(l.clone(), spec.clone()),
            VecStream::from_sorted_rows_spec(r.clone(), spec.clone()),
            2,
            JoinType::Inner,
            3,
            3,
            stats,
        );
        assert_eq!(join.sort_spec().keys(), spec.keys());
        let pairs = collect_pairs(join);
        assert_codes_exact_spec(&pairs, &spec);
        // Same multiset as the direction-agnostic reference join.
        let lv: Vec<Vec<u64>> = l.iter().map(|x| x.cols().to_vec()).collect();
        let rv: Vec<Vec<u64>> = r.iter().map(|x| x.cols().to_vec()).collect();
        let mut got = rows_of(&pairs);
        let mut expect = reference_join(&lv, &rv, 2, JoinType::Inner, 3, 3);
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn outer_join_padding_layout() {
        let l = vec![vec![1, 10]];
        let r = vec![vec![2, 20]];
        let pairs = run_join(l, r, 1, 1, 1, JoinType::FullOuter);
        let rows = rows_of(&pairs);
        assert_eq!(rows[0], vec![1, 10, NULL_VALUE]);
        assert_eq!(rows[1], vec![2, NULL_VALUE, 20]);
    }
}
