//! Sort-based set operations (Section 4.7).
//!
//! "Among set operations, intersection proceeds mostly like an inner join,
//! union like a full outer join, and difference like an anti semi join."
//! The multiset ("all") variants follow SQL semantics; the paper notes
//! they "benefit from grouping on the input side (collapsing duplicate
//! rows to a single row with a counter)", which
//! [`crate::dedup::DedupCounting`] provides.
//!
//! All six operations share the same grouped two-way merge as
//! [`crate::merge_join::MergeJoin`]: per join-key group the operation only
//! decides *how many* copies to emit; codes come from the filter theorem
//! over the merged chain, with copies past the first being duplicates.

use std::collections::VecDeque;
use std::sync::Arc;

use ovc_core::theorem::OvcAccumulator;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Stats};

use crate::merge_join::{GroupedMerge, JoinGroup};

/// SQL set operations over sorted coded inputs with identical schemas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION` (distinct): one copy of every key present in either input.
    Union,
    /// `UNION ALL`: all copies from both inputs.
    UnionAll,
    /// `INTERSECT` (distinct): one copy of keys present in both inputs.
    Intersect,
    /// `INTERSECT ALL`: `min(count_left, count_right)` copies.
    IntersectAll,
    /// `EXCEPT` (distinct): one copy of keys present only in the left.
    Except,
    /// `EXCEPT ALL`: `max(count_left - count_right, 0)` copies.
    ExceptAll,
}

impl SetOp {
    /// Copies to emit for a group with `nl` left and `nr` right rows.
    fn copies(self, nl: usize, nr: usize) -> usize {
        match self {
            SetOp::Union => 1,
            SetOp::UnionAll => nl + nr,
            SetOp::Intersect => usize::from(nl > 0 && nr > 0),
            SetOp::IntersectAll => nl.min(nr),
            SetOp::Except => usize::from(nl > 0 && nr == 0),
            SetOp::ExceptAll => nl.saturating_sub(nr),
        }
    }
}

/// Set-operation operator.  Both inputs must be sorted on their full rows
/// (key_len == row width), as SQL set semantics compare entire rows.
pub struct SetOperation<L: OvcStream, R: OvcStream> {
    groups: GroupedMerge<L, R>,
    op: SetOp,
    key_len: usize,
    acc: OvcAccumulator,
    queue: VecDeque<OvcRow>,
}

impl<L: OvcStream, R: OvcStream> SetOperation<L, R> {
    /// Build the operator over two streams with equal key length.
    ///
    /// The documented full-row contract (`key_len == row width` on both
    /// inputs) cannot be checked here — streams reveal row widths only
    /// as they produce rows — so it is asserted per group in `next()`:
    /// a mismatched input fails loudly instead of silently emitting
    /// truncated or over-wide rows under `UnionAll`.
    pub fn new(left: L, right: R, op: SetOp, stats: Arc<Stats>) -> Self {
        let key_len = left.key_len();
        assert_eq!(
            key_len,
            right.key_len(),
            "set operands must agree on the key"
        );
        SetOperation {
            groups: GroupedMerge::new(left, right, key_len, stats),
            op,
            key_len,
            acc: OvcAccumulator::new(),
            queue: VecDeque::new(),
        }
    }
}

impl<L: OvcStream, R: OvcStream> Iterator for SetOperation<L, R> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            if let Some(r) = self.queue.pop_front() {
                return Some(r);
            }
            let JoinGroup { code, left, right } = self.groups.next()?;
            // Enforce the documented contract on both inputs: SQL set
            // semantics compare entire rows, so the sort key must be the
            // whole row.  Every buffered row is checked (one integer
            // compare each) — a key-equal group can mix widths, so
            // checking only a group's first row would still let an
            // over-wide row slip into the output.
            for item in &left {
                assert_eq!(
                    item.row.width(),
                    self.key_len,
                    "set operation left input must be sorted on its full rows"
                );
            }
            for item in &right {
                assert_eq!(
                    item.row.width(),
                    self.key_len,
                    "set operation right input must be sorted on its full rows"
                );
            }
            let copies = self.op.copies(left.len(), right.len());
            if copies == 0 {
                self.acc.absorb(code);
                continue;
            }
            let row: &Row = left
                .first()
                .map(|i| &i.row)
                .or_else(|| right.first().map(|i| &i.row))
                .expect("non-empty group");
            for i in 0..copies {
                let code = if i == 0 {
                    self.acc.emit(code)
                } else {
                    Ovc::duplicate()
                };
                self.queue.push_back(OvcRow::new(row.clone(), code));
            }
        }
    }
}

impl<L: OvcStream, R: OvcStream> OvcStream for SetOperation<L, R> {
    fn key_len(&self) -> usize {
        self.key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn stream(rows: Vec<Vec<u64>>) -> VecStream {
        let width = rows.first().map(|r| r.len()).unwrap_or(1);
        VecStream::from_unsorted_rows(rows.into_iter().map(Row::new).collect(), width)
    }

    fn reference(l: &[Vec<u64>], r: &[Vec<u64>], op: SetOp) -> Vec<Vec<u64>> {
        let mut counts: BTreeMap<Vec<u64>, (usize, usize)> = BTreeMap::new();
        for x in l {
            counts.entry(x.clone()).or_default().0 += 1;
        }
        for x in r {
            counts.entry(x.clone()).or_default().1 += 1;
        }
        let mut out = Vec::new();
        for (k, (nl, nr)) in counts {
            for _ in 0..op.copies(nl, nr) {
                out.push(k.clone());
            }
        }
        out
    }

    #[test]
    fn all_ops_match_reference_randomized() {
        let mut rng = StdRng::seed_from_u64(17);
        for op in [
            SetOp::Union,
            SetOp::UnionAll,
            SetOp::Intersect,
            SetOp::IntersectAll,
            SetOp::Except,
            SetOp::ExceptAll,
        ] {
            for _ in 0..5 {
                let l: Vec<Vec<u64>> = (0..rng.gen_range(0..80))
                    .map(|_| vec![rng.gen_range(0..6u64), rng.gen_range(0..3u64)])
                    .collect();
                let r: Vec<Vec<u64>> = (0..rng.gen_range(0..80))
                    .map(|_| vec![rng.gen_range(0..6u64), rng.gen_range(0..3u64)])
                    .collect();
                let stats = Stats::new_shared();
                let setop = SetOperation::new(stream(l.clone()), stream(r.clone()), op, stats);
                let pairs = collect_pairs(setop);
                assert_codes_exact(&pairs, 2);
                let got: Vec<Vec<u64>> = pairs.iter().map(|(row, _)| row.cols().to_vec()).collect();
                assert_eq!(got, reference(&l, &r, op), "{op:?}");
            }
        }
    }

    #[test]
    fn intersect_distinct_example() {
        // "select B from T1 intersect select B from T2" (Figure 5).
        let t1 = vec![vec![1], vec![2], vec![2], vec![5]];
        let t2 = vec![vec![2], vec![5], vec![5], vec![7]];
        let stats = Stats::new_shared();
        let setop = SetOperation::new(stream(t1), stream(t2), SetOp::Intersect, stats);
        let got: Vec<u64> = setop.map(|r| r.row.cols()[0]).collect();
        assert_eq!(got, vec![2, 5]);
    }

    #[test]
    fn empty_inputs() {
        for op in [SetOp::Union, SetOp::Intersect, SetOp::Except] {
            let stats = Stats::new_shared();
            let setop = SetOperation::new(
                VecStream::from_sorted_rows(vec![], 1),
                VecStream::from_sorted_rows(vec![], 1),
                op,
                stats,
            );
            assert_eq!(setop.count(), 0);
        }
    }

    /// Regression: a 2-column stream keyed on 1 column used to flow
    /// through `UnionAll` silently, emitting garbage (key-equal rows
    /// collapsed onto one side's payload).  The full-row contract is now
    /// asserted on both inputs, and on **every** buffered row: here the
    /// offending wide row hides behind a correctly-narrow row in the
    /// same key group, so a first-row-only check would miss it.
    #[test]
    #[should_panic(expected = "sorted on its full rows")]
    fn rejects_inputs_not_keyed_on_the_full_row() {
        let mixed = VecStream::from_unsorted_rows(
            vec![Row::new(vec![1]), Row::new(vec![1, 10])],
            1, // key-equal group mixing widths: violates the contract
        );
        let narrow = stream(vec![vec![1], vec![3]]);
        let setop = SetOperation::new(mixed, narrow, SetOp::UnionAll, Stats::new_shared());
        let _ = setop.count();
    }

    #[test]
    fn union_with_one_empty_side() {
        let stats = Stats::new_shared();
        let setop = SetOperation::new(
            stream(vec![vec![3], vec![1]]),
            VecStream::from_sorted_rows(vec![], 1),
            SetOp::Union,
            stats,
        );
        let pairs = collect_pairs(setop);
        assert_codes_exact(&pairs, 1);
        let got: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[0]).collect();
        assert_eq!(got, vec![1, 3]);
    }
}
