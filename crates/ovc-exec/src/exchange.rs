//! Order-preserving exchange / shuffle (Section 4.10).
//!
//! * One-to-many "splitting" shuffle: each output partition is a selection
//!   from the input stream, so it "resembles a filter with respect to each
//!   output partition" — one filter-theorem accumulator per partition.
//! * Many-to-one "merging" shuffle: "the standard merge logic, very
//!   similar to a merge step in an external merge sort", i.e. a
//!   tree-of-losers that consumes and produces codes.
//! * Many-to-many: "similar to a sequence of many-to-one and one-to-many
//!   shuffle operations" — composed from the two primitives.
//!
//! These operators express the data movement and code computation as
//! single-threaded data-flow — the reference semantics.  The same
//! computations run on real producer/consumer threads over bounded
//! channels in [`crate::parallel`] (`split_threaded`, `merge_threaded`,
//! `repartition_threaded`), which is property-tested to match these
//! functions row for row and code for code.

use std::sync::Arc;

use ovc_core::theorem::OvcAccumulator;
use ovc_core::{OvcRow, OvcStream, Row, Stats, VecStream};
use ovc_sort::TreeOfLosers;

/// Ready-made partitioning functions.
pub mod partition {
    use ovc_core::{Row, Value};

    /// Hash-partition on the given column.
    pub fn by_hash(col: usize, n: usize) -> impl FnMut(&Row) -> usize {
        move |r: &Row| {
            // Fibonacci hashing of the column value.
            let h = r.cols()[col].wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> 32) as usize % n
        }
    }

    /// Hash-partition on the leading `key_len` columns together — the
    /// partitioner co-partitioned merge joins need: rows with equal join
    /// keys land in the same partition, whichever side they come from.
    pub fn by_key_hash(key_len: usize, n: usize) -> impl FnMut(&Row) -> usize + Clone {
        by_cols_hash((0..key_len).collect(), n)
    }

    /// Hash-partition on an arbitrary set of columns together.
    pub fn by_cols_hash(cols: Vec<usize>, n: usize) -> impl FnMut(&Row) -> usize + Clone {
        move |r: &Row| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
            for &c in &cols {
                h ^= r.cols()[c];
                h = h.wrapping_mul(0x100_0000_01b3); // FNV prime
            }
            // Fibonacci finisher spreads the low bits.
            ((h.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % n
        }
    }

    /// Slice-based twin of [`by_cols_hash`] for flat-batch routing: the
    /// same hash over the same columns, so a row lands in the same
    /// partition whether it arrives boxed or as a batch slice — the
    /// property the batched/serial differential tests rely on.
    pub fn by_cols_hash_slice(
        cols: Vec<usize>,
        n: usize,
    ) -> impl FnMut(&[Value]) -> usize + Clone + Send {
        move |r: &[Value]| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
            for &c in &cols {
                h ^= r[c];
                h = h.wrapping_mul(0x100_0000_01b3); // FNV prime
            }
            ((h.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % n
        }
    }

    /// Range-partition on column 0 with the given upper boundaries
    /// (partition `i` receives values below `boundaries[i]`; the last
    /// partition receives the rest).
    pub fn by_range(boundaries: Vec<Value>) -> impl FnMut(&Row) -> usize {
        move |r: &Row| {
            let v = r.cols()[0];
            boundaries
                .iter()
                .position(|&b| v < b)
                .unwrap_or(boundaries.len())
        }
    }

    /// Round-robin by arrival order.
    pub fn round_robin(n: usize) -> impl FnMut(&Row) -> usize {
        let mut i = 0usize;
        move |_: &Row| {
            let p = i % n;
            i += 1;
            p
        }
    }
}

/// Order-preserving one-to-many split: route each row with `part`, keeping
/// every partition sorted and exactly coded via its own accumulator.
pub fn split<S, P>(input: S, parts: usize, mut part: P) -> Vec<VecStream>
where
    S: OvcStream,
    P: FnMut(&Row) -> usize,
{
    let key_len = input.key_len();
    let mut accs = vec![OvcAccumulator::new(); parts];
    let mut outs: Vec<Vec<OvcRow>> = vec![Vec::new(); parts];
    for OvcRow { row, code } in input {
        let p = part(&row);
        assert!(p < parts, "partition function out of range");
        // This row is "kept" by partition p and "dropped" by all others.
        for (i, acc) in accs.iter_mut().enumerate() {
            if i == p {
                let out_code = acc.emit(code);
                outs[p].push(OvcRow::new(row.clone(), out_code));
            } else {
                acc.absorb(code);
            }
        }
    }
    outs.into_iter()
        .map(|rows| VecStream::from_coded(rows, key_len))
        .collect()
}

/// Order-preserving many-to-one merge: the tree-of-losers merge over the
/// partition streams.
pub fn merge<S: OvcStream>(inputs: Vec<S>, key_len: usize, stats: &Arc<Stats>) -> TreeOfLosers<S> {
    ovc_sort::merge_streams(inputs, key_len, stats)
}

/// Order-preserving many-to-many shuffle: split every input into
/// `parts_out` ways, then merge column-wise.  (The paper notes real
/// systems usually avoid this form due to deadlock concerns between
/// producer and consumer threads; the data-flow semantics are as below.)
pub fn many_to_many<S, P>(
    inputs: Vec<S>,
    parts_out: usize,
    mut make_part: impl FnMut() -> P,
    stats: &Arc<Stats>,
) -> Vec<VecStream>
where
    S: OvcStream,
    P: FnMut(&Row) -> usize,
{
    let key_len = inputs.first().map(|s| s.key_len()).unwrap_or(0);
    // Split each input; transpose; merge each column of partitions.
    let mut columns: Vec<Vec<VecStream>> = (0..parts_out).map(|_| Vec::new()).collect();
    for input in inputs {
        for (p, stream) in split(input, parts_out, make_part()).into_iter().enumerate() {
            columns[p].push(stream);
        }
    }
    columns
        .into_iter()
        .map(|streams| {
            let merged: Vec<OvcRow> = merge(streams, key_len, stats).collect();
            VecStream::from_coded(merged, key_len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream(n: usize, seed: u64) -> (VecStream, Vec<Row>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..20u64), rng.gen_range(0..20u64)]))
            .collect();
        rows.sort();
        (VecStream::from_sorted_rows(rows.clone(), 2), rows)
    }

    #[test]
    fn split_partitions_are_sorted_and_exact() {
        let (input, rows) = stream(300, 1);
        let parts = split(input, 4, partition::by_hash(1, 4));
        assert_eq!(parts.len(), 4);
        let mut total = 0;
        for p in parts {
            let pairs = collect_pairs(p);
            total += pairs.len();
            assert_codes_exact(&pairs, 2);
        }
        assert_eq!(total, rows.len());
    }

    #[test]
    fn split_then_merge_round_trips() {
        let (input, rows) = stream(500, 2);
        let stats = Stats::new_shared();
        let parts = split(input, 8, partition::by_hash(0, 8));
        let merged = merge(parts, 2, &stats);
        let pairs = collect_pairs(merged);
        assert_codes_exact(&pairs, 2);
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, rows, "shuffle round trip preserves the sorted stream");
    }

    #[test]
    fn range_partition_keeps_global_order_concatenated() {
        let (input, rows) = stream(200, 3);
        let parts = split(input, 3, partition::by_range(vec![7, 14]));
        let mut got: Vec<Row> = Vec::new();
        for p in parts {
            let pairs = collect_pairs(p);
            assert_codes_exact(&pairs, 2);
            got.extend(pairs.into_iter().map(|(r, _)| r));
        }
        // Range partitions concatenate back to the global order.
        assert_eq!(got, rows);
    }

    #[test]
    fn round_robin_split() {
        let (input, rows) = stream(100, 4);
        let parts = split(input, 3, partition::round_robin(3));
        let sizes: Vec<usize> = parts.iter().map(|p| p.size_hint().0).collect();
        assert_eq!(sizes.iter().sum::<usize>(), rows.len());
        assert!(sizes.iter().all(|&s| s >= rows.len() / 3));
    }

    #[test]
    fn many_to_many_shuffle() {
        let (a, mut rows_a) = stream(150, 5);
        let (b, rows_b) = stream(150, 6);
        let stats = Stats::new_shared();
        let outs = many_to_many(vec![a, b], 4, || partition::by_hash(0, 4), &stats);
        let mut total = 0;
        for o in outs {
            let pairs = collect_pairs(o);
            total += pairs.len();
            assert_codes_exact(&pairs, 2);
        }
        rows_a.extend(rows_b);
        assert_eq!(total, rows_a.len());
    }

    #[test]
    fn empty_input_split() {
        let input = VecStream::from_sorted_rows(vec![], 1);
        let parts = split(input, 2, partition::round_robin(2));
        assert!(parts.into_iter().all(|p| p.count() == 0));
    }
}
