//! Run generation.
//!
//! The OVC-native strategy follows Section 3: "run generation merges
//! 'sorted' runs of a single row each" — a tree-of-losers priority queue
//! over single-row inputs whose build-up and tear-down produce a sorted,
//! exactly-coded run.  Offset-value codes decide most comparisons; total
//! column-value comparisons stay within `N × K`.
//!
//! The quicksort strategy is the conventional baseline: sort with full key
//! comparisons, then prime codes in one linear pass (the "comparing …
//! row-by-row, column-by-column" method).  Both feed the external sorter;
//! Figure-level benches compare them.
//!
//! All strategies run over **flat** buffers (DESIGN.md §10): incoming
//! rows are copied once into a contiguous `Vec<u64>` (their boxes freed
//! immediately), the sort permutes indices or tournament entries over
//! that buffer, and the winner sequence is gathered straight into the
//! output run's flat storage.  No boxed row is moved, allocated, or
//! dropped anywhere in the hot loop.

use std::sync::Arc;

use ovc_core::compare::{compare_keys_counted, derive_code, derive_code_spec};
use ovc_core::{FlatRows, Ovc, Row, SortSpec, Stats};

use crate::runs::Run;
use crate::tree::{loser_tree, play_entries, Entry, FENCE_ENTRY};

/// Accumulates incoming rows into one contiguous buffer, fixing the width
/// from the first row and freeing each box as it lands.
struct RowBuffer {
    width: Option<usize>,
    values: Vec<u64>,
    rows: usize,
}

impl RowBuffer {
    fn new() -> Self {
        RowBuffer {
            width: None,
            values: Vec::new(),
            rows: 0,
        }
    }

    fn push(&mut self, row: Row) {
        let width = *self.width.get_or_insert_with(|| row.width());
        assert_eq!(row.width(), width, "run generation requires uniform rows");
        self.values.extend_from_slice(row.cols());
        self.rows += 1;
    }

    /// Take the buffered `(rows, width, values)`, leaving the buffer ready
    /// (same width) for the next run's rows.
    fn take(&mut self) -> (usize, usize, Vec<u64>) {
        let width = self.width.unwrap_or(0);
        let n = std::mem::take(&mut self.rows);
        let cap = self.values.capacity();
        (
            n,
            width,
            std::mem::replace(&mut self.values, Vec::with_capacity(cap)),
        )
    }
}

/// Copy boxed rows into one contiguous buffer, returning `(row count,
/// width, values)`.  Panics unless all rows share one width (streams are
/// homogeneous).
fn flatten_values(rows: Vec<Row>) -> (usize, usize, Vec<u64>) {
    let mut buf = RowBuffer::new();
    for row in rows {
        buf.push(row);
    }
    buf.take()
}

/// Sort one flat buffer into a run under the requested strategy.
fn sort_flat(
    n: usize,
    width: usize,
    values: &[u64],
    spec: &SortSpec,
    strategy: RunGenStrategy,
    stats: &Arc<Stats>,
) -> Run {
    if n == 0 {
        return Run::empty_spec(spec.clone());
    }
    if spec.normalized() {
        return sort_flat_normalized(n, width, values, spec, stats);
    }
    match strategy {
        RunGenStrategy::OvcPriorityQueue => flat_tournament_sort(n, width, values, spec, stats),
        RunGenStrategy::Quicksort => sort_flat_quicksort(n, width, values, spec, stats),
        RunGenStrategy::ReplacementSelection => unreachable!("handled by caller"),
    }
}

/// Sort rows into one run using a tree-of-losers priority queue over
/// single-row inputs.  Codes are a by-product of the tournament.
pub fn sort_rows_ovc(rows: Vec<Row>, key_len: usize, stats: &Arc<Stats>) -> Run {
    sort_rows_ovc_spec(rows, &SortSpec::asc(key_len), stats)
}

/// Direction-aware [`sort_rows_ovc`]: a tree-of-losers over single-row
/// inputs under an arbitrary leading-prefix [`SortSpec`].  When the spec
/// requests normalized-key encoding the rows are instead ordered by
/// comparing order-preserving byte strings (the IBM CFC regime — one
/// normalization pass charged as `N × K` column accesses, then pure byte
/// comparisons) and codes are derived in a linear pass.
pub fn sort_rows_ovc_spec(rows: Vec<Row>, spec: &SortSpec, stats: &Arc<Stats>) -> Run {
    let (n, width, values) = flatten_values(rows);
    sort_flat(
        n,
        width,
        &values,
        spec,
        RunGenStrategy::OvcPriorityQueue,
        stats,
    )
}

/// The single-row tournament of Section 3 over a flat buffer: leaf `i` is
/// row `i` in place; the build-up plays initial codes (each relative to
/// "−∞"), every pop replays one leaf-to-root path of same-base code
/// comparisons, and the winner's columns are copied slice-to-slice into
/// the output run.  Bit-identical comparisons, codes, and counters to the
/// boxed-row formulation it replaces.
fn flat_tournament_sort(
    n: usize,
    width: usize,
    values: &[u64],
    spec: &SortSpec,
    stats: &Arc<Stats>,
) -> Run {
    let k = spec.len();
    let asc = spec.is_asc_prefix();
    let key_of = |e: Entry| -> &[u64] {
        let i = e.run as usize;
        if i < n {
            &values[i * width..i * width + k]
        } else {
            &[]
        }
    };

    let cap = n.next_power_of_two().max(1);
    let mut nodes = vec![FENCE_ENTRY; cap];
    let mut play = |a: Entry, b: Entry| -> (Entry, Entry) {
        play_entries(a, b, key_of(a), key_of(b), spec, asc, stats)
    };
    let mut winner = loser_tree::build(
        &mut nodes,
        cap,
        &mut |r| {
            if r < n {
                spec.initial_code(&values[r * width..r * width + k])
            } else {
                Ovc::LATE_FENCE
            }
        },
        &mut play,
    );

    let mut out = FlatRows::with_capacity(width, n);
    while !winner.code.is_late_fence() {
        let w = winner.run as usize;
        out.push(&values[w * width..(w + 1) * width], winner.code);
        // A single-row input is exhausted after its win: its successor is
        // a permanent late fence.
        let cand = Entry {
            code: Ovc::LATE_FENCE,
            run: w as u32,
        };
        winner = loser_tree::replay(&mut nodes, cap, w, cand, &mut play);
    }
    debug_assert_eq!(out.len(), n);
    Run::from_flat(out, spec.clone())
}

/// Sort rows with stable full-key comparisons over an index permutation,
/// then derive codes in a linear pass while gathering the sorted flat
/// output.  The conventional method the paper improves on.
pub fn sort_rows_quicksort(rows: Vec<Row>, key_len: usize, stats: &Arc<Stats>) -> Run {
    sort_rows_quicksort_spec(rows, &SortSpec::asc(key_len), stats)
}

fn sort_flat_quicksort(
    n: usize,
    width: usize,
    values: &[u64],
    spec: &SortSpec,
    stats: &Arc<Stats>,
) -> Run {
    let k = spec.len();
    let key = |i: u32| -> &[u64] {
        let i = i as usize * width;
        &values[i..i + k]
    };
    let mut idx: Vec<u32> = (0..n as u32).collect();
    if spec.is_asc_prefix() {
        idx.sort_by(|&a, &b| compare_keys_counted(key(a), key(b), stats));
    } else {
        idx.sort_by(|&a, &b| {
            stats.count_row_cmp();
            let (ak, bk) = (key(a), key(b));
            for i in 0..k {
                stats.count_col_cmp();
                match spec.cmp_values(i, ak[i], bk[i]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    gather_with_codes(&idx, width, values, spec, stats)
}

/// Sort by normalized keys: one byte-string encode per row (charged as
/// `key_len` column accesses, the CFC encode cost), a bytewise sort over
/// the index permutation, and a linear code-priming pass during the
/// gather.  Output rows and codes are identical to the column-comparison
/// strategies under the same spec.
fn sort_flat_normalized(
    n: usize,
    width: usize,
    values: &[u64],
    spec: &SortSpec,
    stats: &Arc<Stats>,
) -> Run {
    let k = spec.len();
    stats.count_col_cmps((n * k) as u64);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by_cached_key(|&i| {
        spec.normalize_key(&values[i as usize * width..i as usize * width + k])
    });
    gather_with_codes(&idx, width, values, spec, stats)
}

/// Direction-aware [`sort_rows_quicksort`]: full-key comparisons under
/// the spec over an index permutation, then a linear code-priming pass.
pub fn sort_rows_quicksort_spec(rows: Vec<Row>, spec: &SortSpec, stats: &Arc<Stats>) -> Run {
    let (n, width, values) = flatten_values(rows);
    sort_flat(n, width, &values, spec, RunGenStrategy::Quicksort, stats)
}

/// Gather rows of a flat buffer in `idx` order into a new run, deriving
/// each code against the previous gathered row (first row relative to
/// "−∞").
fn gather_with_codes(
    idx: &[u32],
    width: usize,
    values: &[u64],
    spec: &SortSpec,
    stats: &Arc<Stats>,
) -> Run {
    let k = spec.len();
    let asc = spec.is_asc_prefix();
    let mut out = FlatRows::with_capacity(width, idx.len());
    let mut prev: Option<&[u64]> = None;
    for &i in idx {
        let row = &values[i as usize * width..(i as usize + 1) * width];
        let code = match prev {
            None => spec.initial_code(&row[..k]),
            Some(p) if asc => derive_code(p, &row[..k], stats),
            Some(p) => derive_code_spec(p, &row[..k], spec, stats),
        };
        out.push(row, code);
        prev = Some(&row[..k]);
    }
    Run::from_flat(out, spec.clone())
}

/// How initial runs are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunGenStrategy {
    /// Tree-of-losers over single-row runs (OVC-native, Section 3).
    OvcPriorityQueue,
    /// Quicksort plus a linear code-priming pass (baseline).
    Quicksort,
    /// Replacement selection: runs of ~2× memory expected length
    /// (Section 3, "one additional comparison per input row doubles the
    /// expected run size").
    ReplacementSelection,
}

/// Generate initial runs from an arbitrary input, each holding at most
/// `memory_rows` rows (replacement selection produces longer runs from the
/// same memory budget).
pub fn generate_runs<I>(
    input: I,
    key_len: usize,
    memory_rows: usize,
    strategy: RunGenStrategy,
    stats: &Arc<Stats>,
) -> Vec<Run>
where
    I: IntoIterator<Item = Row>,
{
    assert!(memory_rows > 0, "memory budget must hold at least one row");
    if strategy == RunGenStrategy::ReplacementSelection {
        return crate::replacement::generate_runs_replacement(input, key_len, memory_rows, stats);
    }
    generate_runs_flat(input, &SortSpec::asc(key_len), memory_rows, strategy, stats)
}

/// The shared flat-buffered loop: rows land straight in a contiguous
/// buffer (one copy, boxes freed on arrival) which each full window sorts
/// in place.
fn generate_runs_flat<I>(
    input: I,
    spec: &SortSpec,
    memory_rows: usize,
    strategy: RunGenStrategy,
    stats: &Arc<Stats>,
) -> Vec<Run>
where
    I: IntoIterator<Item = Row>,
{
    let mut runs = Vec::new();
    let mut buffer = RowBuffer::new();
    for row in input {
        buffer.push(row);
        if buffer.rows == memory_rows {
            let (n, width, values) = buffer.take();
            runs.push(sort_flat(n, width, &values, spec, strategy, stats));
        }
    }
    if buffer.rows > 0 {
        let (n, width, values) = buffer.take();
        runs.push(sort_flat(n, width, &values, spec, strategy, stats));
    }
    runs
}

/// Direction-aware [`generate_runs`]: initial runs ordered under `spec`.
///
/// Replacement selection is an ascending-prefix-only strategy (its heap
/// logic has not been spec-plumbed); requesting it with any other spec
/// panics rather than silently mis-sorting.
pub fn generate_runs_spec<I>(
    input: I,
    spec: &SortSpec,
    memory_rows: usize,
    strategy: RunGenStrategy,
    stats: &Arc<Stats>,
) -> Vec<Run>
where
    I: IntoIterator<Item = Row>,
{
    assert!(memory_rows > 0, "memory budget must hold at least one row");
    assert!(
        spec.is_prefix(),
        "run generation requires a leading-prefix sort spec, got {spec}"
    );
    if spec.is_asc_prefix() && !spec.normalized() {
        return generate_runs(input, spec.len(), memory_rows, strategy, stats);
    }
    assert!(
        strategy != RunGenStrategy::ReplacementSelection,
        "replacement selection supports ascending-prefix specs only"
    );
    generate_runs_flat(input, spec, memory_rows, strategy, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, k: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new((0..k).map(|_| rng.gen_range(0..domain)).collect()))
            .collect()
    }

    fn check_run(run: &Run, rows: &[Row], key_len: usize) {
        let pairs: Vec<(Row, Ovc)> = run.iter().map(|(r, c)| (Row::from_slice(r), c)).collect();
        assert_codes_exact(&pairs, key_len);
        let mut expect: Vec<Row> = rows.to_vec();
        expect.sort();
        let mut got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        got.sort();
        assert_eq!(got, expect, "sorted output must be a permutation of input");
    }

    #[test]
    fn ovc_sort_produces_sorted_exact_run() {
        let rows = random_rows(200, 3, 5, 1);
        let stats = Stats::new_shared();
        let run = sort_rows_ovc(rows.clone(), 3, &stats);
        assert_eq!(run.len(), 200);
        check_run(&run, &rows, 3);
        assert!(
            stats.col_value_cmps() <= 200 * 3,
            "N*K bound violated: {}",
            stats.col_value_cmps()
        );
    }

    #[test]
    fn quicksort_matches_ovc_sort_order() {
        let rows = random_rows(150, 2, 8, 2);
        let stats = Stats::new_shared();
        let a = sort_rows_ovc(rows.clone(), 2, &stats);
        let b = sort_rows_quicksort(rows, 2, &stats);
        // Byte-identical rows and codes, since both are determined by the
        // data alone.
        assert_eq!(a.flat(), b.flat());
    }

    #[test]
    fn generate_runs_respects_memory() {
        let rows = random_rows(105, 2, 4, 3);
        let stats = Stats::new_shared();
        let runs = generate_runs(rows, 2, 25, RunGenStrategy::OvcPriorityQueue, &stats);
        assert_eq!(runs.len(), 5); // 4 full + 1 partial
        assert_eq!(runs.iter().map(Run::len).sum::<usize>(), 105);
        assert!(runs[..4].iter().all(|r| r.len() == 25));
        assert_eq!(runs[4].len(), 5);
    }

    #[test]
    fn empty_input_yields_no_runs() {
        let stats = Stats::new_shared();
        let runs = generate_runs(Vec::<Row>::new(), 2, 10, RunGenStrategy::Quicksort, &stats);
        assert!(runs.is_empty());
        assert!(sort_rows_ovc(vec![], 2, &stats).is_empty());
    }

    #[test]
    fn sort_all_duplicates() {
        let rows = vec![Row::new(vec![3, 3]); 40];
        let stats = Stats::new_shared();
        let run = sort_rows_ovc(rows.clone(), 2, &stats);
        check_run(&run, &rows, 2);
        assert!(run.iter().skip(1).all(|(_, c)| c.is_duplicate()));
    }

    #[test]
    fn sort_single_row() {
        let stats = Stats::new_shared();
        let run = sort_rows_ovc(vec![Row::new(vec![9])], 1, &stats);
        assert_eq!(run.len(), 1);
        assert_eq!(run.code(0), Ovc::new(0, 9, 1));
    }

    #[test]
    fn ovc_sort_uses_fewer_column_comparisons_than_quicksort() {
        // The headline effect: with many rows and few distinct values,
        // OVC-based sorting does far fewer column-value comparisons.
        let rows = random_rows(2000, 4, 3, 7);
        let s_ovc = Stats::new_shared();
        let s_qs = Stats::new_shared();
        let _ = sort_rows_ovc(rows.clone(), 4, &s_ovc);
        let _ = sort_rows_quicksort(rows, 4, &s_qs);
        assert!(
            s_ovc.col_value_cmps() < s_qs.col_value_cmps() / 2,
            "ovc {} vs quicksort {}",
            s_ovc.col_value_cmps(),
            s_qs.col_value_cmps()
        );
    }

    #[test]
    #[should_panic(expected = "uniform rows")]
    fn mixed_width_rows_are_rejected() {
        let stats = Stats::new_shared();
        let _ = sort_rows_ovc(vec![Row::new(vec![1, 2]), Row::new(vec![1])], 1, &stats);
    }
}
