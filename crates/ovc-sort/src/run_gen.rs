//! Run generation.
//!
//! The OVC-native strategy follows Section 3: "run generation merges
//! 'sorted' runs of a single row each" — a tree-of-losers priority queue
//! over single-row inputs whose build-up and tear-down produce a sorted,
//! exactly-coded run.  Offset-value codes decide most comparisons; total
//! column-value comparisons stay within `N × K`.
//!
//! The quicksort strategy is the conventional baseline: sort with full key
//! comparisons, then prime codes in one linear pass (the "comparing …
//! row-by-row, column-by-column" method).  Both feed the external sorter;
//! Figure-level benches compare them.

use std::rc::Rc;

use ovc_core::derive::{derive_codes_counted, derive_codes_spec_counted};
use ovc_core::{compare::compare_keys_counted, Row, SortSpec, Stats};

use crate::runs::{Run, SingleRow};
use crate::tree::TreeOfLosers;

/// Sort rows into one run using a tree-of-losers priority queue over
/// single-row inputs.  Codes are a by-product of the tournament.
pub fn sort_rows_ovc(rows: Vec<Row>, key_len: usize, stats: &Rc<Stats>) -> Run {
    if rows.is_empty() {
        return Run::empty(key_len);
    }
    let singles: Vec<SingleRow> = rows
        .into_iter()
        .map(|r| SingleRow::new(r, key_len))
        .collect();
    let tree = TreeOfLosers::new(singles, key_len, Rc::clone(stats));
    Run::from_coded(tree.collect(), key_len)
}

/// Sort rows with `sort_unstable_by` full-key comparisons, then derive
/// codes in a linear pass.  The conventional method the paper improves on.
pub fn sort_rows_quicksort(mut rows: Vec<Row>, key_len: usize, stats: &Rc<Stats>) -> Run {
    rows.sort_by(|a, b| compare_keys_counted(a.key(key_len), b.key(key_len), stats));
    let codes = derive_codes_counted(&rows, key_len, stats);
    let coded = rows
        .into_iter()
        .zip(codes)
        .map(|(row, code)| ovc_core::OvcRow::new(row, code))
        .collect();
    Run::from_coded(coded, key_len)
}

/// Direction-aware [`sort_rows_ovc`]: a tree-of-losers over single-row
/// inputs under an arbitrary leading-prefix [`SortSpec`].  When the spec
/// requests normalized-key encoding the rows are instead ordered by
/// comparing order-preserving byte strings (the IBM CFC regime — one
/// normalization pass charged as `N × K` column accesses, then pure byte
/// comparisons) and codes are derived in a linear pass.
pub fn sort_rows_ovc_spec(rows: Vec<Row>, spec: &SortSpec, stats: &Rc<Stats>) -> Run {
    if rows.is_empty() {
        return Run::empty_spec(spec.clone());
    }
    if spec.normalized() {
        return sort_rows_normalized(rows, spec, stats);
    }
    let singles: Vec<SingleRow> = rows
        .into_iter()
        .map(|r| SingleRow::new_spec(r, spec))
        .collect();
    let tree = TreeOfLosers::new_spec(singles, spec.clone(), Rc::clone(stats));
    Run::from_coded_spec(tree.collect(), spec.clone())
}

/// Sort by normalized keys: one byte-string encode per row (charged as
/// `key_len` column accesses, the CFC encode cost), a bytewise sort, and
/// a linear code-priming pass.  Output rows and codes are identical to
/// the column-comparison strategies under the same spec.
fn sort_rows_normalized(mut rows: Vec<Row>, spec: &SortSpec, stats: &Rc<Stats>) -> Run {
    let k = spec.len();
    stats.count_col_cmps((rows.len() * k) as u64);
    rows.sort_by_cached_key(|r| spec.normalize_key(r.key(k)));
    let codes = derive_codes_spec_counted(&rows, spec, stats);
    let coded = rows
        .into_iter()
        .zip(codes)
        .map(|(row, code)| ovc_core::OvcRow::new(row, code))
        .collect();
    Run::from_coded_spec(coded, spec.clone())
}

/// How initial runs are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunGenStrategy {
    /// Tree-of-losers over single-row runs (OVC-native, Section 3).
    OvcPriorityQueue,
    /// Quicksort plus a linear code-priming pass (baseline).
    Quicksort,
    /// Replacement selection: runs of ~2× memory expected length
    /// (Section 3, "one additional comparison per input row doubles the
    /// expected run size").
    ReplacementSelection,
}

/// Generate initial runs from an arbitrary input, each holding at most
/// `memory_rows` rows (replacement selection produces longer runs from the
/// same memory budget).
pub fn generate_runs<I>(
    input: I,
    key_len: usize,
    memory_rows: usize,
    strategy: RunGenStrategy,
    stats: &Rc<Stats>,
) -> Vec<Run>
where
    I: IntoIterator<Item = Row>,
{
    assert!(memory_rows > 0, "memory budget must hold at least one row");
    if strategy == RunGenStrategy::ReplacementSelection {
        return crate::replacement::generate_runs_replacement(input, key_len, memory_rows, stats);
    }
    let mut runs = Vec::new();
    let mut buffer: Vec<Row> = Vec::with_capacity(memory_rows);
    for row in input {
        buffer.push(row);
        if buffer.len() == memory_rows {
            runs.push(sort_buffer(
                std::mem::take(&mut buffer),
                key_len,
                strategy,
                stats,
            ));
            buffer.reserve(memory_rows);
        }
    }
    if !buffer.is_empty() {
        runs.push(sort_buffer(buffer, key_len, strategy, stats));
    }
    runs
}

fn sort_buffer(rows: Vec<Row>, key_len: usize, strategy: RunGenStrategy, stats: &Rc<Stats>) -> Run {
    match strategy {
        RunGenStrategy::OvcPriorityQueue => sort_rows_ovc(rows, key_len, stats),
        RunGenStrategy::Quicksort => sort_rows_quicksort(rows, key_len, stats),
        RunGenStrategy::ReplacementSelection => unreachable!("handled by caller"),
    }
}

/// Direction-aware [`generate_runs`]: initial runs ordered under `spec`.
///
/// Replacement selection is an ascending-prefix-only strategy (its heap
/// logic has not been spec-plumbed); requesting it with any other spec
/// panics rather than silently mis-sorting.
pub fn generate_runs_spec<I>(
    input: I,
    spec: &SortSpec,
    memory_rows: usize,
    strategy: RunGenStrategy,
    stats: &Rc<Stats>,
) -> Vec<Run>
where
    I: IntoIterator<Item = Row>,
{
    assert!(memory_rows > 0, "memory budget must hold at least one row");
    assert!(
        spec.is_prefix(),
        "run generation requires a leading-prefix sort spec, got {spec}"
    );
    if spec.is_asc_prefix() && !spec.normalized() {
        return generate_runs(input, spec.len(), memory_rows, strategy, stats);
    }
    assert!(
        strategy != RunGenStrategy::ReplacementSelection,
        "replacement selection supports ascending-prefix specs only"
    );
    let mut runs = Vec::new();
    let mut buffer: Vec<Row> = Vec::with_capacity(memory_rows);
    for row in input {
        buffer.push(row);
        if buffer.len() == memory_rows {
            runs.push(sort_buffer_spec(
                std::mem::take(&mut buffer),
                spec,
                strategy,
                stats,
            ));
            buffer.reserve(memory_rows);
        }
    }
    if !buffer.is_empty() {
        runs.push(sort_buffer_spec(buffer, spec, strategy, stats));
    }
    runs
}

fn sort_buffer_spec(
    rows: Vec<Row>,
    spec: &SortSpec,
    strategy: RunGenStrategy,
    stats: &Rc<Stats>,
) -> Run {
    match strategy {
        RunGenStrategy::OvcPriorityQueue => sort_rows_ovc_spec(rows, spec, stats),
        RunGenStrategy::Quicksort => sort_rows_quicksort_spec(rows, spec, stats),
        RunGenStrategy::ReplacementSelection => unreachable!("rejected by caller"),
    }
}

/// Direction-aware [`sort_rows_quicksort`]: full-key comparisons under
/// the spec, then a linear code-priming pass.
pub fn sort_rows_quicksort_spec(mut rows: Vec<Row>, spec: &SortSpec, stats: &Rc<Stats>) -> Run {
    if spec.normalized() {
        return sort_rows_normalized(rows, spec, stats);
    }
    let k = spec.len();
    rows.sort_by(|a, b| {
        stats.count_row_cmp();
        for i in 0..k {
            stats.count_col_cmp();
            match spec.cmp_values(i, a.key(k)[i], b.key(k)[i]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    let codes = derive_codes_spec_counted(&rows, spec, stats);
    let coded = rows
        .into_iter()
        .zip(codes)
        .map(|(row, code)| ovc_core::OvcRow::new(row, code))
        .collect();
    Run::from_coded_spec(coded, spec.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::Ovc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, k: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new((0..k).map(|_| rng.gen_range(0..domain)).collect()))
            .collect()
    }

    fn check_run(run: &Run, rows: &[Row], key_len: usize) {
        let pairs: Vec<(Row, Ovc)> = run.rows().iter().map(|r| (r.row.clone(), r.code)).collect();
        assert_codes_exact(&pairs, key_len);
        let mut expect: Vec<Row> = rows.to_vec();
        expect.sort();
        let mut got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        got.sort();
        assert_eq!(got, expect, "sorted output must be a permutation of input");
    }

    #[test]
    fn ovc_sort_produces_sorted_exact_run() {
        let rows = random_rows(200, 3, 5, 1);
        let stats = Stats::new_shared();
        let run = sort_rows_ovc(rows.clone(), 3, &stats);
        assert_eq!(run.len(), 200);
        check_run(&run, &rows, 3);
        assert!(
            stats.col_value_cmps() <= 200 * 3,
            "N*K bound violated: {}",
            stats.col_value_cmps()
        );
    }

    #[test]
    fn quicksort_matches_ovc_sort_order() {
        let rows = random_rows(150, 2, 8, 2);
        let stats = Stats::new_shared();
        let a = sort_rows_ovc(rows.clone(), 2, &stats);
        let b = sort_rows_quicksort(rows, 2, &stats);
        let keys = |run: &Run| -> Vec<Vec<u64>> {
            run.rows().iter().map(|r| r.row.key(2).to_vec()).collect()
        };
        assert_eq!(keys(&a), keys(&b));
        // And byte-identical codes, since codes are determined by the data.
        let codes = |run: &Run| -> Vec<Ovc> { run.rows().iter().map(|r| r.code).collect() };
        assert_eq!(codes(&a), codes(&b));
    }

    #[test]
    fn generate_runs_respects_memory() {
        let rows = random_rows(105, 2, 4, 3);
        let stats = Stats::new_shared();
        let runs = generate_runs(rows, 2, 25, RunGenStrategy::OvcPriorityQueue, &stats);
        assert_eq!(runs.len(), 5); // 4 full + 1 partial
        assert_eq!(runs.iter().map(Run::len).sum::<usize>(), 105);
        assert!(runs[..4].iter().all(|r| r.len() == 25));
        assert_eq!(runs[4].len(), 5);
    }

    #[test]
    fn empty_input_yields_no_runs() {
        let stats = Stats::new_shared();
        let runs = generate_runs(Vec::<Row>::new(), 2, 10, RunGenStrategy::Quicksort, &stats);
        assert!(runs.is_empty());
        assert!(sort_rows_ovc(vec![], 2, &stats).is_empty());
    }

    #[test]
    fn sort_all_duplicates() {
        let rows = vec![Row::new(vec![3, 3]); 40];
        let stats = Stats::new_shared();
        let run = sort_rows_ovc(rows.clone(), 2, &stats);
        check_run(&run, &rows, 2);
        assert!(run.rows()[1..].iter().all(|r| r.code.is_duplicate()));
    }

    #[test]
    fn sort_single_row() {
        let stats = Stats::new_shared();
        let run = sort_rows_ovc(vec![Row::new(vec![9])], 1, &stats);
        assert_eq!(run.len(), 1);
        assert_eq!(run.rows()[0].code, Ovc::new(0, 9, 1));
    }

    #[test]
    fn ovc_sort_uses_fewer_column_comparisons_than_quicksort() {
        // The headline effect: with many rows and few distinct values,
        // OVC-based sorting does far fewer column-value comparisons.
        let rows = random_rows(2000, 4, 3, 7);
        let s_ovc = Stats::new_shared();
        let s_qs = Stats::new_shared();
        let _ = sort_rows_ovc(rows.clone(), 4, &s_ovc);
        let _ = sort_rows_quicksort(rows, 4, &s_qs);
        assert!(
            s_ovc.col_value_cmps() < s_qs.col_value_cmps() / 2,
            "ovc {} vs quicksort {}",
            s_ovc.col_value_cmps(),
            s_qs.col_value_cmps()
        );
    }
}
