//! Multi-way merge of sorted, coded inputs.
//!
//! Thin wrappers over the tree-of-losers engines: merging consumes
//! offset-value codes from its inputs and produces exact codes in its
//! output — the property every downstream operator in this reproduction
//! relies on.  Runs merge on the flat path ([`FlatMerge`]: rows stay in
//! their contiguous buffers, winners copy slice-to-slice); arbitrary coded
//! streams merge through the generic [`TreeOfLosers`].  The same merge
//! logic serves external sort steps, order-preserving "merging" exchange
//! (Section 4.10), and LSM-forest scans and compaction (Section 4.11).

use std::sync::Arc;

use ovc_core::{OvcStream, SortSpec, Stats};

use crate::runs::Run;
use crate::tree::{FlatMerge, TreeOfLosers};

/// Merge in-memory flat runs into one coded output stream (allocation-free
/// until the stream materializes rows; use [`FlatMerge::into_run`] to stay
/// flat end-to-end).
pub fn merge_runs(runs: Vec<Run>, key_len: usize, stats: &Arc<Stats>) -> FlatMerge {
    merge_runs_spec_owned(runs, SortSpec::asc(key_len), stats)
}

/// Merge runs ordered under an arbitrary [`SortSpec`].
pub fn merge_runs_spec(runs: Vec<Run>, spec: &SortSpec, stats: &Arc<Stats>) -> FlatMerge {
    merge_runs_spec_owned(runs, spec.clone(), stats)
}

fn merge_runs_spec_owned(runs: Vec<Run>, spec: SortSpec, stats: &Arc<Stats>) -> FlatMerge {
    debug_assert!(runs.iter().all(|r| r.sort_spec() == &spec));
    FlatMerge::new(runs, spec, Arc::clone(stats))
}

/// Merge coded streams ordered under an arbitrary [`SortSpec`].
pub fn merge_streams_spec<S: OvcStream>(
    inputs: Vec<S>,
    spec: &SortSpec,
    stats: &Arc<Stats>,
) -> TreeOfLosers<S> {
    debug_assert!(inputs.iter().all(|s| s.sort_spec() == *spec));
    TreeOfLosers::new_spec(inputs, spec.clone(), Arc::clone(stats))
}

/// Spec-aware [`merge_runs_to_run`].
pub fn merge_runs_to_run_spec(runs: Vec<Run>, spec: &SortSpec, stats: &Arc<Stats>) -> Run {
    merge_runs_spec(runs, spec, stats).into_run()
}

/// Merge arbitrary coded streams (all sorted on the same key prefix).
pub fn merge_streams<S: OvcStream>(
    inputs: Vec<S>,
    key_len: usize,
    stats: &Arc<Stats>,
) -> TreeOfLosers<S> {
    debug_assert!(inputs.iter().all(|s| s.key_len() == key_len));
    TreeOfLosers::new(inputs, key_len, Arc::clone(stats))
}

/// Merge runs and materialize the result as a single flat run (used by
/// intermediate external-merge steps and LSM compaction) — winner rows
/// copy straight between contiguous buffers, no boxed row anywhere.
pub fn merge_runs_to_run(runs: Vec<Run>, key_len: usize, stats: &Arc<Stats>) -> Run {
    merge_runs(runs, key_len, stats).into_run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::{Ovc, Row};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn merge_runs_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut runs = Vec::new();
        let mut all: Vec<Row> = Vec::new();
        for _ in 0..5 {
            let mut rows: Vec<Row> = (0..50)
                .map(|_| Row::new(vec![rng.gen_range(0..10u64), rng.gen_range(0..10u64)]))
                .collect();
            rows.sort();
            all.extend(rows.iter().cloned());
            runs.push(Run::from_sorted_rows(rows, 2));
        }
        let stats = Stats::new_shared();
        let merged = merge_runs_to_run(runs, 2, &stats);
        assert_eq!(merged.len(), 250);
        let pairs: Vec<(Row, Ovc)> = merged
            .iter()
            .map(|(r, c)| (Row::from_slice(r), c))
            .collect();
        assert_codes_exact(&pairs, 2);
        all.sort();
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, all);
    }

    #[test]
    fn flat_merge_stream_equals_cursor_merge() {
        // The flat merge and the generic cursor-based tree must agree row
        // for row and code for code (same tournament, different storage).
        let mut rng = StdRng::seed_from_u64(9);
        let mut runs = Vec::new();
        for _ in 0..4 {
            let mut rows: Vec<Row> = (0..40)
                .map(|_| Row::new(vec![rng.gen_range(0..6u64), rng.gen()]))
                .collect();
            rows.sort();
            runs.push(Run::from_sorted_rows(rows, 1));
        }
        let stats = Stats::new_shared();
        let via_cursors: Vec<_> = TreeOfLosers::new(
            runs.iter().map(|r| r.clone().cursor()).collect(),
            1,
            Arc::clone(&stats),
        )
        .collect();
        let via_flat: Vec<_> = merge_runs(runs, 1, &stats).collect();
        assert_eq!(via_cursors, via_flat);
    }

    #[test]
    fn merge_no_runs_is_empty() {
        let stats = Stats::new_shared();
        assert!(merge_runs_to_run(vec![], 1, &stats).is_empty());
    }
}
