//! Multi-way merge of sorted, coded inputs.
//!
//! Thin wrappers over [`TreeOfLosers`]: merging consumes offset-value codes
//! from its inputs and produces exact codes in its output — the property
//! every downstream operator in this reproduction relies on.  The same
//! merge logic serves external sort steps, order-preserving "merging"
//! exchange (Section 4.10), and LSM-forest scans and compaction
//! (Section 4.11).

use std::rc::Rc;

use ovc_core::{OvcRow, OvcStream, SortSpec, Stats};

use crate::runs::{Run, RunCursor};
use crate::tree::TreeOfLosers;

/// Merge in-memory runs into one coded output stream.
pub fn merge_runs(runs: Vec<Run>, key_len: usize, stats: &Rc<Stats>) -> TreeOfLosers<RunCursor> {
    debug_assert!(runs.iter().all(|r| r.key_len() == key_len));
    let cursors: Vec<RunCursor> = runs.into_iter().map(Run::cursor).collect();
    TreeOfLosers::new(cursors, key_len, Rc::clone(stats))
}

/// Merge runs ordered under an arbitrary [`SortSpec`].
pub fn merge_runs_spec(
    runs: Vec<Run>,
    spec: &SortSpec,
    stats: &Rc<Stats>,
) -> TreeOfLosers<RunCursor> {
    debug_assert!(runs.iter().all(|r| r.sort_spec() == spec));
    let cursors: Vec<RunCursor> = runs.into_iter().map(Run::cursor).collect();
    TreeOfLosers::new_spec(cursors, spec.clone(), Rc::clone(stats))
}

/// Merge coded streams ordered under an arbitrary [`SortSpec`].
pub fn merge_streams_spec<S: OvcStream>(
    inputs: Vec<S>,
    spec: &SortSpec,
    stats: &Rc<Stats>,
) -> TreeOfLosers<S> {
    debug_assert!(inputs.iter().all(|s| s.sort_spec() == *spec));
    TreeOfLosers::new_spec(inputs, spec.clone(), Rc::clone(stats))
}

/// Spec-aware [`merge_runs_to_run`].
pub fn merge_runs_to_run_spec(runs: Vec<Run>, spec: &SortSpec, stats: &Rc<Stats>) -> Run {
    let merged: Vec<OvcRow> = merge_runs_spec(runs, spec, stats).collect();
    Run::from_coded_spec(merged, spec.clone())
}

/// Merge arbitrary coded streams (all sorted on the same key prefix).
pub fn merge_streams<S: OvcStream>(
    inputs: Vec<S>,
    key_len: usize,
    stats: &Rc<Stats>,
) -> TreeOfLosers<S> {
    debug_assert!(inputs.iter().all(|s| s.key_len() == key_len));
    TreeOfLosers::new(inputs, key_len, Rc::clone(stats))
}

/// Merge runs and materialize the result as a single run (used by
/// intermediate external-merge steps and LSM compaction).
pub fn merge_runs_to_run(runs: Vec<Run>, key_len: usize, stats: &Rc<Stats>) -> Run {
    let merged: Vec<OvcRow> = merge_runs(runs, key_len, stats).collect();
    Run::from_coded(merged, key_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::{Ovc, Row};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn merge_runs_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut runs = Vec::new();
        let mut all: Vec<Row> = Vec::new();
        for _ in 0..5 {
            let mut rows: Vec<Row> = (0..50)
                .map(|_| Row::new(vec![rng.gen_range(0..10u64), rng.gen_range(0..10u64)]))
                .collect();
            rows.sort();
            all.extend(rows.iter().cloned());
            runs.push(Run::from_sorted_rows(rows, 2));
        }
        let stats = Stats::new_shared();
        let merged = merge_runs_to_run(runs, 2, &stats);
        assert_eq!(merged.len(), 250);
        let pairs: Vec<(Row, Ovc)> = merged
            .rows()
            .iter()
            .map(|r| (r.row.clone(), r.code))
            .collect();
        assert_codes_exact(&pairs, 2);
        all.sort();
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, all);
    }

    #[test]
    fn merge_no_runs_is_empty() {
        let stats = Stats::new_shared();
        assert!(merge_runs_to_run(vec![], 1, &stats).is_empty());
    }
}
