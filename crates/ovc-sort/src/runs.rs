//! Sorted runs: the unit of work for run generation, merging, and spilling.
//!
//! A [`Run`] is a sorted sequence of rows whose offset-value codes are
//! exact relative to each row's predecessor within the run — the in-memory
//! equivalent of the paper's prefix-truncation-encoded runs ("input runs
//! are encoded with prefixes truncated", Section 3).  "Offset-value codes
//! for rows in sorted runs are a byproduct of run generation.  These
//! offset-value codes later improve the efficiency of merging"
//! (Section 5).

use ovc_core::derive::{derive_codes, derive_codes_spec};
use ovc_core::{Ovc, OvcRow, OvcStream, Row, SortSpec};

/// A sorted, coded, in-memory run.
#[derive(Clone, Debug)]
pub struct Run {
    rows: Vec<OvcRow>,
    spec: SortSpec,
}

impl Run {
    /// Wrap rows that already carry exact codes (e.g. merge output).
    /// Debug builds verify the contract.
    pub fn from_coded(rows: Vec<OvcRow>, key_len: usize) -> Self {
        Self::from_coded_spec(rows, SortSpec::asc(key_len))
    }

    /// Wrap rows coded under an explicit [`SortSpec`].  Debug builds
    /// verify the spec's stream contract.
    pub fn from_coded_spec(rows: Vec<OvcRow>, spec: SortSpec) -> Self {
        #[cfg(debug_assertions)]
        {
            let pairs: Vec<(Row, Ovc)> = rows.iter().map(|r| (r.row.clone(), r.code)).collect();
            if let Some(i) = ovc_core::derive::find_code_violation_spec(&pairs, &spec) {
                panic!("Run::from_coded: code violation at row {i} under {spec}");
            }
        }
        Run { rows, spec }
    }

    /// Derive codes for an already-sorted row vector.
    pub fn from_sorted_rows(rows: Vec<Row>, key_len: usize) -> Self {
        debug_assert!(ovc_core::derive::is_sorted(&rows, key_len));
        let codes = derive_codes(&rows, key_len);
        let rows = rows
            .into_iter()
            .zip(codes)
            .map(|(row, code)| OvcRow::new(row, code))
            .collect();
        Run {
            rows,
            spec: SortSpec::asc(key_len),
        }
    }

    /// Derive codes for rows already ordered under `spec`.
    pub fn from_sorted_rows_spec(rows: Vec<Row>, spec: SortSpec) -> Self {
        debug_assert!(ovc_core::derive::is_sorted_spec(&rows, &spec));
        let codes = derive_codes_spec(&rows, &spec);
        let rows = rows
            .into_iter()
            .zip(codes)
            .map(|(row, code)| OvcRow::new(row, code))
            .collect();
        Run { rows, spec }
    }

    /// An empty run.
    pub fn empty(key_len: usize) -> Self {
        Self::empty_spec(SortSpec::asc(key_len))
    }

    /// An empty run under an explicit spec.
    pub fn empty_spec(spec: SortSpec) -> Self {
        Run {
            rows: Vec::new(),
            spec,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the run empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sort-key arity of the run's codes.
    pub fn key_len(&self) -> usize {
        self.spec.len()
    }

    /// The ordering contract the run's rows and codes follow.
    pub fn sort_spec(&self) -> &SortSpec {
        &self.spec
    }

    /// Borrow the coded rows.
    pub fn rows(&self) -> &[OvcRow] {
        &self.rows
    }

    /// Consume into the coded rows.
    pub fn into_rows(self) -> Vec<OvcRow> {
        self.rows
    }

    /// A consuming cursor for merging.
    pub fn cursor(self) -> RunCursor {
        RunCursor {
            iter: self.rows.into_iter(),
            spec: self.spec,
        }
    }

    /// Total payload bytes a spill of this run would write (8 bytes per
    /// column plus the 8-byte code per row) — used for I/O accounting.
    pub fn spill_bytes(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| (r.row.width() as u64 + 1) * 8)
            .sum()
    }
}

/// Consuming cursor over a run's coded rows.
pub struct RunCursor {
    iter: std::vec::IntoIter<OvcRow>,
    spec: SortSpec,
}

impl Iterator for RunCursor {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.iter.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl OvcStream for RunCursor {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// A cursor over exactly one row — run generation "merges 'sorted' runs of
/// a single row each" (Section 3).  The row is coded relative to "−∞".
pub struct SingleRow {
    row: Option<OvcRow>,
}

impl SingleRow {
    /// Wrap one row, priming its code (the only column-value access the
    /// whole sort needs in the best case — see Section 7's "extreme case
    /// with a unique first column").
    pub fn new(row: Row, key_len: usize) -> Self {
        let code = Ovc::initial(row.key(key_len));
        SingleRow {
            row: Some(OvcRow::new(row, code)),
        }
    }

    /// Wrap one row priming its code under `spec` (direction-encoded
    /// initial value).
    pub fn new_spec(row: Row, spec: &SortSpec) -> Self {
        let code = spec.initial_code(row.key(spec.len()));
        SingleRow {
            row: Some(OvcRow::new(row, code)),
        }
    }
}

impl Iterator for SingleRow {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.row.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_from_sorted_rows() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        assert_eq!(run.len(), 7);
        assert!(!run.is_empty());
        assert_eq!(run.key_len(), 4);
        let codes: Vec<Ovc> = run.rows().iter().map(|r| r.code).collect();
        assert_eq!(codes, ovc_core::table1::asc_codes());
    }

    #[test]
    fn cursor_yields_all_rows() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        let n = run.len();
        assert_eq!(run.cursor().count(), n);
    }

    #[test]
    fn spill_bytes_counts_columns_and_code() {
        let run = Run::from_sorted_rows(vec![Row::new(vec![1, 2, 3])], 2);
        // 3 columns + 1 code word = 32 bytes.
        assert_eq!(run.spill_bytes(), 32);
        assert_eq!(Run::empty(2).spill_bytes(), 0);
    }

    #[test]
    fn single_row_cursor() {
        let mut c = SingleRow::new(Row::new(vec![7, 8]), 2);
        let r = c.next().unwrap();
        assert_eq!(r.code, Ovc::new(0, 7, 2));
        assert!(c.next().is_none());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "code violation")]
    fn from_coded_rejects_bad_codes() {
        let rows = vec![
            OvcRow::new(Row::new(vec![1]), Ovc::new(0, 1, 1)),
            OvcRow::new(Row::new(vec![2]), Ovc::duplicate()), // wrong
        ];
        let _ = Run::from_coded(rows, 1);
    }
}
