//! Sorted runs: the unit of work for run generation, merging, and spilling.
//!
//! A [`Run`] is a sorted sequence of rows whose offset-value codes are
//! exact relative to each row's predecessor within the run — the in-memory
//! equivalent of the paper's prefix-truncation-encoded runs ("input runs
//! are encoded with prefixes truncated", Section 3).  "Offset-value codes
//! for rows in sorted runs are a byproduct of run generation.  These
//! offset-value codes later improve the efficiency of merging"
//! (Section 5).
//!
//! Since the flat-layout refactor (DESIGN.md §10) a run stores its rows in
//! one contiguous [`FlatRows`] buffer — fixed row width, values and codes
//! in parallel vectors — instead of a `Vec` of boxed rows.  Merging reads
//! each run sequentially in place and copies winner rows slice-to-slice;
//! [`OvcRow`]s are materialized only at stream boundaries ([`RunCursor`]).

use ovc_core::derive::{derive_codes, derive_codes_spec};
use ovc_core::{BatchStream, FlatRows, Ovc, OvcRow, OvcStream, Row, SortSpec};

/// A sorted, coded, in-memory run in flat columnar layout.
#[derive(Clone, Debug)]
pub struct Run {
    flat: FlatRows,
    spec: SortSpec,
}

impl Run {
    /// Wrap rows that already carry exact codes (e.g. merge output),
    /// flattening them into the contiguous layout.  Debug builds verify
    /// the contract.
    pub fn from_coded(rows: Vec<OvcRow>, key_len: usize) -> Self {
        Self::from_coded_spec(rows, SortSpec::asc(key_len))
    }

    /// Wrap rows coded under an explicit [`SortSpec`].  Debug builds
    /// verify the spec's stream contract.
    pub fn from_coded_spec(rows: Vec<OvcRow>, spec: SortSpec) -> Self {
        Self::from_flat(FlatRows::from_ovc_rows(rows, spec.len()), spec)
    }

    /// Wrap an already-coded flat buffer.  Debug builds verify the spec's
    /// stream contract directly on the stored representation — no clones.
    pub fn from_flat(flat: FlatRows, spec: SortSpec) -> Self {
        #[cfg(debug_assertions)]
        {
            if let Some(i) = ovc_core::derive::find_code_violation_slices(flat.iter(), &spec) {
                panic!("Run::from_flat: code violation at row {i} under {spec}");
            }
        }
        Run { flat, spec }
    }

    /// As [`Run::from_flat`] without the debug validation — for merge
    /// outputs whose exactness is guaranteed by construction and re-checked
    /// by the property tests (validating every intermediate merge level
    /// would make debug externs quadratic).
    pub(crate) fn from_flat_trusted(flat: FlatRows, spec: SortSpec) -> Self {
        Run { flat, spec }
    }

    /// Derive codes for an already-sorted row vector.
    pub fn from_sorted_rows(rows: Vec<Row>, key_len: usize) -> Self {
        debug_assert!(ovc_core::derive::is_sorted(&rows, key_len));
        let codes = derive_codes(&rows, key_len);
        Run {
            flat: flatten(rows, codes, key_len),
            spec: SortSpec::asc(key_len),
        }
    }

    /// Derive codes for rows already ordered under `spec`.
    pub fn from_sorted_rows_spec(rows: Vec<Row>, spec: SortSpec) -> Self {
        debug_assert!(ovc_core::derive::is_sorted_spec(&rows, &spec));
        let codes = derive_codes_spec(&rows, &spec);
        let flat = flatten(rows, codes, spec.len());
        Run { flat, spec }
    }

    /// An empty run.
    pub fn empty(key_len: usize) -> Self {
        Self::empty_spec(SortSpec::asc(key_len))
    }

    /// An empty run under an explicit spec.
    pub fn empty_spec(spec: SortSpec) -> Self {
        Run {
            flat: FlatRows::new(spec.len()),
            spec,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// Is the run empty?
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Sort-key arity of the run's codes.
    pub fn key_len(&self) -> usize {
        self.spec.len()
    }

    /// Columns per row.
    pub fn width(&self) -> usize {
        self.flat.width()
    }

    /// The ordering contract the run's rows and codes follow.
    pub fn sort_spec(&self) -> &SortSpec {
        &self.spec
    }

    /// Borrow the flat storage.
    pub fn flat(&self) -> &FlatRows {
        &self.flat
    }

    /// Consume into the flat storage.
    pub fn into_flat(self) -> FlatRows {
        self.flat
    }

    /// All columns of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        self.flat.row(i)
    }

    /// Code of row `i`.
    #[inline]
    pub fn code(&self, i: usize) -> Ovc {
        self.flat.code(i)
    }

    /// Iterate `(columns, code)` pairs in place.
    pub fn iter(&self) -> impl Iterator<Item = (&[u64], Ovc)> + '_ {
        self.flat.iter()
    }

    /// Materialize boxed coded rows (test/boundary convenience; one
    /// allocation per row).
    pub fn to_ovc_rows(&self) -> Vec<OvcRow> {
        self.flat.to_ovc_rows()
    }

    /// Consume into boxed coded rows (materializing).
    pub fn into_rows(self) -> Vec<OvcRow> {
        self.flat.to_ovc_rows()
    }

    /// A consuming cursor for merging.
    pub fn cursor(self) -> RunCursor {
        RunCursor {
            flat: self.flat,
            pos: 0,
            spec: self.spec,
        }
    }

    /// Consume the run as a [`BatchStream`] of `batch_size`-row
    /// [`FlatRows`] chunks — the batch-pipeline entry point for sorted
    /// data.  Cutting a coded run at any point needs no code repair
    /// (each batch's first code is relative to the previous batch's last
    /// row — the seam rule of `ovc_core::batch`), so the chunks are plain
    /// slices of the flat buffer.  Panics if `batch_size` is zero.
    pub fn batches(self, batch_size: usize) -> RunBatches {
        assert!(batch_size > 0, "batch size must be positive");
        RunBatches {
            flat: self.flat,
            spec: self.spec,
            pos: 0,
            batch_size,
        }
    }

    /// Total payload bytes a spill of this run would write (8 bytes per
    /// column plus the 8-byte code per row) — used for I/O accounting.
    pub fn spill_bytes(&self) -> u64 {
        ((self.flat.values().len() + self.flat.codes().len()) * 8) as u64
    }

    /// Drop duplicate-coded rows (one integer test per row): the in-sort
    /// duplicate removal of Figure 5.  Removing a row whose code says
    /// "equal to my predecessor" leaves every surviving code exact, and
    /// survivors copy slice-to-slice between flat buffers — no boxing.
    pub fn into_distinct(self) -> Run {
        let flat = self.flat.retain_indices(|_, c| !c.is_duplicate());
        Run {
            flat,
            spec: self.spec,
        }
    }
}

/// Build a flat buffer from boxed rows plus their codes.
fn flatten(rows: Vec<Row>, codes: Vec<Ovc>, fallback_width: usize) -> FlatRows {
    let width = rows.first().map(Row::width).unwrap_or(fallback_width);
    let mut flat = FlatRows::with_capacity(width, rows.len());
    for (row, code) in rows.into_iter().zip(codes) {
        flat.push(row.cols(), code);
    }
    flat
}

/// Consuming cursor over a run's coded rows, materializing each
/// [`OvcRow`] from the flat buffer as it streams out.
pub struct RunCursor {
    flat: FlatRows,
    pos: usize,
    spec: SortSpec,
}

impl RunCursor {
    /// Rewrap an **unconsumed** cursor as its run (flat, zero-copy).
    /// Panics if rows have already streamed out — the remainder of a
    /// partially-consumed cursor is not a valid coded run on its own
    /// (its first code is relative to a row that is gone).
    pub(crate) fn into_run(self) -> Run {
        assert_eq!(self.pos, 0, "cannot rewrap a partially-consumed cursor");
        Run {
            flat: self.flat,
            spec: self.spec,
        }
    }
}

impl Iterator for RunCursor {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        if self.pos >= self.flat.len() {
            return None;
        }
        let r = OvcRow::new(
            Row::from_slice(self.flat.row(self.pos)),
            self.flat.code(self.pos),
        );
        self.pos += 1;
        Some(r)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.flat.len() - self.pos;
        (left, Some(left))
    }
}

impl OvcStream for RunCursor {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Consuming batch cursor over a run: yields `batch_size`-row
/// [`FlatRows`] slices of the flat buffer (the last batch may be short),
/// codes exact across seams.  Built by [`Run::batches`].
pub struct RunBatches {
    flat: FlatRows,
    spec: SortSpec,
    pos: usize,
    batch_size: usize,
}

impl BatchStream for RunBatches {
    fn next_batch(&mut self) -> Option<FlatRows> {
        if self.pos >= self.flat.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.flat.len());
        let w = self.flat.width();
        let out = FlatRows::from_parts(
            w,
            self.flat.values()[self.pos * w..end * w].to_vec(),
            self.flat.codes()[self.pos..end].to_vec(),
        );
        self.pos = end;
        Some(out)
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_from_sorted_rows() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        assert_eq!(run.len(), 7);
        assert!(!run.is_empty());
        assert_eq!(run.key_len(), 4);
        let codes: Vec<Ovc> = run.iter().map(|(_, c)| c).collect();
        assert_eq!(codes, ovc_core::table1::asc_codes());
    }

    #[test]
    fn batches_slice_the_run_with_exact_seams() {
        // The batch cursor cuts the run without any code repair; the
        // seam-aware validator accepts every cut size, including 1 and
        // exactly the run length.
        let rows = ovc_core::table1::rows();
        let run = Run::from_sorted_rows(rows.clone(), 4);
        let expect = run.to_ovc_rows();
        for batch_size in [1usize, 2, 3, 7, 100] {
            let mut cursor = Run::from_sorted_rows(rows.clone(), 4).batches(batch_size);
            assert_eq!(cursor.sort_spec(), SortSpec::asc(4));
            let mut batches = Vec::new();
            while let Some(b) = cursor.next_batch() {
                assert!(!b.is_empty());
                assert!(b.len() <= batch_size);
                batches.push(b);
            }
            ovc_core::batch::assert_batches_exact_spec(&batches, &SortSpec::asc(4));
            let flat: Vec<OvcRow> = batches.iter().flat_map(|b| b.to_ovc_rows()).collect();
            assert_eq!(flat, expect, "batch={batch_size}");
        }
        // Empty run: no batches at all.
        assert!(Run::empty(2).batches(4).next_batch().is_none());
    }

    #[test]
    fn cursor_yields_all_rows() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        let n = run.len();
        assert_eq!(run.cursor().count(), n);
    }

    #[test]
    fn flat_layout_round_trips_boxed_rows() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        let boxed = run.to_ovc_rows();
        let again = Run::from_coded(boxed.clone(), 4);
        assert_eq!(again.flat(), run.flat());
        assert_eq!(again.into_rows(), boxed);
        assert_eq!(run.width(), 4);
        assert_eq!(run.row(0), ovc_core::table1::rows()[0].cols());
    }

    #[test]
    fn spill_bytes_counts_columns_and_code() {
        let run = Run::from_sorted_rows(vec![Row::new(vec![1, 2, 3])], 2);
        // 3 columns + 1 code word = 32 bytes.
        assert_eq!(run.spill_bytes(), 32);
        assert_eq!(Run::empty(2).spill_bytes(), 0);
    }

    #[test]
    fn into_distinct_drops_duplicate_coded_rows() {
        let rows = vec![
            Row::new(vec![1, 9]),
            Row::new(vec![1, 9]),
            Row::new(vec![2, 0]),
        ];
        let run = Run::from_sorted_rows(rows, 2).into_distinct();
        assert_eq!(run.len(), 2);
        assert_eq!(run.row(1), &[2, 0]);
        assert!(run.iter().all(|(_, c)| !c.is_duplicate()));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "code violation")]
    fn from_coded_rejects_bad_codes() {
        let rows = vec![
            OvcRow::new(Row::new(vec![1]), Ovc::new(0, 1, 1)),
            OvcRow::new(Row::new(vec![2]), Ovc::duplicate()), // wrong
        ];
        let _ = Run::from_coded(rows, 1);
    }
}
