//! Run generation by replacement selection (Section 3).
//!
//! "Run generation by replacement selection can try to extract longer
//! sorted runs from the unsorted input: one additional comparison per input
//! row doubles the expected run size, halves the run count, and saves one
//! comparison per row during merging."
//!
//! A tree-of-losers over `C` memory slots holds rows tagged with a run
//! number; a new input row is compared against the row just output (the
//! "one additional comparison"), which both assigns its run — current run
//! if it can still be output in order, next run otherwise — and derives its
//! exact offset-value code relative to that output row.
//!
//! Entries compare by `(run, code)`: differing run numbers decide for free,
//! equal run numbers compare codes.  The paper folds run indicators and
//! code into a single 64-bit integer (Section 3, "these cases need some
//! indicator field … but they require only 2 bits"); we keep the run number
//! in a separate word to support unbounded run counts (DESIGN.md §3.4).
//!
//! One deviation for soundness, recorded in DESIGN.md: codes inside this
//! tree can be relative to *different* base rows (rows enter at different
//! times, and next-run rows cannot be coded relative to a row that sorts
//! after them).  Each entry therefore carries the identity of its base
//! row; comparisons fall back to full column comparisons when bases differ
//! — next-run rows are coded relative to "−∞" so that they remain mutually
//! code-comparable.  Output codes are derived exactly against the previous
//! output row, which costs at most `K` column accesses per row and keeps
//! the stream contract intact.

use std::cmp::Ordering;
use std::sync::Arc;

use ovc_core::compare::{compare_same_base, derive_code, full_compare_set_loser};
use ovc_core::{Ovc, OvcRow, Row, Stats};

use crate::runs::Run;

/// Base identity of the imaginary "−∞" predecessor.
const BASE_NEG_INF: u64 = 0;
/// Run number that marks an exhausted slot (a late fence).
const FENCE_RUN: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Entry {
    run: u32,
    slot: u32,
    /// Code relative to the row identified by `base`.
    code: Ovc,
    /// Identity of the base row (`BASE_NEG_INF` for "−∞").
    base: u64,
    /// Identity of this entry's own row (for re-basing losers).
    id: u64,
}

impl Entry {
    fn fence(slot: u32) -> Entry {
        Entry {
            run: FENCE_RUN,
            slot,
            code: Ovc::LATE_FENCE,
            base: 0,
            id: 0,
        }
    }
    fn is_fence(&self) -> bool {
        self.run == FENCE_RUN
    }
}

struct Selector<I: Iterator<Item = Row>> {
    input: I,
    slots: Vec<Option<Row>>,
    nodes: Vec<Entry>,
    winner: Entry,
    cap: usize,
    key_len: usize,
    next_id: u64,
    stats: Arc<Stats>,
}

impl<I: Iterator<Item = Row>> Selector<I> {
    fn new(mut input: I, key_len: usize, capacity: usize, stats: Arc<Stats>) -> Self {
        let cap = capacity.next_power_of_two().max(1);
        let mut slots: Vec<Option<Row>> = Vec::with_capacity(capacity);
        let mut initial: Vec<Entry> = Vec::with_capacity(capacity);
        let mut next_id = 1u64;
        for slot in 0..capacity {
            match input.next() {
                Some(row) => {
                    let code = Ovc::initial(row.key(key_len));
                    initial.push(Entry {
                        run: 0,
                        slot: slot as u32,
                        code,
                        base: BASE_NEG_INF,
                        id: next_id,
                    });
                    slots.push(Some(row));
                    next_id += 1;
                }
                None => {
                    initial.push(Entry::fence(slot as u32));
                    slots.push(None);
                }
            }
        }
        let mut sel = Selector {
            input,
            slots,
            nodes: vec![Entry::fence(0); cap],
            winner: Entry::fence(0),
            cap,
            key_len,
            next_id,
            stats,
        };
        sel.winner = sel.build(1, &initial);
        sel
    }

    fn key_of(&self, e: &Entry) -> &[u64] {
        self.slots
            .get(e.slot as usize)
            .and_then(|r| r.as_ref())
            .map(|r| r.key(self.key_len))
            .unwrap_or(&[])
    }

    fn play(&self, mut a: Entry, mut b: Entry) -> (Entry, Entry) {
        // Run numbers decide for free; fences have the largest run number.
        if a.run != b.run {
            return if a.run < b.run { (a, b) } else { (b, a) };
        }
        if a.is_fence() {
            return (a, b);
        }
        let same_base = a.base == b.base;
        let codes_equal = a.code == b.code;
        let ord = {
            let (ak, bk) = (self.key_of(&a), self.key_of(&b));
            if same_base {
                // The code fast path is sound only with a shared base.
                compare_same_base(ak, bk, &mut a.code, &mut b.code, &self.stats)
            } else {
                full_compare_set_loser(ak, bk, &mut a.code, &mut b.code, &self.stats)
            }
        };
        // Whenever column comparisons produced a fresh loser code, that
        // code is relative to the winner — record the new base.  When codes
        // alone decided, the unequal code theorem keeps both code and base
        // valid unchanged.
        let re_based = !same_base || codes_equal;
        match ord {
            Ordering::Less => {
                if re_based {
                    b.base = a.id;
                }
                (a, b)
            }
            Ordering::Greater => {
                if re_based {
                    a.base = b.id;
                }
                (b, a)
            }
            Ordering::Equal => {
                // Equal keys: earlier id wins (FIFO stability); the loser
                // is an exact duplicate of the winner.
                let (w, mut l) = if a.id <= b.id { (a, b) } else { (b, a) };
                l.code = Ovc::duplicate();
                l.base = w.id;
                (w, l)
            }
        }
    }

    fn build(&mut self, node: usize, initial: &[Entry]) -> Entry {
        if node >= self.cap {
            let slot = node - self.cap;
            return initial
                .get(slot)
                .copied()
                .unwrap_or_else(|| Entry::fence(slot as u32));
        }
        let a = self.build(2 * node, initial);
        let b = self.build(2 * node + 1, initial);
        let (w, l) = self.play(a, b);
        self.nodes[node] = l;
        w
    }

    /// Pop the winner, refill its slot from the input, and return
    /// `(run, row, row_id)`.
    fn pop(&mut self) -> Option<(u32, Row, u64)> {
        if self.winner.is_fence() {
            return None;
        }
        let w = self.winner;
        let out_row = self.slots[w.slot as usize]
            .take()
            .expect("a non-fence winner always points at an occupied slot");
        let out_id = w.id;

        // Refill the slot: the run-assignment comparison against the row
        // just output doubles as exact code derivation.
        let cand = match self.input.next() {
            None => Entry::fence(w.slot),
            Some(row) => {
                let entry = self.classify(&row, &out_row, w.run, w.slot, out_id);
                self.slots[w.slot as usize] = Some(row);
                entry
            }
        };

        // Leaf-to-root pass from the vacated slot.
        let mut cand = cand;
        let mut node = (self.cap + w.slot as usize) >> 1;
        while node >= 1 {
            let stored = self.nodes[node];
            let (win, lose) = self.play(cand, stored);
            self.nodes[node] = lose;
            cand = win;
            node >>= 1;
        }
        self.winner = cand;
        Some((w.run, out_row, out_id))
    }

    /// Assign a run and an exact code to a fresh input row by comparing it
    /// with the row just output.
    fn classify(&mut self, row: &Row, out: &Row, out_run: u32, slot: u32, out_id: u64) -> Entry {
        let id = self.next_id;
        self.next_id += 1;
        let k = self.key_len;
        // One comparison per input row (Section 3): find the first
        // difference between the new row and the last output.
        let mut diff = None;
        for i in 0..k {
            self.stats.count_col_cmp();
            if row.key(k)[i] != out.key(k)[i] {
                diff = Some(i);
                break;
            }
        }
        match diff {
            None => Entry {
                // Exact duplicate of the last output: same run, duplicate
                // code relative to it.
                run: out_run,
                slot,
                code: Ovc::duplicate(),
                base: out_id,
                id,
            },
            Some(i) if row.key(k)[i] > out.key(k)[i] => Entry {
                // Can still be emitted in order: current run, coded exactly
                // relative to the last output.
                run: out_run,
                slot,
                code: Ovc::new(i, row.key(k)[i], k),
                base: out_id,
                id,
            },
            Some(_) => Entry {
                // Sorts before the last output: next run.  Coded relative
                // to "−∞" so that next-run entries share a base.
                run: out_run + 1,
                slot,
                code: Ovc::initial(row.key(k)),
                base: BASE_NEG_INF,
                id,
            },
        }
    }
}

/// Generate runs by replacement selection with `capacity` memory slots.
/// Expected run length on random input is about `2 × capacity`; every run
/// except the last holds at least `capacity` rows.
pub fn generate_runs_replacement<I>(
    input: I,
    key_len: usize,
    capacity: usize,
    stats: &Arc<Stats>,
) -> Vec<Run>
where
    I: IntoIterator<Item = Row>,
{
    assert!(capacity > 0);
    let mut sel = Selector::new(input.into_iter(), key_len, capacity, Arc::clone(stats));
    let mut runs: Vec<Run> = Vec::new();
    let mut cur: Vec<OvcRow> = Vec::new();
    let mut cur_run = 0u32;
    let mut prev_out: Option<Row> = None;

    while let Some((run, row, _id)) = sel.pop() {
        if run != cur_run {
            debug_assert!(run > cur_run);
            if !cur.is_empty() {
                runs.push(Run::from_coded(std::mem::take(&mut cur), key_len));
            }
            cur_run = run;
            prev_out = None;
        }
        // Exact output code relative to the previous output row of this
        // run; the first row of a run is coded relative to "−∞".
        let code = match &prev_out {
            None => Ovc::initial(row.key(key_len)),
            Some(p) => derive_code(p.key(key_len), row.key(key_len), stats),
        };
        prev_out = Some(row.clone());
        cur.push(OvcRow::new(row, code));
    }
    if !cur.is_empty() {
        runs.push(Run::from_coded(cur, key_len));
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, k: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new((0..k).map(|_| rng.gen_range(0..domain)).collect()))
            .collect()
    }

    fn check_runs(runs: &[Run], input: &[Row], key_len: usize) {
        let mut all: Vec<Row> = Vec::new();
        for run in runs {
            let pairs: Vec<(Row, Ovc)> = run.iter().map(|(r, c)| (Row::from_slice(r), c)).collect();
            assert_codes_exact(&pairs, key_len);
            all.extend(pairs.into_iter().map(|(r, _)| r));
        }
        let mut expect = input.to_vec();
        expect.sort();
        all.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn sorted_input_yields_one_run() {
        let mut rows = random_rows(100, 2, 50, 1);
        rows.sort();
        let stats = Stats::new_shared();
        let runs = generate_runs_replacement(rows.clone(), 2, 8, &stats);
        assert_eq!(runs.len(), 1, "pre-sorted input never starts a new run");
        check_runs(&runs, &rows, 2);
    }

    #[test]
    fn reverse_sorted_input_yields_run_per_capacity() {
        let n = 64;
        let rows: Vec<Row> = (0..n).rev().map(|i| Row::new(vec![i as u64])).collect();
        let stats = Stats::new_shared();
        let runs = generate_runs_replacement(rows.clone(), 1, 8, &stats);
        // Worst case: every input row starts sorts before the last output.
        assert_eq!(runs.len(), n / 8);
        check_runs(&runs, &rows, 1);
    }

    #[test]
    fn random_input_runs_longer_than_capacity() {
        let rows = random_rows(4000, 2, 1000, 7);
        let stats = Stats::new_shared();
        let cap = 64;
        let runs = generate_runs_replacement(rows.clone(), 2, cap, &stats);
        check_runs(&runs, &rows, 2);
        // Every run except the last holds at least `capacity` rows, and the
        // average should approach 2× capacity (Knuth's snowplow argument).
        for run in &runs[..runs.len() - 1] {
            assert!(run.len() >= cap, "run shorter than capacity");
        }
        let avg = rows.len() as f64 / runs.len() as f64;
        assert!(
            avg > 1.5 * cap as f64,
            "expected ~2x capacity run length, got average {avg}"
        );
    }

    #[test]
    fn duplicates_stay_in_the_current_run() {
        let rows = vec![Row::new(vec![5]); 30];
        let stats = Stats::new_shared();
        let runs = generate_runs_replacement(rows.clone(), 1, 4, &stats);
        assert_eq!(runs.len(), 1);
        check_runs(&runs, &rows, 1);
        assert!(runs[0].iter().skip(1).all(|(_, c)| c.is_duplicate()));
    }

    #[test]
    fn capacity_one_still_works() {
        let rows = random_rows(50, 2, 10, 9);
        let stats = Stats::new_shared();
        let runs = generate_runs_replacement(rows.clone(), 2, 1, &stats);
        check_runs(&runs, &rows, 2);
    }

    #[test]
    fn capacity_larger_than_input() {
        let rows = random_rows(10, 2, 10, 11);
        let stats = Stats::new_shared();
        let runs = generate_runs_replacement(rows.clone(), 2, 64, &stats);
        assert_eq!(runs.len(), 1);
        check_runs(&runs, &rows, 2);
    }

    #[test]
    fn empty_input() {
        let stats = Stats::new_shared();
        let runs = generate_runs_replacement(Vec::<Row>::new(), 2, 8, &stats);
        assert!(runs.is_empty());
    }
}
