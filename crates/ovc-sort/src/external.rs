//! External merge sort with offset-value coding (Sections 3 and 5).
//!
//! The F1 sort operator this models "uses external merge sort with
//! tree-of-losers priority queues and offset-value coding for both run
//! generation and merging".  The sorter:
//!
//! 1. generates initial runs within a row-count memory budget (strategy
//!    selectable: OVC priority queue, quicksort baseline, or replacement
//!    selection);
//! 2. if more than one run exists, spills runs to a [`RunStorage`] and
//!    merges with bounded fan-in, spilling intermediate merge results,
//!    until at most `fan_in` runs remain;
//! 3. streams the final merge (or the single in-memory run) as a coded
//!    [`OvcStream`].
//!
//! Spill volume is accounted in [`Stats`]; the Figure 6 experiment's
//! "sort-based plan spills each input row only once" claim is asserted on
//! these counters.

use std::sync::Arc;

use ovc_core::ctx::propagate;
use ovc_core::fault::{self, FaultPoint};
use ovc_core::{ExecError, OvcRow, OvcStream, Row, SortSpec, Stats};

use crate::merge::merge_runs_spec;
use crate::run_gen::{generate_runs_spec, RunGenStrategy};
use crate::runs::{Run, RunCursor};
use crate::tree::FlatMerge;

/// Configuration of an external sort.
#[derive(Clone, Copy, Debug)]
pub struct SortConfig {
    /// Number of leading key columns (code arity).
    pub key_len: usize,
    /// Memory budget in rows for run generation and for deciding whether
    /// the input fits in memory.
    pub memory_rows: usize,
    /// Maximum merge fan-in.
    pub fan_in: usize,
    /// Run-generation strategy.
    pub strategy: RunGenStrategy,
}

impl SortConfig {
    /// A sensible default: OVC run generation, fan-in 128.
    pub fn new(key_len: usize, memory_rows: usize) -> Self {
        SortConfig {
            key_len,
            memory_rows,
            fan_in: 128,
            strategy: RunGenStrategy::OvcPriorityQueue,
        }
    }

    /// Override the merge fan-in.
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        self.fan_in = fan_in.max(2);
        self
    }

    /// Override the run-generation strategy.
    pub fn with_strategy(mut self, strategy: RunGenStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Where spilled runs live.  The in-memory device below serves simulation;
/// `ovc-storage` provides an encoding-faithful implementation with byte
/// accounting and an optional file-backed variant.
///
/// Devices are `Send`: a parallel sort hands each worker thread its own
/// spill device (see `parallel::parallel_sort_spec_spilled`), and the
/// device — with its stored runs — moves back to the coordinator for the
/// merge.  All implementations in this workspace account through
/// `Arc<Stats>`, so the bound costs nothing.
/// Both operations are fallible: real devices hit I/O errors on write
/// and detect corruption on read-back, and both must surface as a typed
/// [`ExecError`] the sort can react to (fail the query, or retry from
/// source — see [`external_sort_spec_resilient`]) rather than a panic or
/// garbage rows.
pub trait RunStorage: Send {
    /// Write a run; returns its handle.
    fn write_run(&mut self, run: Run) -> Result<usize, ExecError>;
    /// Read a run back (consuming it from storage).
    fn read_run(&mut self, handle: usize) -> Result<Run, ExecError>;
    /// Number of stored runs still readable.
    fn stored_runs(&self) -> usize;
}

/// In-memory "external" storage that accounts spill traffic in [`Stats`].
pub struct MemoryRunStorage {
    runs: Vec<Option<Run>>,
    stats: Arc<Stats>,
}

impl MemoryRunStorage {
    /// New storage device accounting into `stats`.
    pub fn new(stats: Arc<Stats>) -> Self {
        MemoryRunStorage {
            runs: Vec::new(),
            stats,
        }
    }
}

impl RunStorage for MemoryRunStorage {
    fn write_run(&mut self, run: Run) -> Result<usize, ExecError> {
        fault::maybe_spill_io(FaultPoint::SpillWrite)?;
        self.stats.count_spill(run.len() as u64, run.spill_bytes());
        self.runs.push(Some(run));
        Ok(self.runs.len() - 1)
    }

    fn read_run(&mut self, handle: usize) -> Result<Run, ExecError> {
        fault::maybe_spill_io(FaultPoint::SpillRead)?;
        let run = self.runs[handle].take().expect("run already consumed");
        self.stats
            .count_read_back(run.len() as u64, run.spill_bytes());
        Ok(run)
    }

    fn stored_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.is_some()).count()
    }
}

/// The coded output of an external sort.
pub enum SortOutput {
    /// The input fit in memory: a single run streams out directly.
    Memory(RunCursor),
    /// Final merge over the last `<= fan_in` spilled runs — flat runs
    /// merged in place, rows materialized only as they stream out.
    Merge(FlatMerge),
}

impl Iterator for SortOutput {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        match self {
            SortOutput::Memory(c) => c.next(),
            SortOutput::Merge(t) => t.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SortOutput::Memory(c) => c.size_hint(),
            SortOutput::Merge(t) => t.size_hint(),
        }
    }
}

impl OvcStream for SortOutput {
    fn key_len(&self) -> usize {
        match self {
            SortOutput::Memory(c) => c.key_len(),
            SortOutput::Merge(t) => t.key_len(),
        }
    }
    fn sort_spec(&self) -> SortSpec {
        match self {
            SortOutput::Memory(c) => c.sort_spec(),
            SortOutput::Merge(t) => t.sort_spec(),
        }
    }
}

/// Externally sort `input`, producing a coded stream.
///
/// If the input fits the memory budget the sort never spills; otherwise
/// initial runs spill once and intermediate merge steps (only needed when
/// the run count exceeds the fan-in) spill again, exactly like the
/// textbook merge sort the paper builds on.
pub fn external_sort<I, S>(
    input: I,
    config: SortConfig,
    storage: &mut S,
    stats: &Arc<Stats>,
) -> SortOutput
where
    I: IntoIterator<Item = Row>,
    S: RunStorage,
{
    let spec = SortSpec::asc(config.key_len);
    external_sort_spec(input, config, &spec, storage, stats)
}

/// Convenience: sort and collect (tests, small inputs).
pub fn external_sort_collect<I>(input: I, config: SortConfig, stats: &Arc<Stats>) -> Vec<OvcRow>
where
    I: IntoIterator<Item = Row>,
{
    let mut storage = MemoryRunStorage::new(Arc::clone(stats));
    external_sort(input, config, &mut storage, stats).collect()
}

/// Direction-aware [`external_sort`]: the same run-generation / spill /
/// bounded-fan-in merge cascade under an arbitrary leading-prefix
/// [`SortSpec`] (mixed ascending/descending directions, optional
/// normalized-key run generation).  `config.key_len` is ignored in
/// favour of `spec.len()`.
pub fn external_sort_spec<I, S>(
    input: I,
    config: SortConfig,
    spec: &SortSpec,
    storage: &mut S,
    stats: &Arc<Stats>,
) -> SortOutput
where
    I: IntoIterator<Item = Row>,
    S: RunStorage,
{
    try_external_sort_spec(input, config, spec, storage, stats).unwrap_or_else(|err| propagate(err))
}

/// Fallible [`external_sort_spec`]: spill-device failures come back as a
/// typed [`ExecError`] instead of unwinding.  This is the primitive the
/// recovery path ([`external_sort_spec_resilient`]) and the executors'
/// fault containment build on.
pub fn try_external_sort_spec<I, S>(
    input: I,
    config: SortConfig,
    spec: &SortSpec,
    storage: &mut S,
    stats: &Arc<Stats>,
) -> Result<SortOutput, ExecError>
where
    I: IntoIterator<Item = Row>,
    S: RunStorage,
{
    let mut runs = generate_runs_spec(input, spec, config.memory_rows, config.strategy, stats);
    if runs.is_empty() {
        return Ok(SortOutput::Memory(Run::empty_spec(spec.clone()).cursor()));
    }
    if runs.len() == 1 {
        return Ok(SortOutput::Memory(runs.pop().expect("one run").cursor()));
    }
    let mut handles = Vec::with_capacity(runs.len());
    for run in runs {
        handles.push(storage.write_run(run)?);
    }
    while handles.len() > config.fan_in {
        let mut next_level = Vec::new();
        for chunk in handles.chunks(config.fan_in) {
            let mut level_runs = Vec::with_capacity(chunk.len());
            for &h in chunk {
                level_runs.push(storage.read_run(h)?);
            }
            // Intermediate merge levels stay flat end-to-end: winner rows
            // copy between contiguous buffers, nothing is boxed.
            let merged = merge_runs_spec(level_runs, spec, stats).into_run();
            next_level.push(storage.write_run(merged)?);
        }
        handles = next_level;
    }
    let mut final_runs = Vec::with_capacity(handles.len());
    for h in handles {
        final_runs.push(storage.read_run(h)?);
    }
    Ok(SortOutput::Merge(merge_runs_spec(final_runs, spec, stats)))
}

/// [`try_external_sort_spec`] with a **re-sort-from-source retry**: when
/// the spill device fails (I/O error or detected corruption — see
/// [`ExecError::is_spill_fault`]), the input still exists upstream, so
/// the sort retries entirely in memory instead of failing the query.
///
/// The price of the safety net: when the input exceeds the memory
/// budget, a copy of the source rows is retained for the duration of
/// the first attempt (recovery needs a source to re-sort from).  On
/// retry, `memory_rows` is raised to the input size so run generation
/// yields a single resident run and the faulty device is never touched
/// again.  [`Stats`] keep every counter the failed attempt accrued —
/// accounting reflects work actually performed.
pub fn external_sort_spec_resilient<S>(
    rows: Vec<Row>,
    config: SortConfig,
    spec: &SortSpec,
    storage: &mut S,
    stats: &Arc<Stats>,
) -> Result<SortOutput, ExecError>
where
    S: RunStorage,
{
    let retained = (rows.len() > config.memory_rows).then(|| rows.clone());
    match try_external_sort_spec(rows, config, spec, storage, stats) {
        Ok(out) => Ok(out),
        Err(err) if err.is_spill_fault() => {
            let Some(rows) = retained else {
                return Err(err);
            };
            let mut resident = config;
            resident.memory_rows = rows.len().max(1);
            try_external_sort_spec(rows, resident, spec, storage, stats)
        }
        Err(err) => Err(err),
    }
}

/// Externally sort `input` all the way into a single **flat** run — the
/// allocation-free variant of [`external_sort_spec`] for consumers that
/// keep working on the contiguous layout (benches, storage loads).  The
/// final merge gathers straight into one flat buffer instead of streaming
/// boxed [`OvcRow`]s.
pub fn external_sort_spec_to_run<I, S>(
    input: I,
    config: SortConfig,
    spec: &SortSpec,
    storage: &mut S,
    stats: &Arc<Stats>,
) -> Run
where
    I: IntoIterator<Item = Row>,
    S: RunStorage,
{
    match external_sort_spec(input, config, spec, storage, stats) {
        SortOutput::Memory(cursor) => cursor.into_run(),
        SortOutput::Merge(merge) => merge.into_run(),
    }
}

/// Convenience: spec-aware sort and collect.
pub fn external_sort_spec_collect<I>(
    input: I,
    config: SortConfig,
    spec: &SortSpec,
    stats: &Arc<Stats>,
) -> Vec<OvcRow>
where
    I: IntoIterator<Item = Row>,
{
    let mut storage = MemoryRunStorage::new(Arc::clone(stats));
    external_sort_spec(input, config, spec, &mut storage, stats).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::Ovc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, k: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new((0..k).map(|_| rng.gen_range(0..domain)).collect()))
            .collect()
    }

    fn check_sorted(out: &[OvcRow], input: &[Row], key_len: usize) {
        let pairs: Vec<(Row, Ovc)> = out.iter().map(|r| (r.row.clone(), r.code)).collect();
        assert_codes_exact(&pairs, key_len);
        let mut expect = input.to_vec();
        expect.sort();
        let mut got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn in_memory_input_never_spills() {
        let rows = random_rows(100, 2, 10, 1);
        let stats = Stats::new_shared();
        let out = external_sort_collect(rows.clone(), SortConfig::new(2, 1000), &stats);
        check_sorted(&out, &rows, 2);
        assert_eq!(stats.rows_spilled(), 0);
    }

    #[test]
    fn spilling_input_spills_each_row_once_with_wide_fan_in() {
        let rows = random_rows(1000, 2, 10, 2);
        let stats = Stats::new_shared();
        let out = external_sort_collect(rows.clone(), SortConfig::new(2, 100), &stats);
        check_sorted(&out, &rows, 2);
        // 10 runs, fan-in 128: one spill level only.
        assert_eq!(stats.rows_spilled(), 1000);
        assert_eq!(stats.rows_read_back(), 1000);
    }

    #[test]
    fn narrow_fan_in_forces_multi_level_merge() {
        let rows = random_rows(1000, 2, 10, 3);
        let stats = Stats::new_shared();
        let cfg = SortConfig::new(2, 50).with_fan_in(4); // 20 runs, fan-in 4
        let out = external_sort_collect(rows.clone(), cfg, &stats);
        check_sorted(&out, &rows, 2);
        assert!(
            stats.rows_spilled() > 1000,
            "intermediate merges must re-spill"
        );
    }

    #[test]
    fn all_strategies_agree() {
        let rows = random_rows(500, 3, 6, 4);
        for strategy in [
            RunGenStrategy::OvcPriorityQueue,
            RunGenStrategy::Quicksort,
            RunGenStrategy::ReplacementSelection,
        ] {
            let stats = Stats::new_shared();
            let cfg = SortConfig::new(3, 64).with_strategy(strategy);
            let out = external_sort_collect(rows.clone(), cfg, &stats);
            check_sorted(&out, &rows, 3);
        }
    }

    #[test]
    fn empty_input() {
        let stats = Stats::new_shared();
        let out = external_sort_collect(Vec::<Row>::new(), SortConfig::new(1, 10), &stats);
        assert!(out.is_empty());
    }

    #[test]
    fn spec_sort_matches_reference_order_for_mixed_directions() {
        use ovc_core::derive::assert_codes_exact_spec;
        use ovc_core::{Direction, SortSpec};
        let rows = random_rows(600, 2, 9, 11);
        let spec = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        for (label, spec) in [
            ("plain", spec.clone()),
            ("normalized", spec.with_normalized(true)),
        ] {
            let stats = Stats::new_shared();
            let cfg = SortConfig::new(2, 64).with_fan_in(4);
            let out = external_sort_spec_collect(rows.clone(), cfg, &spec, &stats);
            let pairs: Vec<(Row, Ovc)> = out.iter().map(|r| (r.row.clone(), r.code)).collect();
            assert_codes_exact_spec(&pairs, &spec);
            let mut expect = rows.clone();
            expect.sort_by(|a, b| spec.cmp_keys(a.key(2), b.key(2)));
            let got: Vec<Row> = out.into_iter().map(|r| r.row).collect();
            assert_eq!(got, expect, "{label}");
        }
    }

    #[test]
    fn spec_sort_on_ascending_spec_equals_plain_sort() {
        use ovc_core::SortSpec;
        let rows = random_rows(400, 2, 6, 12);
        let stats_a = Stats::new_shared();
        let stats_b = Stats::new_shared();
        let cfg = SortConfig::new(2, 50).with_fan_in(4);
        let plain = external_sort_collect(rows.clone(), cfg, &stats_a);
        let spec = external_sort_spec_collect(rows, cfg, &SortSpec::asc(2), &stats_b);
        assert_eq!(plain, spec, "rows and codes byte-identical");
        assert_eq!(stats_a.rows_spilled(), stats_b.rows_spilled());
    }

    /// A spill device whose every operation fails with a typed error.
    struct BrokenStorage;

    impl RunStorage for BrokenStorage {
        fn write_run(&mut self, _run: Run) -> Result<usize, ExecError> {
            Err(ExecError::SpillIo {
                detail: "device unplugged".into(),
            })
        }
        fn read_run(&mut self, _handle: usize) -> Result<Run, ExecError> {
            Err(ExecError::SpillIo {
                detail: "device unplugged".into(),
            })
        }
        fn stored_runs(&self) -> usize {
            0
        }
    }

    #[test]
    fn broken_storage_surfaces_typed_error() {
        let rows = random_rows(500, 2, 10, 21);
        let stats = Stats::new_shared();
        let err = try_external_sort_spec(
            rows,
            SortConfig::new(2, 50),
            &SortSpec::asc(2),
            &mut BrokenStorage,
            &stats,
        )
        .map(|_| ())
        .expect_err("spilling sort on a broken device must fail");
        assert_eq!(err.reason(), "spill_io");
    }

    #[test]
    fn resilient_sort_recovers_from_spill_faults_byte_identically() {
        let rows = random_rows(800, 2, 10, 22);
        let ref_stats = Stats::new_shared();
        let reference = external_sort_collect(rows.clone(), SortConfig::new(2, 50), &ref_stats);

        let stats = Stats::new_shared();
        let out: Vec<OvcRow> = external_sort_spec_resilient(
            rows,
            SortConfig::new(2, 50),
            &SortSpec::asc(2),
            &mut BrokenStorage,
            &stats,
        )
        .expect("retry path recovers")
        .collect();
        // Exact codes are a function of the output row sequence alone, so
        // the in-memory retry reproduces rows *and* codes bit-for-bit.
        assert_eq!(out, reference);
    }

    #[test]
    fn resilient_sort_does_not_mask_non_spill_errors() {
        struct CancelledStorage;
        impl RunStorage for CancelledStorage {
            fn write_run(&mut self, _run: Run) -> Result<usize, ExecError> {
                Err(ExecError::Cancelled)
            }
            fn read_run(&mut self, _handle: usize) -> Result<Run, ExecError> {
                Err(ExecError::Cancelled)
            }
            fn stored_runs(&self) -> usize {
                0
            }
        }
        let rows = random_rows(300, 2, 10, 23);
        let stats = Stats::new_shared();
        let err = external_sort_spec_resilient(
            rows,
            SortConfig::new(2, 50),
            &SortSpec::asc(2),
            &mut CancelledStorage,
            &stats,
        )
        .map(|_| ())
        .expect_err("cancellation is not retryable");
        assert_eq!(err, ExecError::Cancelled);
    }

    #[test]
    fn replacement_selection_spills_fewer_runs() {
        let rows = random_rows(2000, 2, 1000, 5);
        let s_pq = Stats::new_shared();
        let s_rs = Stats::new_shared();
        let mut st_pq = MemoryRunStorage::new(Arc::clone(&s_pq));
        let mut st_rs = MemoryRunStorage::new(Arc::clone(&s_rs));
        let _ = external_sort(rows.clone(), SortConfig::new(2, 100), &mut st_pq, &s_pq).count();
        let _ = external_sort(
            rows,
            SortConfig::new(2, 100).with_strategy(RunGenStrategy::ReplacementSelection),
            &mut st_rs,
            &s_rs,
        )
        .count();
        // Same spilled row count (one pass), but replacement selection
        // produced fewer, longer runs.  We can't observe run counts through
        // the public API here, so assert the weaker, always-true property:
        assert_eq!(s_pq.rows_spilled(), 2000);
        assert_eq!(s_rs.rows_spilled(), 2000);
    }
}
