//! Tree-of-losers priority queue with offset-value coding (Section 3,
//! Figures 1–3 of the paper).
//!
//! A tournament tree embedded in an array merges `F` sorted inputs with one
//! comparison per tree level on each leaf-to-root pass.  Every node holds a
//! loser's offset-value code and its run identifier; the rows themselves
//! stay in the input cursors ("strings remain in the input buffers",
//! Figure 3).
//!
//! The crucial invariant (Section 3): after the overall winner moves to the
//! output, all nodes on its leaf-to-root path hold codes relative to that
//! winner, and the winner's successor — drawn from the same input, whose
//! runs are prefix-truncation encoded — is coded relative to the same
//! winner.  Every steady-state comparison is therefore a same-base code
//! comparison:
//!
//! * codes differ → decided for free; the loser's code is already correct
//!   relative to the winner (unequal code theorem);
//! * codes equal → column comparisons resume past the shared prefix and
//!   value, and the loser's offset grows accordingly (equal code theorem).
//!
//! Total column-value comparisons over a whole merge of `N` rows with `K`
//! key columns are bounded by `N × K` — no `log N` factor (verified by the
//! `comparison_bounds` integration tests).
//!
//! Queue build-up compares first rows, which are all coded relative to the
//! imaginary "−∞" predecessor (offset 0, first column value), so even the
//! build phase uses same-base code comparisons.  Exhausted inputs turn into
//! late fences whose comparisons are single integer compares ("the
//! comparison of offset-value codes is practically free", Section 5).

use std::cmp::Ordering;
use std::sync::Arc;

use ovc_core::compare::{compare_same_base, compare_same_base_spec};
use ovc_core::{FlatRows, Ovc, OvcRow, OvcStream, Row, SortSpec, Stats};

use crate::runs::Run;

/// A tree node: an offset-value code plus a run identifier.  16 bytes, so a
/// queue of 512–1024 entries fits an L1 cache as Section 3 envisions.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub(crate) code: Ovc,
    pub(crate) run: u32,
}

/// Play one match between two entries whose keys are `a_key`/`b_key`:
/// returns `(winner, loser)` with the loser's code adjusted relative to
/// the winner where required.  Shared by the cursor-based
/// [`TreeOfLosers`], the flat-run [`FlatMerge`], and flat run generation —
/// all three must produce bit-identical tournaments.
///
/// `asc` is the caller's cached `spec.is_asc_prefix()`: the all-ascending
/// case (the paper's default throughout) skips the per-column direction
/// dispatch entirely.  Both comparators implement the same two theorems
/// with identical counting, so the dispatch is purely mechanical.
#[inline]
pub(crate) fn play_entries(
    mut a: Entry,
    mut b: Entry,
    a_key: &[u64],
    b_key: &[u64],
    spec: &SortSpec,
    asc: bool,
    stats: &Stats,
) -> (Entry, Entry) {
    let ord = if asc {
        compare_same_base(a_key, b_key, &mut a.code, &mut b.code, stats)
    } else {
        compare_same_base_spec(a_key, b_key, &mut a.code, &mut b.code, spec, stats)
    };
    match ord {
        Ordering::Less => (a, b),
        Ordering::Greater => (b, a),
        Ordering::Equal => {
            // Equal keys (or two fences).  Lower run index wins so the
            // merge is stable; an equal-key loser is a duplicate of the
            // winner.
            let (w, mut l) = if a.run <= b.run { (a, b) } else { (b, a) };
            if l.code.is_valid() {
                l.code = Ovc::duplicate();
            }
            (w, l)
        }
    }
}

/// The array-embedded tournament mechanics shared by every engine in this
/// crate — the cursor-based [`TreeOfLosers`], the flat-run [`FlatMerge`],
/// and run generation's single-row tournament.  One copy of the walk means
/// the three cannot diverge: slot 0 unused, slots `1..cap` hold losers,
/// leaves `cap..2*cap` are implicit.
pub(crate) mod loser_tree {
    use super::Entry;
    use ovc_core::Ovc;

    /// Run the initial tournament, storing losers in `nodes[1..cap]` and
    /// returning the overall winner.  `leaf_code(r)` supplies leaf `r`'s
    /// first code ([`Ovc::LATE_FENCE`] for absent leaves).  Build is the
    /// cold path, so the callbacks are dyn — the recursion stays simple.
    pub(crate) fn build(
        nodes: &mut [Entry],
        cap: usize,
        leaf_code: &mut dyn FnMut(usize) -> Ovc,
        play: &mut dyn FnMut(Entry, Entry) -> (Entry, Entry),
    ) -> Entry {
        build_node(1, nodes, cap, leaf_code, play)
    }

    fn build_node(
        node: usize,
        nodes: &mut [Entry],
        cap: usize,
        leaf_code: &mut dyn FnMut(usize) -> Ovc,
        play: &mut dyn FnMut(Entry, Entry) -> (Entry, Entry),
    ) -> Entry {
        if node >= cap {
            let r = node - cap;
            return Entry {
                code: leaf_code(r),
                run: r as u32,
            };
        }
        let a = build_node(2 * node, nodes, cap, leaf_code, play);
        let b = build_node(2 * node + 1, nodes, cap, leaf_code, play);
        let (w, l) = play(a, b);
        nodes[node] = l;
        w
    }

    /// One comparison per tree level: the candidate (leaf `leaf`'s
    /// successor) retraces the prior winner's leaf-to-root path, swapping
    /// with stored losers it loses to; returns the new overall winner.
    #[inline]
    pub(crate) fn replay(
        nodes: &mut [Entry],
        cap: usize,
        leaf: usize,
        mut cand: Entry,
        play: &mut impl FnMut(Entry, Entry) -> (Entry, Entry),
    ) -> Entry {
        let mut node = (cap + leaf) >> 1;
        while node >= 1 {
            let stored = nodes[node];
            let (win, lose) = play(cand, stored);
            nodes[node] = lose;
            cand = win;
            node >>= 1;
        }
        cand
    }
}

/// A node holding the late fence (empty leaf / pre-build placeholder).
pub(crate) const FENCE_ENTRY: Entry = Entry {
    code: Ovc::LATE_FENCE,
    run: 0,
};

/// Key slice of an entry's current row in a cursor-based tree (empty for
/// fences; only read when both codes are valid and equal, in which case
/// rows exist).
#[inline]
fn cursor_key(cur: &[Option<Row>], key_len: usize, e: Entry) -> &[u64] {
    cur.get(e.run as usize)
        .and_then(|r| r.as_ref())
        .map(|r| r.key(key_len))
        .unwrap_or(&[])
}

/// Key slice of an entry's current row in a flat-run merge.
#[inline]
fn flat_key<'a>(runs: &'a [FlatRows], pos: &[usize], key_len: usize, e: Entry) -> &'a [u64] {
    let r = e.run as usize;
    match runs.get(r) {
        Some(run) if pos[r] < run.len() => run.key(pos[r], key_len),
        _ => &[],
    }
}

/// Tree-of-losers priority queue merging `F` cursors of coded rows.
///
/// Each cursor must yield rows in ascending key order with exact codes
/// relative to the cursor's previous row (the [`OvcStream`] contract).
/// The merge output is itself a valid coded stream: the winner's code at
/// the root is its code relative to the previous overall winner, i.e. the
/// previous output row.
pub struct TreeOfLosers<C: Iterator<Item = OvcRow>> {
    cursors: Vec<C>,
    /// Current head row of each real input (index = run id); `None` once
    /// exhausted.  Padded inputs beyond `cursors.len()` are permanent
    /// late fences and have no slot here.
    cur: Vec<Option<Row>>,
    /// Internal nodes; slot 0 unused, slots `1..cap` hold losers.
    nodes: Vec<Entry>,
    winner: Entry,
    /// Leaf count: `cursors.len()` rounded up to a power of two.
    cap: usize,
    spec: SortSpec,
    /// Cached `spec.is_asc_prefix()` — selects the direction-free
    /// comparator in [`play_entries`].
    asc: bool,
    stats: Arc<Stats>,
}

impl<C: Iterator<Item = OvcRow>> TreeOfLosers<C> {
    /// Build the queue over the given cursors with the default
    /// all-ascending ordering on the leading `key_len` columns.
    pub fn new(cursors: Vec<C>, key_len: usize, stats: Arc<Stats>) -> Self {
        Self::new_spec(cursors, SortSpec::asc(key_len), stats)
    }

    /// Build the queue over cursors ordered (and coded) under `spec`.
    /// Runs compete at fixed leaves; missing leaves (when the fan-in is
    /// not a power of two) are late fences.  Every comparison is the
    /// same same-base code comparison as the ascending case — the spec
    /// only changes which direction column comparisons resolve in and
    /// how loser values are re-encoded ([`compare_same_base_spec`]).
    pub fn new_spec(mut cursors: Vec<C>, spec: SortSpec, stats: Arc<Stats>) -> Self {
        let f = cursors.len();
        let cap = f.next_power_of_two().max(1);
        let mut cur = Vec::with_capacity(f);
        let mut first_codes = Vec::with_capacity(f);
        for c in cursors.iter_mut() {
            match c.next() {
                Some(OvcRow { row, code }) => {
                    cur.push(Some(row));
                    first_codes.push(code);
                }
                None => {
                    cur.push(None);
                    first_codes.push(Ovc::LATE_FENCE);
                }
            }
        }
        let asc = spec.is_asc_prefix();
        let k = spec.len();
        let mut nodes = vec![FENCE_ENTRY; cap];
        let winner = {
            let mut play = |a: Entry, b: Entry| {
                play_entries(
                    a,
                    b,
                    cursor_key(&cur, k, a),
                    cursor_key(&cur, k, b),
                    &spec,
                    asc,
                    &stats,
                )
            };
            loser_tree::build(
                &mut nodes,
                cap,
                &mut |r| first_codes.get(r).copied().unwrap_or(Ovc::LATE_FENCE),
                &mut play,
            )
        };
        TreeOfLosers {
            cursors,
            cur,
            nodes,
            winner,
            cap,
            asc,
            spec,
            stats,
        }
    }

    /// Number of leaves (padded fan-in).
    pub fn fan_in(&self) -> usize {
        self.cap
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// Peek the code of the current overall winner without popping
    /// (late fence once the merge is exhausted).
    ///
    /// F1's merge logic uses this to route rows whose offset equals the
    /// key-column count straight to the output buffer (Section 5).
    pub fn peek_code(&self) -> Ovc {
        self.winner.code
    }
}

impl<C: Iterator<Item = OvcRow>> Iterator for TreeOfLosers<C> {
    type Item = OvcRow;

    fn next(&mut self) -> Option<OvcRow> {
        if self.winner.code.is_late_fence() {
            return None;
        }
        let w = self.winner.run as usize;
        let row = self.cur[w].take().expect("winner run has a current row");
        let out = OvcRow::new(row, self.winner.code);

        // Fetch the winner's successor from the same input; it is coded
        // relative to the row just output (prefix truncation within the
        // run), so the leaf-to-root pass below compares same-base codes.
        let cand = match self.cursors[w].next() {
            Some(OvcRow { row, code }) => {
                self.cur[w] = Some(row);
                Entry {
                    code,
                    run: w as u32,
                }
            }
            None => Entry {
                code: Ovc::LATE_FENCE,
                run: w as u32,
            },
        };

        // One comparison per tree level: the candidate retraces the prior
        // winner's leaf-to-root path.
        let (cur, spec, asc, stats) = (&self.cur, &self.spec, self.asc, &self.stats);
        let k = spec.len();
        let mut play = |a: Entry, b: Entry| {
            play_entries(
                a,
                b,
                cursor_key(cur, k, a),
                cursor_key(cur, k, b),
                spec,
                asc,
                stats,
            )
        };
        self.winner = loser_tree::replay(&mut self.nodes, self.cap, w, cand, &mut play);
        Some(out)
    }
}

impl<C: Iterator<Item = OvcRow>> OvcStream for TreeOfLosers<C> {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Tree-of-losers merge over **flat** runs: the allocation-free merge hot
/// path.
///
/// Where [`TreeOfLosers`] pulls boxed [`OvcRow`]s out of generic cursors,
/// `FlatMerge` keeps every input run's rows in place in its contiguous
/// [`FlatRows`] buffer and tracks one cursor *position* per run.  Each
/// steady-state step is the same same-base code tournament (shared
/// `play_entries` logic, hence bit-identical comparisons, codes, and
/// [`Stats`] counters), but the winner "moves" by advancing an index; its
/// row is copied slice-to-slice into a flat output buffer
/// ([`FlatMerge::into_run`]) or materialized as an [`OvcRow`] only when
/// the merge is itself the pipeline boundary (the [`Iterator`] impl).
/// Per-run reads are sequential, so the whole merge streams through
/// memory the way the hardware prefetcher wants.
pub struct FlatMerge {
    runs: Vec<FlatRows>,
    pos: Vec<usize>,
    nodes: Vec<Entry>,
    winner: Entry,
    cap: usize,
    width: usize,
    spec: SortSpec,
    asc: bool,
    stats: Arc<Stats>,
}

impl FlatMerge {
    /// Build the merge over flat runs ordered (and coded) under `spec`.
    pub fn new(runs: Vec<Run>, spec: SortSpec, stats: Arc<Stats>) -> Self {
        debug_assert!(runs.iter().all(|r| r.sort_spec() == &spec));
        let width = runs
            .iter()
            .find(|r| !r.is_empty())
            .map(Run::width)
            .unwrap_or(spec.len());
        let runs: Vec<FlatRows> = runs.into_iter().map(Run::into_flat).collect();
        let f = runs.len();
        let cap = f.next_power_of_two().max(1);
        let first_codes: Vec<Ovc> = runs
            .iter()
            .map(|r| {
                if r.is_empty() {
                    Ovc::LATE_FENCE
                } else {
                    r.code(0)
                }
            })
            .collect();
        let asc = spec.is_asc_prefix();
        let k = spec.len();
        let pos = vec![0usize; f];
        let mut nodes = vec![FENCE_ENTRY; cap];
        let winner = {
            let mut play = |a: Entry, b: Entry| {
                play_entries(
                    a,
                    b,
                    flat_key(&runs, &pos, k, a),
                    flat_key(&runs, &pos, k, b),
                    &spec,
                    asc,
                    &stats,
                )
            };
            loser_tree::build(
                &mut nodes,
                cap,
                &mut |r| first_codes.get(r).copied().unwrap_or(Ovc::LATE_FENCE),
                &mut play,
            )
        };
        FlatMerge {
            pos,
            runs,
            nodes,
            winner,
            cap,
            width,
            asc,
            spec,
            stats,
        }
    }

    /// Pop the winner as `(run, row index, code)` — the row itself stays
    /// in the run's buffer for the caller to copy or borrow.
    #[inline]
    fn next_idx(&mut self) -> Option<(usize, usize, Ovc)> {
        if self.winner.code.is_late_fence() {
            return None;
        }
        let w = self.winner.run as usize;
        let idx = self.pos[w];
        let out_code = self.winner.code;
        self.pos[w] += 1;

        // The successor from the same run is coded relative to the row
        // just output (prefix truncation within the run), so the
        // leaf-to-root pass below compares same-base codes.
        let succ = if self.pos[w] < self.runs[w].len() {
            self.runs[w].code(self.pos[w])
        } else {
            Ovc::LATE_FENCE
        };
        let cand = Entry {
            code: succ,
            run: w as u32,
        };
        let (runs, pos, spec, asc, stats) =
            (&self.runs, &self.pos, &self.spec, self.asc, &self.stats);
        let k = spec.len();
        let mut play = |a: Entry, b: Entry| {
            play_entries(
                a,
                b,
                flat_key(runs, pos, k, a),
                flat_key(runs, pos, k, b),
                spec,
                asc,
                stats,
            )
        };
        self.winner = loser_tree::replay(&mut self.nodes, self.cap, w, cand, &mut play);
        Some((w, idx, out_code))
    }

    /// Rows remaining across all inputs.
    fn remaining(&self) -> usize {
        self.runs
            .iter()
            .zip(&self.pos)
            .map(|(r, &p)| r.len() - p)
            .sum()
    }

    /// Panic unless no row has streamed out yet: a partially-consumed
    /// merge cannot become a run (the next winner's code is relative to a
    /// row that is gone, so the output would violate the stream contract
    /// silently).
    fn assert_unconsumed(&self) {
        assert!(
            self.pos.iter().all(|&p| p == 0),
            "cannot collect a partially-consumed merge into a run"
        );
    }

    /// Drain the merge into one flat run: winner rows are copied straight
    /// into a contiguous output buffer — no boxed row anywhere.  Panics if
    /// rows were already taken through the [`Iterator`] impl.
    pub fn into_run(mut self) -> Run {
        self.assert_unconsumed();
        let mut out = FlatRows::with_capacity(self.width, self.remaining());
        while let Some((r, i, code)) = self.next_idx() {
            out.push_from(&self.runs[r], i, code);
        }
        Run::from_flat_trusted(out, self.spec)
    }

    /// As [`FlatMerge::into_run`], dropping duplicate-coded rows on the
    /// fly (the in-sort duplicate removal of Figure 5: one integer test
    /// per row, and removing a row whose code says "equal to my
    /// predecessor" leaves every surviving code exact).
    pub fn into_run_distinct(mut self) -> Run {
        self.assert_unconsumed();
        let mut out = FlatRows::with_capacity(self.width, self.remaining());
        while let Some((r, i, code)) = self.next_idx() {
            if !code.is_duplicate() {
                out.push_from(&self.runs[r], i, code);
            }
        }
        Run::from_flat_trusted(out, self.spec)
    }

    /// Number of leaves (padded fan-in).
    pub fn fan_in(&self) -> usize {
        self.cap
    }
}

impl Iterator for FlatMerge {
    type Item = OvcRow;

    fn next(&mut self) -> Option<OvcRow> {
        let (r, i, code) = self.next_idx()?;
        Some(OvcRow::new(Row::from_slice(self.runs[r].row(i)), code))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.remaining();
        (left, Some(left))
    }
}

impl OvcStream for FlatMerge {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;

    fn stream_of(rows: Vec<Vec<u64>>, key_len: usize) -> VecStream {
        VecStream::from_sorted_rows(rows.into_iter().map(Row::new).collect(), key_len)
    }

    #[test]
    fn merges_two_runs() {
        let a = stream_of(vec![vec![1, 1], vec![3, 1], vec![5, 1]], 2);
        let b = stream_of(vec![vec![2, 1], vec![4, 1], vec![6, 1]], 2);
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new(vec![a, b], 2, stats);
        let pairs = collect_pairs(tree);
        let keys: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[0]).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6]);
        assert_codes_exact(&pairs, 2);
    }

    #[test]
    fn merge_output_codes_are_exact_for_many_runs() {
        // Three runs with interleaved values and duplicates, odd fan-in.
        let r1 = stream_of(vec![vec![1, 2], vec![1, 5], vec![7, 0]], 2);
        let r2 = stream_of(vec![vec![1, 2], vec![4, 4]], 2);
        let r3 = stream_of(vec![vec![0, 9], vec![9, 9]], 2);
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new(vec![r1, r2, r3], 2, stats);
        let pairs = collect_pairs(tree);
        assert_eq!(pairs.len(), 7);
        assert_codes_exact(&pairs, 2);
    }

    #[test]
    fn single_run_passes_through() {
        let a = stream_of(vec![vec![2], vec![3], vec![9]], 1);
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new(vec![a], 1, Arc::clone(&stats));
        let pairs = collect_pairs(tree);
        assert_eq!(pairs.len(), 3);
        assert_codes_exact(&pairs, 1);
        // A single input requires no column comparisons at all.
        assert_eq!(stats.col_value_cmps(), 0);
    }

    #[test]
    fn empty_inputs() {
        let stats = Stats::new_shared();
        let tree: TreeOfLosers<VecStream> = TreeOfLosers::new(vec![], 1, stats);
        assert_eq!(tree.count(), 0);

        let empty = stream_of(vec![], 1);
        let full = stream_of(vec![vec![1]], 1);
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new(vec![empty, full], 1, stats);
        let pairs = collect_pairs(tree);
        assert_eq!(pairs.len(), 1);
        assert_codes_exact(&pairs, 1);
    }

    #[test]
    fn all_duplicates_across_runs() {
        let a = stream_of(vec![vec![5, 5]; 3], 2);
        let b = stream_of(vec![vec![5, 5]; 2], 2);
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new(vec![a, b], 2, stats);
        let pairs = collect_pairs(tree);
        assert_eq!(pairs.len(), 5);
        assert_codes_exact(&pairs, 2);
        // All rows after the first carry the duplicate code.
        assert!(pairs[1..].iter().all(|(_, c)| c.is_duplicate()));
    }

    #[test]
    fn merge_is_stable_by_run_index() {
        // Equal keys must come out in run order (payload reveals origin).
        let a = stream_of(vec![vec![5, 100]], 1);
        let b = stream_of(vec![vec![5, 200]], 1);
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new(vec![a, b], 1, stats);
        let rows: Vec<Row> = tree.map(|r| r.row).collect();
        assert_eq!(rows[0].cols()[1], 100);
        assert_eq!(rows[1].cols()[1], 200);
    }

    #[test]
    fn column_comparisons_bounded_by_n_times_k() {
        // 8 runs of 32 rows each, 3 key columns with few distinct values.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut runs = Vec::new();
        let mut n = 0u64;
        for _ in 0..8 {
            let mut rows: Vec<Row> = (0..32)
                .map(|_| {
                    Row::new(vec![
                        rng.gen_range(0..4u64),
                        rng.gen_range(0..4u64),
                        rng.gen_range(0..4u64),
                    ])
                })
                .collect();
            rows.sort();
            n += rows.len() as u64;
            runs.push(VecStream::from_sorted_rows(rows, 3));
        }
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new(runs, 3, Arc::clone(&stats));
        let pairs = collect_pairs(tree);
        assert_eq!(pairs.len() as u64, n);
        assert_codes_exact(&pairs, 3);
        // The paper's bound: total column-value comparisons <= N * K.
        assert!(
            stats.col_value_cmps() <= n * 3,
            "col cmps {} exceed N*K = {}",
            stats.col_value_cmps(),
            n * 3
        );
    }

    #[test]
    fn merges_mixed_direction_runs_with_exact_codes() {
        use ovc_core::derive::assert_codes_exact_spec;
        use ovc_core::Direction;
        let spec = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        // Two runs ordered [c0 desc, c1 asc].
        let a = VecStream::from_sorted_rows_spec(
            vec![
                Row::new(vec![9, 1]),
                Row::new(vec![5, 0]),
                Row::new(vec![5, 7]),
            ],
            spec.clone(),
        );
        let b = VecStream::from_sorted_rows_spec(
            vec![
                Row::new(vec![7, 2]),
                Row::new(vec![5, 7]),
                Row::new(vec![1, 1]),
            ],
            spec.clone(),
        );
        let stats = Stats::new_shared();
        let tree = TreeOfLosers::new_spec(vec![a, b], spec.clone(), stats);
        assert_eq!(tree.sort_spec(), spec);
        let pairs = collect_pairs(tree);
        let keys: Vec<Vec<u64>> = pairs.iter().map(|(r, _)| r.cols().to_vec()).collect();
        assert_eq!(
            keys,
            vec![
                vec![9, 1],
                vec![7, 2],
                vec![5, 0],
                vec![5, 7],
                vec![5, 7],
                vec![1, 1]
            ]
        );
        assert_codes_exact_spec(&pairs, &spec);
    }

    #[test]
    fn peek_code_matches_next_output() {
        let a = stream_of(vec![vec![1], vec![2]], 1);
        let stats = Stats::new_shared();
        let mut tree = TreeOfLosers::new(vec![a], 1, stats);
        let peeked = tree.peek_code();
        let first = tree.next().unwrap();
        assert_eq!(peeked, first.code);
        tree.next();
        assert!(tree.peek_code().is_late_fence());
    }
}
