//! Segmented sorting (Section 4.3).
//!
//! "A typical example is a stream sorted on (A, B) but required sorted on
//! (A, C) — one can … segment the input on distinct values of (A) and sort
//! each segment only on (C)."
//!
//! With offset-value codes, *"inspection of these code values suffices"*
//! to find segment boundaries: an offset smaller than the segmentation-key
//! length indicates a boundary — no column-value comparisons at all.
//! Within a segment all rows share the segmentation key exactly, so the
//! per-segment sort compares only the suffix columns, and the refined
//! offsets extend past the segmentation key exactly as the paper
//! describes ("all offsets within a segment are cut to the size of (A) …
//! to be extended again by the sort within each segment").

use std::sync::Arc;

use ovc_core::{Ovc, OvcRow, OvcStream, Row, Stats};

/// Re-sort a stream that is sorted on its first `seg_len` columns into one
/// sorted on its first `out_key_len` columns (`out_key_len >= seg_len`),
/// one segment at a time.
///
/// The input's codes (arity `input.key_len()`) are consumed to detect
/// segment boundaries for free; the output's codes have arity
/// `out_key_len` and are exact.
pub struct SegmentedSort<S: OvcStream> {
    input: std::iter::Peekable<S>,
    in_key_len: usize,
    seg_len: usize,
    out_key_len: usize,
    /// Clamped boundary code of the segment currently buffered.
    segment: std::vec::IntoIter<OvcRow>,
    stats: Arc<Stats>,
    first_segment: bool,
}

impl<S: OvcStream> SegmentedSort<S> {
    /// Build the operator.  Panics unless
    /// `seg_len <= input.key_len()` and `seg_len <= out_key_len`.
    pub fn new(input: S, seg_len: usize, out_key_len: usize, stats: Arc<Stats>) -> Self {
        let in_key_len = input.key_len();
        assert!(
            seg_len <= in_key_len,
            "segment key must be a prefix of the input key"
        );
        assert!(
            seg_len <= out_key_len,
            "output key must extend the segment key"
        );
        SegmentedSort {
            input: input.peekable(),
            in_key_len,
            seg_len,
            out_key_len,
            segment: Vec::new().into_iter(),
            stats,
            first_segment: true,
        }
    }

    /// Pull the next segment from the input, sort it on the output key,
    /// and refine its codes.
    fn refill(&mut self) -> bool {
        let first = match self.input.next() {
            Some(r) => r,
            None => return false,
        };
        // The boundary row's input code, clamped to the segmentation key,
        // is exact for the output arity: every row of the previous segment
        // shares the same segmentation-key value, so the first difference
        // (and the value there) is the same against any of them.
        let boundary_code = if self.first_segment {
            self.first_segment = false;
            Ovc::initial(first.row.key(self.out_key_len))
        } else {
            clamp_and_rebase(first.code, self.in_key_len, self.out_key_len)
        };

        let mut rows: Vec<Row> = vec![first.row];
        // Segment membership by code inspection: offset >= seg_len means
        // the row shares the whole segmentation key with its predecessor.
        while let Some(peek) = self.input.peek() {
            let code = peek.code;
            let within = code.is_valid() && code.offset(self.in_key_len) >= self.seg_len;
            if !within {
                break;
            }
            rows.push(
                self.input
                    .next()
                    .expect("peek just returned Some, so next() cannot be exhausted")
                    .row,
            );
        }

        // Sort the segment on the suffix columns only; the shared
        // segmentation-key prefix never needs another comparison.
        let (seg_len, out_key_len) = (self.seg_len, self.out_key_len);
        let stats = Arc::clone(&self.stats);
        rows.sort_by(|a, b| {
            for i in seg_len..out_key_len {
                stats.count_col_cmp();
                match a.cols()[i].cmp(&b.cols()[i]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });

        // Refine codes within the segment: offsets extend past seg_len.
        let mut coded = Vec::with_capacity(rows.len());
        let mut prev: Option<&Row> = None;
        for row in &rows {
            let code = match prev {
                None => boundary_code,
                Some(p) => derive_within_segment(
                    p.key(out_key_len),
                    row.key(out_key_len),
                    seg_len,
                    &self.stats,
                ),
            };
            coded.push(OvcRow::new(row.clone(), code));
            prev = Some(row);
        }
        self.segment = coded.into_iter();
        true
    }
}

/// Re-express a segment-boundary code (arity `in_arity`) for the output
/// arity.  A boundary code's offset lies below the segmentation key, hence
/// within both arities, so offset and value carry over unchanged — this is
/// the paper's "cut to the size of the segmentation key" in the only case
/// where anything survives the cut.
fn clamp_and_rebase(code: Ovc, in_arity: usize, out_arity: usize) -> Ovc {
    debug_assert!(code.is_valid());
    Ovc::new(code.offset(in_arity), code.value(), out_arity)
}

/// Exact code of `succ` relative to `pred` where both share the first
/// `seg_len` columns — comparisons start past the segmentation key.
fn derive_within_segment(pred: &[u64], succ: &[u64], seg_len: usize, stats: &Stats) -> Ovc {
    debug_assert_eq!(&pred[..seg_len], &succ[..seg_len]);
    let arity = succ.len();
    for i in seg_len..arity {
        stats.count_col_cmp();
        if pred[i] != succ[i] {
            debug_assert!(pred[i] < succ[i]);
            return Ovc::new(i, succ[i], arity);
        }
    }
    Ovc::duplicate()
}

impl<S: OvcStream> Iterator for SegmentedSort<S> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            if let Some(r) = self.segment.next() {
                return Some(r);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

impl<S: OvcStream> OvcStream for SegmentedSort<S> {
    fn key_len(&self) -> usize {
        self.out_key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use ovc_core::VecStream;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Rows with columns (A, C, B): sorted on (A, B) means sorted on
    /// column 0 then 2; we want (A, C) = columns 0 then 1.
    fn make_input(n: usize, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..n)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..5u64),  // A
                    rng.gen_range(0..50u64), // C
                    rng.gen_range(0..50u64), // B
                ])
            })
            .collect();
        // Sort on (A, B) = columns (0, 2).
        rows.sort_by(|a, b| (a.cols()[0], a.cols()[2]).cmp(&(b.cols()[0], b.cols()[2])));
        rows
    }

    #[test]
    fn resorts_on_new_suffix() {
        let rows = make_input(300, 1);
        // Input stream: sorted on column 0 (A) only as far as codes of
        // arity 1 are concerned.
        let input = VecStream::from_sorted_rows(rows, 1);
        let stats = Stats::new_shared();
        let seg = SegmentedSort::new(input, 1, 2, Arc::clone(&stats));
        let pairs = collect_pairs(seg);
        assert_eq!(pairs.len(), 300);
        assert_codes_exact(&pairs, 2);
        // Output is sorted on (A, C).
        for w in pairs.windows(2) {
            assert!(w[0].0.key(2) <= w[1].0.key(2));
        }
    }

    #[test]
    fn boundary_detection_needs_no_boundary_comparisons() {
        // Fully distinct segment keys: every row its own segment; zero
        // column comparisons should be needed to find boundaries.
        let rows: Vec<Row> = (0..100).map(|i| Row::new(vec![i, 100 - i])).collect();
        let input = VecStream::from_sorted_rows(rows, 1);
        let stats = Stats::new_shared();
        let seg = SegmentedSort::new(input, 1, 2, Arc::clone(&stats));
        let pairs = collect_pairs(seg);
        assert_eq!(pairs.len(), 100);
        assert_codes_exact(&pairs, 2);
        assert_eq!(
            stats.col_value_cmps(),
            0,
            "single-row segments require no comparisons at all"
        );
    }

    #[test]
    fn single_segment_input() {
        // All rows share A: one big segment.
        let mut rows: Vec<Row> = (0..50).map(|i| Row::new(vec![7, 49 - i])).collect();
        rows.sort_by_key(|r| r.cols()[1]); // already sorted on (A, B=C here)
        let rows: Vec<Row> = (0..50).map(|i| Row::new(vec![7, (i * 13) % 50])).collect();
        let input = VecStream::from_sorted_rows(
            {
                let mut r = rows;
                r.sort_by_key(|x| x.cols()[0]);
                r
            },
            1,
        );
        let stats = Stats::new_shared();
        let seg = SegmentedSort::new(input, 1, 2, Arc::clone(&stats));
        let pairs = collect_pairs(seg);
        assert_eq!(pairs.len(), 50);
        assert_codes_exact(&pairs, 2);
    }

    #[test]
    fn empty_input() {
        let input = VecStream::from_sorted_rows(vec![], 1);
        let stats = Stats::new_shared();
        let mut seg = SegmentedSort::new(input, 1, 2, stats);
        assert!(seg.next().is_none());
    }

    #[test]
    fn segment_key_equals_out_key_passes_through() {
        let rows = ovc_core::table1::rows();
        let input = VecStream::from_sorted_rows(rows.clone(), 4);
        let stats = Stats::new_shared();
        let seg = SegmentedSort::new(input, 4, 4, stats);
        let pairs = collect_pairs(seg);
        assert_codes_exact(&pairs, 4);
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, rows);
    }
}
