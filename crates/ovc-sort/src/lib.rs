//! # ovc-sort — sorting with tree-of-losers priority queues and OVC
//!
//! The sorting substrate of the EDBT 2023 reproduction (Sections 3 and 5
//! of the paper):
//!
//! * [`tree`] — the tree-of-losers priority queue of Figures 1–3, with
//!   fences and offset-value codes folded into one 64-bit comparison;
//! * [`runs`] — sorted coded runs in flat columnar layout (in-memory
//!   prefix-truncation equivalent);
//! * [`run_gen`] — run generation by priority queue (OVC-native) or
//!   quicksort (baseline);
//! * [`replacement`] — replacement selection for longer runs;
//! * [`merge`] — multi-way merging that consumes *and produces* codes;
//! * [`external`] — the external merge sort modeled on F1's sort operator,
//!   with spill accounting;
//! * [`parallel`] — parallel run generation (one sorter thread per
//!   row-range slice) feeding the same bounded-fan-in coded merge, with
//!   byte-identical output rows and codes;
//! * [`segmented`] — segmented sorting (Section 4.3), finding segment
//!   boundaries by code inspection alone.
//!
//! ```
//! use ovc_core::{Row, Stats};
//! use ovc_sort::external::{external_sort_collect, SortConfig};
//!
//! let rows = vec![Row::new(vec![3, 1]), Row::new(vec![1, 2]), Row::new(vec![2, 0])];
//! let stats = Stats::new_shared();
//! let sorted = external_sort_collect(rows, SortConfig::new(2, 1024), &stats);
//! assert_eq!(sorted[0].row.cols()[0], 1);
//! assert_eq!(sorted.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod external;
pub mod merge;
pub mod parallel;
pub mod replacement;
pub mod run_gen;
pub mod runs;
pub mod segmented;
pub mod tree;

pub use external::{
    external_sort, external_sort_collect, external_sort_spec, external_sort_spec_collect,
    external_sort_spec_resilient, external_sort_spec_to_run, try_external_sort_spec,
    MemoryRunStorage, RunStorage, SortConfig, SortOutput,
};
pub use merge::{
    merge_runs, merge_runs_spec, merge_runs_to_run, merge_runs_to_run_spec, merge_streams,
    merge_streams_spec,
};
pub use parallel::{
    parallel_generate_runs, parallel_generate_runs_spec, parallel_sort, parallel_sort_distinct,
    parallel_sort_spec, parallel_sort_spec_spilled,
};
pub use run_gen::{
    generate_runs, generate_runs_spec, sort_rows_ovc, sort_rows_ovc_spec, sort_rows_quicksort,
    sort_rows_quicksort_spec, RunGenStrategy,
};
pub use runs::{Run, RunBatches, RunCursor};
pub use segmented::SegmentedSort;
pub use tree::{FlatMerge, TreeOfLosers};
