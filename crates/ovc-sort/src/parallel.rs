//! Parallel run generation feeding the coded merge (Section 6 at scale).
//!
//! The paper's experiments run single-threaded, but the systems it builds
//! on do not: F1 Query runs exchange-parallel plans and Napa's LSM
//! compactions merge across workers.  This module parallelizes the
//! *embarrassingly parallel* half of an external sort — run generation —
//! with `std::thread` alone:
//!
//! 1. slice the input into one contiguous row range per worker;
//! 2. each worker generates sorted, exactly-coded runs with the OVC
//!    tree-of-losers (its own per-thread [`Stats`], merged into the
//!    caller's by snapshot afterwards — see `ovc_core::stats`);
//! 3. the caller's thread merges all runs with the existing bounded-fan-in
//!    coded merge.
//!
//! **Equivalence guarantee:** exact offset-value codes are a function of
//! the output row sequence alone (each code relates a row to its
//! predecessor), so a parallel sort produces rows *and codes* byte-for-byte
//! identical to the serial sort — asserted by `tests/parallel_properties.rs`
//! and relied on by `ovc-plan` when it picks a parallel plan.
//!
//! Counters differ from the serial sort in one deliberate way: the
//! parallel lowering keeps every run resident, so it **never spills**
//! (`ovc_plan::cost::sort_ovc_parallel` prices it accordingly), while
//! comparison counts obey the same `N × K` bound and land within
//! run-boundary effects of the serial totals.  Note `memory_rows` is an
//! accounting budget throughout this repository — the serial sorter's
//! `MemoryRunStorage` also holds "spilled" runs in RAM — so residency
//! here changes the counters, not the process footprint; real
//! out-of-core parallel spilling is a ROADMAP item.

use std::sync::Arc;
use std::thread;

use ovc_core::ctx::{self, ExecError};
use ovc_core::fault;
use ovc_core::{OvcRow, OvcStream, Row, SortSpec, Stats, StatsSnapshot};

use crate::external::{RunStorage, SortOutput};
use crate::merge::{merge_runs_spec, merge_runs_to_run_spec};
use crate::run_gen::{generate_runs_spec, RunGenStrategy};
use crate::runs::Run;

/// Join every worker, collecting the successes and the *first* panic
/// payload (mapped to a typed [`ExecError`]).  Joining all handles before
/// reporting is what keeps a single panicked worker from leaking threads
/// or deadlocking peers; callers absorb surviving workers' stats and then
/// propagate the error.
fn join_all<T>(workers: Vec<thread::ScopedJoinHandle<'_, T>>) -> (Vec<T>, Option<ExecError>) {
    let mut done = Vec::with_capacity(workers.len());
    let mut first_err = None;
    for worker in workers {
        match worker.join() {
            Ok(v) => done.push(v),
            Err(payload) => {
                let err = ctx::error_from_panic(payload);
                first_err.get_or_insert(err);
            }
        }
    }
    (done, first_err)
}

/// Generate initial runs from `threads` workers over contiguous row-range
/// slices of the input.  Each worker respects the per-worker `memory_rows`
/// budget; per-thread comparison counts are merged into `stats`.
pub fn parallel_generate_runs(
    rows: Vec<Row>,
    key_len: usize,
    threads: usize,
    memory_rows: usize,
    stats: &Arc<Stats>,
) -> Vec<Run> {
    parallel_generate_runs_spec(rows, &SortSpec::asc(key_len), threads, memory_rows, stats)
}

/// [`parallel_generate_runs`] under an arbitrary leading-prefix
/// [`SortSpec`] (mixed ascending/descending directions, normalized keys).
/// The ascending-prefix case takes the identical code path as the
/// unsuffixed function — `generate_runs_spec` dispatches to the same
/// kernel — so rows, codes, *and counters* are unchanged for it.
pub fn parallel_generate_runs_spec(
    rows: Vec<Row>,
    spec: &SortSpec,
    threads: usize,
    memory_rows: usize,
    stats: &Arc<Stats>,
) -> Vec<Run> {
    let threads = threads.clamp(1, rows.len().max(1));
    if threads <= 1 {
        return generate_runs_spec(
            rows,
            spec,
            memory_rows,
            RunGenStrategy::OvcPriorityQueue,
            stats,
        );
    }
    let chunk_len = rows.len().div_ceil(threads);
    let mut chunks: Vec<Vec<Row>> = Vec::with_capacity(threads);
    let mut rest = rows;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    let (results, failure) = thread::scope(|scope| {
        let workers: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    fault::maybe_panic();
                    // Per-thread counters: `Arc<Stats>` never crosses the
                    // thread boundary; only the snapshot does.
                    let local = Stats::new_shared();
                    let runs = generate_runs_spec(
                        chunk,
                        spec,
                        memory_rows,
                        RunGenStrategy::OvcPriorityQueue,
                        &local,
                    );
                    (runs, local.snapshot())
                })
            })
            .collect();
        join_all(workers)
    });

    let mut runs = Vec::new();
    for (worker_runs, snapshot) in results {
        stats.absorb(&snapshot);
        runs.extend(worker_runs);
    }
    if let Some(err) = failure {
        ctx::propagate(err);
    }
    runs
}

/// Reduce a run set to at most `fan_in` runs by cascaded in-memory merges
/// (the bounded-fan-in regime of the external sorter, without the spill:
/// parallel run generation keeps everything resident).  `post` transforms
/// each merged run before the next level — identity for a plain sort,
/// duplicate removal for the distinct variant.
fn reduce_to_fan_in(
    mut runs: Vec<Run>,
    spec: &SortSpec,
    fan_in: usize,
    stats: &Arc<Stats>,
    post: impl Fn(Run) -> Run,
) -> Vec<Run> {
    let fan_in = fan_in.max(2);
    while runs.len() > fan_in {
        let mut next = Vec::with_capacity(runs.len().div_ceil(fan_in));
        let mut level = runs.into_iter();
        loop {
            let group: Vec<Run> = level.by_ref().take(fan_in).collect();
            if group.is_empty() {
                break;
            }
            next.push(post(merge_runs_to_run_spec(group, spec, stats)));
        }
        runs = next;
    }
    runs
}

/// Sort rows with `threads` parallel run-generation workers, streaming the
/// final bounded-fan-in coded merge.  Output rows and codes are identical
/// to [`crate::external::external_sort`] over the same input.
pub fn parallel_sort(
    rows: Vec<Row>,
    key_len: usize,
    threads: usize,
    memory_rows: usize,
    fan_in: usize,
    stats: &Arc<Stats>,
) -> SortOutput {
    parallel_sort_spec(
        rows,
        &SortSpec::asc(key_len),
        threads,
        memory_rows,
        fan_in,
        stats,
    )
}

/// [`parallel_sort`] under an arbitrary leading-prefix [`SortSpec`] —
/// the direction-aware lowering the planner uses for `ORDER BY ... DESC`
/// at dop > 1.  Mirrors `external_sort_spec` the way [`parallel_sort`]
/// mirrors `external_sort`: same workers, same cascaded reduce, with
/// every merge running the spec-aware tree.  Output rows and codes are
/// identical to `external_sort_spec` over the same input.
pub fn parallel_sort_spec(
    rows: Vec<Row>,
    spec: &SortSpec,
    threads: usize,
    memory_rows: usize,
    fan_in: usize,
    stats: &Arc<Stats>,
) -> SortOutput {
    let runs = parallel_generate_runs_spec(rows, spec, threads, memory_rows, stats);
    if runs.is_empty() {
        return SortOutput::Memory(Run::empty_spec(spec.clone()).cursor());
    }
    let mut runs = reduce_to_fan_in(runs, spec, fan_in, stats, |run| run);
    if runs.len() == 1 {
        return SortOutput::Memory(runs.pop().expect("one run").cursor());
    }
    SortOutput::Merge(merge_runs_spec(runs, spec, stats))
}

/// [`parallel_sort_spec`] with **per-worker spill devices**: each worker
/// thread builds its own [`RunStorage`] via `make_storage`, spills every
/// run it generates, and the device — runs and all — moves back to the
/// coordinator, which reads the runs back for the bounded-fan-in merge.
///
/// This is the out-of-core regime the resident [`parallel_sort_spec`]
/// skips: every input row is spilled exactly once and read back exactly
/// once (the Figure 6 sort-plan property), now with the spill bandwidth
/// spread across workers.  It is also the function that *forces*
/// `RunStorage: Send` — devices are created on worker threads and
/// consumed on the caller's.  Accounting flows through whatever `Stats`
/// handle the factory bakes into each device (shared `Arc<Stats>` now
/// crosses threads, so `|| MemoryRunStorage::new(Arc::clone(&stats))`
/// simply works); comparison counters from run generation land in
/// `stats` via per-thread snapshots as in [`parallel_sort_spec`].
///
/// Output rows and codes are byte-identical to
/// [`crate::external::external_sort_spec`] over the same input.
pub fn parallel_sort_spec_spilled<S, F>(
    rows: Vec<Row>,
    spec: &SortSpec,
    threads: usize,
    memory_rows: usize,
    fan_in: usize,
    make_storage: F,
    stats: &Arc<Stats>,
) -> SortOutput
where
    S: RunStorage,
    F: Fn() -> S + Send + Sync,
{
    let threads = threads.clamp(1, rows.len().max(1));
    let chunk_len = rows.len().div_ceil(threads.max(1)).max(1);
    let mut chunks: Vec<Vec<Row>> = Vec::with_capacity(threads);
    let mut rest = rows;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    // Each worker: generate runs from its slice, spill every run into its
    // own device, send the loaded device home.  Spill failures ride back
    // as data (`Result` handles), worker panics as typed join errors —
    // either way every worker is joined before anything propagates.
    type SpilledSlice<S> = (S, Result<Vec<usize>, ExecError>, StatsSnapshot);
    let (results, failure): (Vec<SpilledSlice<S>>, Option<ExecError>) = thread::scope(|scope| {
        let workers: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let make_storage = &make_storage;
                scope.spawn(move || {
                    fault::maybe_panic();
                    let local = Stats::new_shared();
                    let mut device = make_storage();
                    let runs = generate_runs_spec(
                        chunk,
                        spec,
                        memory_rows,
                        RunGenStrategy::OvcPriorityQueue,
                        &local,
                    );
                    let handles: Result<Vec<usize>, ExecError> =
                        runs.into_iter().map(|r| device.write_run(r)).collect();
                    (device, handles, local.snapshot())
                })
            })
            .collect();
        join_all(workers)
    });

    // Coordinator: absorb worker comparison counts, read every spilled
    // run back, merge with bounded fan-in exactly like the resident path.
    let mut runs = Vec::new();
    let mut spill_err = failure;
    for (mut device, handles, snapshot) in results {
        stats.absorb(&snapshot);
        match handles {
            Ok(handles) if spill_err.is_none() => {
                for h in handles {
                    match device.read_run(h) {
                        Ok(run) => runs.push(run),
                        Err(err) => {
                            spill_err.get_or_insert(err);
                            break;
                        }
                    }
                }
            }
            Ok(_) => {}
            Err(err) => {
                spill_err.get_or_insert(err);
            }
        }
    }
    if let Some(err) = spill_err {
        ctx::propagate(err);
    }
    if runs.is_empty() {
        return SortOutput::Memory(Run::empty_spec(spec.clone()).cursor());
    }
    let mut runs = reduce_to_fan_in(runs, spec, fan_in, stats, |run| run);
    if runs.len() == 1 {
        return SortOutput::Memory(runs.pop().expect("one run").cursor());
    }
    SortOutput::Merge(merge_runs_spec(runs, spec, stats))
}

/// Convenience: parallel sort and collect.
pub fn parallel_sort_collect(
    rows: Vec<Row>,
    key_len: usize,
    threads: usize,
    memory_rows: usize,
    stats: &Arc<Stats>,
) -> Vec<OvcRow> {
    parallel_sort(rows, key_len, threads, memory_rows, 128, stats).collect()
}

/// Parallel external sort with duplicate removal folded in (the parallel
/// lowering of the planner's `InSortDistinct`): workers dedup their runs
/// by code inspection before hand-off, merges dedup at every level, and
/// the final stream drops duplicate-coded rows.  Rows and codes match the
/// serial `ovc_exec::plans::in_sort_distinct` byte for byte.
pub fn parallel_sort_distinct(
    rows: Vec<Row>,
    key_len: usize,
    threads: usize,
    memory_rows: usize,
    fan_in: usize,
    stats: &Arc<Stats>,
) -> impl OvcStream {
    let spec = SortSpec::asc(key_len);
    let runs: Vec<Run> = parallel_generate_runs(rows, key_len, threads, memory_rows, stats)
        .into_iter()
        .map(Run::into_distinct)
        .collect();
    let runs = reduce_to_fan_in(runs, &spec, fan_in, stats, Run::into_distinct);
    let inner = if runs.len() <= 1 {
        SortOutput::Memory(
            runs.into_iter()
                .next()
                .unwrap_or_else(|| Run::empty(key_len))
                .cursor(),
        )
    } else {
        SortOutput::Merge(merge_runs_spec(runs, &spec, stats))
    };
    DedupCodes(inner)
}

/// Streaming duplicate filter by code inspection (one integer test/row).
struct DedupCodes(SortOutput);

impl Iterator for DedupCodes {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            let r = self.0.next()?;
            if !r.code.is_duplicate() {
                return Some(r);
            }
        }
    }
}

impl OvcStream for DedupCodes {
    fn key_len(&self) -> usize {
        self.0.key_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::external::external_sort_collect;
    use crate::external_sort_spec_collect;
    use crate::SortConfig;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::{Ovc, Row};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, k: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new((0..k).map(|_| rng.gen_range(0..domain)).collect()))
            .collect()
    }

    #[test]
    fn parallel_sort_matches_serial_rows_and_codes() {
        let rows = random_rows(5000, 3, 12, 1);
        for threads in [1usize, 2, 3, 4, 8] {
            let s_par = Stats::new_shared();
            let s_ser = Stats::new_shared();
            let par = parallel_sort_collect(rows.clone(), 3, threads, 256, &s_par);
            let ser = external_sort_collect(rows.clone(), SortConfig::new(3, 256), &s_ser);
            assert_eq!(par, ser, "threads={threads}");
            let pairs: Vec<(Row, Ovc)> = par.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact(&pairs, 3);
        }
    }

    #[test]
    fn parallel_sort_counts_worker_comparisons() {
        // Per-thread Stats snapshots must land in the caller's counters;
        // the N×K bound holds regardless of the thread count.
        let rows = random_rows(2000, 2, 5, 2);
        let stats = Stats::new_shared();
        let _ = parallel_sort_collect(rows, 2, 4, 128, &stats);
        assert!(stats.col_value_cmps() > 0, "worker counters merged");
        assert!(
            stats.col_value_cmps() <= 2000 * 2,
            "N*K bound: {}",
            stats.col_value_cmps()
        );
    }

    #[test]
    fn parallel_sort_distinct_matches_serial_distinct() {
        let rows = random_rows(4000, 2, 9, 3);
        let mut expect: Vec<Row> = rows.clone();
        expect.sort();
        expect.dedup();
        for threads in [2usize, 4] {
            let stats = Stats::new_shared();
            let out: Vec<OvcRow> =
                parallel_sort_distinct(rows.clone(), 2, threads, 128, 8, &stats).collect();
            let got: Vec<Row> = out.iter().map(|r| r.row.clone()).collect();
            assert_eq!(got, expect, "threads={threads}");
            let pairs: Vec<(Row, Ovc)> = out.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact(&pairs, 2);
        }
    }

    #[test]
    fn narrow_fan_in_cascades_without_spilling() {
        let rows = random_rows(3000, 2, 10, 4);
        let stats = Stats::new_shared();
        let out: Vec<OvcRow> = parallel_sort(rows.clone(), 2, 4, 64, 3, &stats).collect();
        let ser = external_sort_collect(rows, SortConfig::new(2, 64), &Stats::new_shared());
        assert_eq!(out, ser);
        // Parallel run generation keeps everything resident.
        assert_eq!(stats.rows_spilled(), 0);
    }

    #[test]
    fn parallel_sort_spec_matches_serial_on_mixed_directions() {
        // Satellite: direction-aware parallel sorts.  A mixed asc/desc
        // spec at every thread count must match the serial spec sort row
        // for row and code for code.
        use ovc_core::derive::assert_codes_exact_spec;
        use ovc_core::spec::Direction;

        let rows = random_rows(4000, 3, 9, 6);
        let spec = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc, Direction::Asc]);
        let ser = external_sort_spec_collect(
            rows.clone(),
            SortConfig::new(3, 256),
            &spec,
            &Stats::new_shared(),
        );
        for threads in [1usize, 2, 4, 8] {
            let stats = Stats::new_shared();
            let par: Vec<OvcRow> =
                parallel_sort_spec(rows.clone(), &spec, threads, 256, 8, &stats).collect();
            assert_eq!(par, ser, "threads={threads}");
            let pairs: Vec<(Row, Ovc)> = par.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact_spec(&pairs, &spec);
            assert!(stats.col_value_cmps() > 0, "worker counters merged");
        }
    }

    #[test]
    fn parallel_sort_spec_descending_only() {
        let rows = random_rows(1500, 2, 6, 7);
        let spec = SortSpec::desc(2);
        let ser = external_sort_spec_collect(
            rows.clone(),
            SortConfig::new(2, 128),
            &spec,
            &Stats::new_shared(),
        );
        let par: Vec<OvcRow> =
            parallel_sort_spec(rows, &spec, 4, 128, 8, &Stats::new_shared()).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn spilled_parallel_sort_matches_serial_and_spills_once() {
        use crate::MemoryRunStorage;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let rows = random_rows(4000, 3, 11, 8);
        let spec = SortSpec::asc(3);
        let ser =
            external_sort_collect(rows.clone(), SortConfig::new(3, 256), &Stats::new_shared());
        for threads in [1usize, 2, 4] {
            let stats = Stats::new_shared();
            let devices = AtomicUsize::new(0);
            let par: Vec<OvcRow> = parallel_sort_spec_spilled(
                rows.clone(),
                &spec,
                threads,
                256,
                8,
                || {
                    devices.fetch_add(1, Ordering::Relaxed);
                    // Shared Arc<Stats> crosses into the worker — the
                    // capability the Send refactor bought.
                    MemoryRunStorage::new(Arc::clone(&stats))
                },
                &stats,
            )
            .collect();
            assert_eq!(par, ser, "threads={threads}");
            // One device per worker, created on that worker's thread.
            assert_eq!(devices.load(Ordering::Relaxed), threads);
            // The Figure 6 sort-plan property survives the fan-out: every
            // row spilled exactly once and read back exactly once.
            assert_eq!(stats.rows_spilled(), 4000, "threads={threads}");
            assert_eq!(stats.rows_read_back(), 4000, "threads={threads}");
            let pairs: Vec<(Row, Ovc)> = par.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact(&pairs, 3);
        }
    }

    #[test]
    fn spilled_parallel_sort_mixed_directions() {
        use crate::MemoryRunStorage;
        use ovc_core::derive::assert_codes_exact_spec;
        use ovc_core::spec::Direction;

        let rows = random_rows(2500, 2, 7, 9);
        let spec = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        let ser = external_sort_spec_collect(
            rows.clone(),
            SortConfig::new(2, 128),
            &spec,
            &Stats::new_shared(),
        );
        let stats = Stats::new_shared();
        let par: Vec<OvcRow> = parallel_sort_spec_spilled(
            rows,
            &spec,
            4,
            128,
            8,
            || MemoryRunStorage::new(Arc::clone(&stats)),
            &stats,
        )
        .collect();
        assert_eq!(par, ser);
        let pairs: Vec<(Row, Ovc)> = par.into_iter().map(|r| (r.row, r.code)).collect();
        assert_codes_exact_spec(&pairs, &spec);
    }

    #[test]
    fn degenerate_inputs() {
        let stats = Stats::new_shared();
        assert!(parallel_sort_collect(vec![], 2, 8, 16, &stats).is_empty());
        let one = parallel_sort_collect(vec![Row::new(vec![7, 7])], 2, 8, 16, &stats);
        assert_eq!(one.len(), 1);
        // More threads than rows clamps to one row per worker.
        let few = random_rows(3, 2, 4, 5);
        let out = parallel_sort_collect(few, 2, 64, 16, &stats);
        assert_eq!(out.len(), 3);
    }
}
