//! The five workspace invariants, mechanized, plus suppression
//! handling.
//!
//! Each rule exists because the repo has already paid for its absence
//! at least once (see DESIGN.md §15 for the incident log):
//!
//! * [`NO_VACUOUS_STATS`] — asserting on a `Stats` handle that was
//!   never threaded into an operator is vacuously true (the PR 5/PR 6
//!   bug class: the §4 comparison-accounting claims silently stop
//!   being checked).
//! * [`BOUNDED_CHANNELS_ONLY`] — an unbounded `mpsc::channel()` hides
//!   the §4.10 deadlock-by-memory shape; `sync_channel(0)` is a
//!   rendezvous that wedges fair-drain loops; literal capacities dodge
//!   the named-constant review point.
//! * [`NO_UNWRAP_EXPECT`] — a bare `.unwrap()` in lib/bin code is a
//!   containment hole in the PR 9 fault model; `.expect` must carry a
//!   message.
//! * [`CONTAINED_SPAWN`] — a raw `thread::spawn` whose closure does not
//!   run under `ctx::contain` turns a worker panic into a poisoned
//!   join instead of a typed `ExecError`.
//! * [`RELAXED_ORDERING_AUDIT`] — `Ordering::Relaxed` is correct for
//!   monotonic counters/gauges and nothing else; every other site
//!   needs a justification.
//!
//! Suppressions are inline comments, reason mandatory:
//!
//! ```text
//! // ovc-lint: allow(bounded-channels-only) -- split edge is bounded by X
//! ```
//!
//! A suppression on a comment-only line applies to the next code line;
//! on a code line it applies to that line.  A reason-less or malformed
//! suppression is itself a finding ([`SUPPRESSION_HYGIENE`]) and
//! suppresses nothing.

use crate::config::Config;
use crate::lexer::{find_word, LexLine};
use crate::scope::{contexts, fn_spans, statement, LineCtx};

/// Rule id: vacuous assertions on dead `Stats` handles.
pub const NO_VACUOUS_STATS: &str = "no-vacuous-stats";
/// Rule id: unbounded/rendezvous/unnamed-capacity channels.
pub const BOUNDED_CHANNELS_ONLY: &str = "bounded-channels-only";
/// Rule id: `.unwrap()` / message-less `.expect` in lib/bin code.
pub const NO_UNWRAP_EXPECT: &str = "no-unwrap-expect";
/// Rule id: `thread::spawn` outside the panic-containment wrappers.
pub const CONTAINED_SPAWN: &str = "contained-spawn";
/// Rule id: `Ordering::Relaxed` outside allowlisted counter files.
pub const RELAXED_ORDERING_AUDIT: &str = "relaxed-ordering-audit";
/// Rule id: malformed or reason-less suppression comments.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// Every rule with its one-line description (emitted into the report).
pub const RULES: &[(&str, &str)] = &[
    (
        NO_VACUOUS_STATS,
        "assert on a Stats/AtomicStats handle that was never threaded into an operator (vacuously true; PR 5/6 bug class)",
    ),
    (
        BOUNDED_CHANNELS_ONLY,
        "mpsc::channel() and sync_channel(0) forbidden outside the allowlist; capacities must be named constants (the §4.10 deadlock rule)",
    ),
    (
        NO_UNWRAP_EXPECT,
        ".unwrap() forbidden in non-test lib/bin code; .expect requires a non-empty message (PR 9 containment)",
    ),
    (
        CONTAINED_SPAWN,
        "raw thread::spawn/scope.spawn must run its closure under ctx::contain or be joined through a panic-mapping join (PR 9 containment)",
    ),
    (
        RELAXED_ORDERING_AUDIT,
        "Ordering::Relaxed only at allowlisted gauge/counter sites; every other site needs a reasoned suppression",
    ),
    (
        SUPPRESSION_HYGIENE,
        "ovc-lint suppressions must parse and carry a reason (`-- why`)",
    ),
];

/// Is `rule` a known rule id (including the hygiene meta-rule)?
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// One honored (valid, reasoned) suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// The rule ids it silences.
    pub rules: Vec<String>,
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line the suppression applies to.
    pub line: usize,
    /// The mandatory justification.
    pub reason: String,
}

/// Result of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression, ordered by line.
    pub findings: Vec<Finding>,
    /// Valid suppressions seen in the file.
    pub suppressions: Vec<Suppression>,
}

/// Lint one file's source text.  `path` should be repo-relative with
/// forward slashes; it decides tree-level test context (`tests/`,
/// `benches/`, `examples/` trees) and allowlist membership.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> FileReport {
    let lines = crate::lexer::lex(src);
    let ctx = contexts(&lines);
    let raw: Vec<&str> = src.lines().collect();
    let tree_test = in_test_tree(path);

    let mut report = FileReport::default();
    let (sups, mut hygiene) = collect_suppressions(path, &lines, &raw);
    report.findings.append(&mut hygiene);

    let mut raw_findings: Vec<Finding> = Vec::new();

    rule_vacuous_stats(path, &lines, &raw, &mut raw_findings);
    rule_bounded_channels(path, &lines, &ctx, tree_test, cfg, &mut raw_findings);
    rule_unwrap_expect(path, &lines, &ctx, tree_test, &mut raw_findings);
    rule_contained_spawn(path, &lines, &ctx, tree_test, cfg, &mut raw_findings);
    rule_relaxed_ordering(path, &lines, &ctx, tree_test, cfg, &mut raw_findings);

    for finding in raw_findings {
        let suppressed = sups
            .iter()
            .any(|s| s.line == finding.line && s.rules.iter().any(|r| r == finding.rule));
        if !suppressed {
            report.findings.push(finding);
        }
    }
    report.suppressions = sups;
    report
        .findings
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    report
}

/// Is `path` inside a tree that is test-context as a whole?
pub fn in_test_tree(path: &str) -> bool {
    path.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples"))
}

/// Parse every `ovc-lint:` comment.  Returns honored suppressions
/// (mapped to the line they cover) and hygiene findings for malformed
/// or reason-less ones.
fn collect_suppressions(
    path: &str,
    lines: &[LexLine],
    raw: &[&str],
) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        for comment in &line.comments {
            // Anchored at the comment start so prose *about* the
            // syntax (docs, examples) is never parsed as a directive.
            let Some(body) = comment.trim_start().strip_prefix("ovc-lint:") else {
                continue;
            };
            let body = body.trim();
            let snippet = raw.get(i).map(|s| s.trim().to_string()).unwrap_or_default();
            match parse_suppression(body) {
                Err(why) => findings.push(Finding {
                    rule: SUPPRESSION_HYGIENE,
                    file: path.to_string(),
                    line: i + 1,
                    snippet,
                    message: why,
                }),
                Ok((rules, reason)) => {
                    // A suppression on a comment-only line covers the
                    // next line that has code.
                    let mut target = i;
                    while lines[target].code.trim().is_empty() && target + 1 < lines.len() {
                        target += 1;
                    }
                    sups.push(Suppression {
                        rules,
                        file: path.to_string(),
                        line: target + 1,
                        reason,
                    });
                }
            }
        }
    }
    (sups, findings)
}

/// Parse `allow(rule, rule) -- reason`.  The reason is mandatory.
fn parse_suppression(body: &str) -> Result<(Vec<String>, String), String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or("malformed suppression: expected `ovc-lint: allow(rule, ...) -- reason`")?;
    let close = rest
        .find(')')
        .ok_or("malformed suppression: missing `)` after rule list")?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("malformed suppression: empty rule list".into());
    }
    for r in &rules {
        if !known_rule(r) || r == SUPPRESSION_HYGIENE {
            return Err(format!("malformed suppression: unknown rule `{r}`"));
        }
    }
    let after = rest[close + 1..].trim();
    let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err("suppression without a reason: append `-- <why this site is exempt>`".into());
    }
    Ok((rules, reason.to_string()))
}

// ---------------------------------------------------------------------
// Rule 1: no-vacuous-stats
// ---------------------------------------------------------------------

const STATS_CTORS: &[&str] = &[
    "Stats::default()",
    "Stats::new_shared()",
    "Stats::new()",
    "AtomicStats::default()",
];

/// Applies everywhere, tests included — the bug class lives in tests.
fn rule_vacuous_stats(path: &str, lines: &[LexLine], raw: &[&str], out: &mut Vec<Finding>) {
    for span in fn_spans(lines) {
        // Pass 1: collect bindings `let <ident> = ..Stats ctor..`.
        struct Binding {
            ident: String,
            ctor: &'static str,
            line: usize,
            live: bool,
            dead_asserts: Vec<usize>,
        }
        let mut bindings: Vec<Binding> = Vec::new();
        let span_end = span.end.min(lines.len() - 1);
        for (i, line) in lines.iter().enumerate().take(span_end + 1).skip(span.start) {
            let code = line.code.trim();
            let Some(ident) = let_ident(code) else {
                continue;
            };
            // The ctor must be what the binding *is* (modulo shared
            // wrappers), not an argument buried in an operator call:
            // `let op = Filter::new(.., Stats::new_shared())` binds a
            // live operator, not a dead handle.
            let Some(eq) = code.find('=') else { continue };
            let mut rhs = code[eq + 1..].trim_start();
            loop {
                let mut stripped = false;
                for wrapper in [
                    "Arc::new(",
                    "Rc::new(",
                    "std::sync::Arc::new(",
                    "std::rc::Rc::new(",
                ] {
                    if let Some(rest) = rhs.strip_prefix(wrapper) {
                        rhs = rest.trim_start();
                        stripped = true;
                    }
                }
                if !stripped {
                    break;
                }
            }
            let Some(ctor) = STATS_CTORS.iter().find(|c| rhs.starts_with(*c)) else {
                continue;
            };
            bindings.push(Binding {
                ident,
                ctor,
                line: i,
                live: false,
                dead_asserts: Vec::new(),
            });
        }
        // Pass 2: classify every later use of each binding.
        for b in &mut bindings {
            'scan: for i in (b.line + 1)..=span.end.min(lines.len() - 1) {
                let code = &lines[i].code;
                for pos in find_word(code, &b.ident) {
                    // A fresh `let <ident>` shadows the binding; stop.
                    if let Some(shadow) = let_ident(code.trim()) {
                        if shadow == b.ident && code.trim().starts_with("let") {
                            break 'scan;
                        }
                    }
                    let before = code[..pos].chars().next_back();
                    let after = code[pos + b.ident.len()..].chars().next();
                    match (before, after) {
                        (Some('&'), _) => {
                            b.live = true; // threaded by reference
                        }
                        (_, Some('.')) => {
                            let (stmt, _, _) = statement(lines, i);
                            if stmt.contains("assert") {
                                b.dead_asserts.push(i);
                            } else {
                                b.live = true; // driver call off the assert path
                            }
                        }
                        _ => {
                            b.live = true; // moved / passed by value
                        }
                    }
                }
            }
        }
        // Pass 3: a dead binding asserted on is vacuous — unless the
        // same assert also reads a live handle (comparing measured
        // against a fresh baseline is legitimate).
        let live_idents: Vec<String> = bindings
            .iter()
            .filter(|b| b.live)
            .map(|b| b.ident.clone())
            .collect();
        for b in &bindings {
            if b.live {
                continue;
            }
            for &i in &b.dead_asserts {
                let (stmt, _, _) = statement(lines, i);
                if live_idents
                    .iter()
                    .any(|ident| !find_word(&stmt, ident).is_empty())
                {
                    continue;
                }
                out.push(Finding {
                    rule: NO_VACUOUS_STATS,
                    file: path.to_string(),
                    line: i + 1,
                    snippet: raw.get(i).map(|s| s.trim().to_string()).unwrap_or_default(),
                    message: format!(
                        "`{}` is created by `{}` on line {} and only ever read in \
                         assertions — the assert is vacuously true; thread the live \
                         handle into the operator under test",
                        b.ident,
                        b.ctor,
                        b.line + 1
                    ),
                });
                break; // one finding per dead binding is enough
            }
        }
    }
}

/// The identifier bound by a `let`/`let mut` statement, if the line is
/// one and binds a plain identifier.
fn let_ident(code: &str) -> Option<String> {
    let rest = code.strip_prefix("let ")?.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty()
        || !ident
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        return None;
    }
    // Require `=` next (skipping an optional type ascription) so
    // patterns like `let (a, b) = ..` are skipped.
    let after = rest[ident.len()..].trim_start();
    if after.starts_with('=') || after.starts_with(':') {
        Some(ident)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Rule 2: bounded-channels-only
// ---------------------------------------------------------------------

fn rule_bounded_channels(
    path: &str,
    lines: &[LexLine],
    ctx: &[LineCtx],
    tree_test: bool,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if cfg.allows(&cfg.channel_allowed_files, path) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if tree_test || ctx[i].test {
            continue;
        }
        let code = &line.code;
        for pos in find_word(code, "channel") {
            let after = &code[pos + "channel".len()..];
            if !(after.starts_with('(') || after.starts_with("::<")) {
                continue;
            }
            // `.channel(` is the gauge accessor, `fn channel(` is its
            // definition — neither constructs an mpsc channel.
            let before = code[..pos].trim_end();
            if code[..pos].ends_with('.') || before.ends_with("fn") {
                continue;
            }
            out.push(Finding {
                rule: BOUNDED_CHANNELS_ONLY,
                file: path.to_string(),
                line: i + 1,
                snippet: code.trim().to_string(),
                message: "unbounded `mpsc::channel()` — use `sync_channel` with a named \
                          capacity constant so backpressure is explicit (§4.10 deadlock rule)"
                    .to_string(),
            });
        }
        for pos in find_word(code, "sync_channel") {
            let mut after = &code[pos + "sync_channel".len()..];
            if let Some(stripped) = after.strip_prefix("::<") {
                let Some(gt) = stripped.find('>') else {
                    continue;
                };
                after = &stripped[gt + 1..];
            }
            let Some(arg) = after.strip_prefix('(') else {
                continue;
            };
            let arg = arg.trim_start();
            let literal: String = arg
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '_')
                .collect();
            if literal.is_empty() {
                continue; // named constant or computed capacity — fine
            }
            let (message, snippet) = if literal.chars().all(|c| c == '0' || c == '_') {
                (
                    "`sync_channel(0)` is a rendezvous channel — it wedges fair-drain \
                     loops (§4.10); use a named non-zero capacity"
                        .to_string(),
                    code.trim().to_string(),
                )
            } else {
                (
                    format!(
                        "literal channel capacity `{literal}` — name it as a constant \
                         (e.g. DEFAULT_CHANNEL_CAPACITY) so the bound is reviewable"
                    ),
                    code.trim().to_string(),
                )
            };
            out.push(Finding {
                rule: BOUNDED_CHANNELS_ONLY,
                file: path.to_string(),
                line: i + 1,
                snippet,
                message,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: no-unwrap-expect
// ---------------------------------------------------------------------

fn rule_unwrap_expect(
    path: &str,
    lines: &[LexLine],
    ctx: &[LineCtx],
    tree_test: bool,
    out: &mut Vec<Finding>,
) {
    for (i, line) in lines.iter().enumerate() {
        if tree_test || ctx[i].test {
            continue;
        }
        let code = &line.code;
        let mut from = 0;
        while let Some(rel) = code[from..].find(".unwrap()") {
            let pos = from + rel;
            out.push(Finding {
                rule: NO_UNWRAP_EXPECT,
                file: path.to_string(),
                line: i + 1,
                snippet: code.trim().to_string(),
                message: "`.unwrap()` in lib/bin code is a containment hole (DESIGN.md \
                          §14) — propagate a typed error or use `.expect(\"why this \
                          cannot fail\")`"
                    .to_string(),
            });
            from = pos + ".unwrap()".len();
        }
        let mut from = 0;
        while let Some(rel) = code[from..].find(".expect(") {
            let pos = from + rel;
            from = pos + ".expect(".len();
            let mut arg = code[pos + ".expect(".len()..].trim_start().to_string();
            if arg.is_empty() {
                // Argument starts on a later line: join the statement.
                let (stmt, _, _) = statement(lines, i);
                if let Some(p) = stmt.find(".expect(") {
                    arg = stmt[p + ".expect(".len()..].trim_start().to_string();
                }
            }
            if arg.starts_with("\"\"") {
                out.push(Finding {
                    rule: NO_UNWRAP_EXPECT,
                    file: path.to_string(),
                    line: i + 1,
                    snippet: code.trim().to_string(),
                    message: "`.expect(\"\")` carries no message — say why this cannot \
                              fail, or propagate a typed error"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: contained-spawn
// ---------------------------------------------------------------------

fn rule_contained_spawn(
    path: &str,
    lines: &[LexLine],
    ctx: &[LineCtx],
    tree_test: bool,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if cfg.allows(&cfg.spawn_allowed_files, path) {
        return;
    }
    let spans = fn_spans(lines);
    for (i, line) in lines.iter().enumerate() {
        if tree_test || ctx[i].test {
            continue;
        }
        let code = &line.code;
        if !(code.contains("thread::spawn") || code.contains("scope.spawn")) {
            continue;
        }
        // Two containment shapes are accepted (DESIGN.md §14):
        // contain-at-spawn — `ctx::contain` in the closure's prologue
        // (the spawn line and the next five; real wrappers set up
        // locals before `contain`) — and contain-at-join — the
        // enclosing fn maps panic payloads to typed errors when it
        // joins (`join_all` / `error_from_panic`).
        let contained = (i..lines.len().min(i + 6)).any(|j| lines[j].code.contains("contain("))
            || spans
                .iter()
                .filter(|s| s.start <= i && i <= s.end)
                .any(|s| {
                    lines[s.start..=s.end].iter().any(|l| {
                        l.code.contains("join_all(")
                            || l.code.contains("reap(")
                            || l.code.contains("error_from_panic(")
                    })
                });
        if !contained {
            out.push(Finding {
                rule: CONTAINED_SPAWN,
                file: path.to_string(),
                line: i + 1,
                snippet: code.trim().to_string(),
                message: "raw spawn without `ctx::contain` — a worker panic here \
                          becomes a poisoned join instead of a typed ExecError \
                          (DESIGN.md §14); wrap the closure body in `ctx::contain`"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: relaxed-ordering-audit
// ---------------------------------------------------------------------

fn rule_relaxed_ordering(
    path: &str,
    lines: &[LexLine],
    ctx: &[LineCtx],
    tree_test: bool,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if cfg.allows(&cfg.relaxed_allowed_files, path) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if tree_test || ctx[i].test {
            continue;
        }
        if find_word(&line.code, "Relaxed").is_empty() {
            continue;
        }
        out.push(Finding {
            rule: RELAXED_ORDERING_AUDIT,
            file: path.to_string(),
            line: i + 1,
            snippet: line.code.trim().to_string(),
            message: "`Ordering::Relaxed` outside the allowlisted gauge/counter files — \
                      justify the site with a reasoned suppression or use a stronger \
                      ordering"
                .to_string(),
        });
    }
}
