//! # ovc-lint — workspace-native static analysis
//!
//! Mechanizes the repo-wide invariants that `clippy` cannot see (they
//! are conventions of *this* codebase, not of Rust): live-handle
//! `Stats` assertions, bounded channels with named capacities,
//! unwrap-free lib/bin code, panic-contained spawns, and audited
//! `Relaxed` orderings.  See [`rules::RULES`] for the list and
//! DESIGN.md §15 for each rule's motivating incident.
//!
//! The tool is dependency-free by construction: a hand-rolled
//! comment/string/raw-string-aware lexer ([`lexer`]), brace-level scope
//! tracking ([`scope`]), a line-scoped rule engine ([`rules`]), and a
//! self-contained JSON report layer ([`report`]) in the
//! `BENCH_*.json` snapshot style.  No syn, no serde, no workspace
//! crates — the linter must keep working when the code it lints does
//! not.
//!
//! ```
//! use ovc_lint::{lint_source, Config};
//! let report = lint_source(
//!     "crates/x/src/lib.rs",
//!     "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u64>(); }",
//!     &Config::default(),
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "bounded-channels-only");
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

pub use config::Config;
pub use report::{validate_report, Json, LintReport};
pub use rules::{lint_source, FileReport, Finding, Suppression};

use std::path::{Path, PathBuf};

/// Directories never walked: external code and build products.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github"];

/// Walk `root` and lint every `.rs` file outside the skipped
/// directories (`vendor/`, `target/`, `.git/`, `.github/`).
/// Returns the full report with findings ordered by (file, line).
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = LintReport {
        root: root.display().to_string(),
        files_scanned: 0,
        findings: Vec::new(),
        suppressions: Vec::new(),
    };
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = lint_source(&rel, &src, cfg);
        report.files_scanned += 1;
        report.findings.extend(file.findings);
        report.suppressions.extend(file.suppressions);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
