//! Brace-level context over stripped lines: `#[cfg(test)]` regions,
//! `fn` body spans, and statement grouping.
//!
//! Everything here runs on [`crate::lexer::LexLine::code`] — comments
//! and literal bodies are already gone, so `{` / `}` counting is safe.

use crate::lexer::LexLine;

/// Per-line context flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineCtx {
    /// Inside (or on) a `#[cfg(test)]` item — test code.
    pub test: bool,
    /// Brace depth at the start of the line.
    pub depth: u32,
}

/// Compute [`LineCtx`] for every line.
///
/// A `#[cfg(test)]` attribute marks the next item: if that item opens a
/// brace block (`mod tests { .. }`, a gated `fn`/`impl`), every line
/// until the matching close is test code; a braceless gated item
/// (`#[cfg(test)] use ..;`) marks just its own line.
pub fn contexts(lines: &[LexLine]) -> Vec<LineCtx> {
    let mut out = Vec::with_capacity(lines.len());
    let mut depth: u32 = 0;
    // Depths at which an open test region began.
    let mut test_regions: Vec<u32> = Vec::new();
    let mut pending_cfg_test = false;
    for line in lines {
        let code = line.code.as_str();
        let trimmed = code.trim();
        let mut ctx = LineCtx {
            test: !test_regions.is_empty(),
            depth,
        };
        if trimmed.starts_with("#[") && trimmed.contains("cfg(test)") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && !trimmed.is_empty() {
            ctx.test = true;
            if let Some(open) = code.find('{') {
                // The gated item opens a block: the region lives until
                // depth returns to the depth *before* that `{`.
                let (o, c) = braces(&code[..open]);
                test_regions.push((depth + o).saturating_sub(c));
                pending_cfg_test = false;
            } else if trimmed.ends_with(';') {
                pending_cfg_test = false; // braceless item: this line only
            }
            // Otherwise: a pure attribute line or a continuing item
            // header — the gate stays pending.
        }
        let (opens, closes) = braces(code);
        depth = (depth + opens).saturating_sub(closes);
        // Close any test regions whose opening depth we have returned to.
        while let Some(&open_depth) = test_regions.last() {
            if depth <= open_depth {
                test_regions.pop();
            } else {
                break;
            }
        }
        out.push(ctx);
    }
    out
}

fn braces(code: &str) -> (u32, u32) {
    let mut opens = 0;
    let mut closes = 0;
    for c in code.chars() {
        match c {
            '{' => opens += 1,
            '}' => closes += 1,
            _ => {}
        }
    }
    (opens, closes)
}

/// A `fn` body: line indices of the header and the inclusive body span.
#[derive(Clone, Copy, Debug)]
pub struct FnSpan {
    /// Line of the `fn` keyword.
    pub header: usize,
    /// First line of the span (the header line).
    pub start: usize,
    /// Last line of the body (the line with the closing brace).
    pub end: usize,
}

/// Find `fn` body spans by scanning for the `fn` keyword and tracking
/// braces to the matching close.  Trait signatures without bodies
/// (`fn f();`) are skipped.  Nested fns/closures are contained in
/// their parent's span and also reported on their own.
pub fn fn_spans(lines: &[LexLine]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        for pos in crate::lexer::find_word(&line.code, "fn") {
            // `fn` must be followed by whitespace + an identifier
            // (excludes `fn(` pointer types).
            let after = line.code[pos + 2..].trim_start();
            let is_item = after
                .chars()
                .next()
                .map(|c| c.is_alphabetic() || c == '_')
                .unwrap_or(false);
            if !is_item {
                continue;
            }
            if let Some((start, end)) = body_span(lines, i, pos) {
                spans.push(FnSpan {
                    header: i,
                    start,
                    end,
                });
            }
        }
    }
    spans
}

/// From the `fn` keyword at `lines[header]` byte `pos`, find the body's
/// `{ .. }` span in lines, or `None` for a bodyless signature.
fn body_span(lines: &[LexLine], header: usize, pos: usize) -> Option<(usize, usize)> {
    let mut depth: i64 = 0;
    let mut seen_open = false;
    let mut paren: i64 = 0;
    for (i, line) in lines.iter().enumerate().skip(header) {
        let code: &str = if i == header {
            &line.code[pos..]
        } else {
            &line.code
        };
        for c in code.chars() {
            match c {
                '(' => paren += 1,
                ')' => paren -= 1,
                ';' if !seen_open && paren <= 0 => return None, // `fn f();`
                '{' => {
                    seen_open = true;
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if seen_open && depth == 0 {
                        return Some((header, i));
                    }
                }
                _ => {}
            }
        }
        if i > header + 200 && !seen_open {
            return None; // runaway header — bail out
        }
    }
    None
}

/// The statement containing line `i`: walks back to the nearest line
/// whose predecessor ends a statement (`;`, `{`, `}`, attribute `]`) and
/// forward to the first line ending one, and returns the joined
/// stripped text plus the inclusive line range.
pub fn statement(lines: &[LexLine], i: usize) -> (String, usize, usize) {
    let ends_stmt = |code: &str| {
        let t = code.trim_end();
        t.ends_with(';') || t.ends_with('{') || t.ends_with('}') || t.ends_with(']') || t.is_empty()
    };
    let mut start = i;
    while start > 0 && !ends_stmt(&lines[start - 1].code) {
        start -= 1;
    }
    let mut end = i;
    while end + 1 < lines.len() && !ends_stmt(&lines[end].code) {
        end += 1;
    }
    let text = lines[start..=end]
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    (text, start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_region() {
        let src =
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let lines = lex(src);
        let ctx = contexts(&lines);
        assert!(!ctx[0].test);
        assert!(ctx[1].test, "the attribute line itself");
        assert!(ctx[2].test && ctx[3].test && ctx[4].test);
        assert!(!ctx[5].test, "code after the region is live again");
    }

    #[test]
    fn braceless_cfg_test_item_marks_one_line() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let ctx = contexts(&lex(src));
        assert!(ctx[1].test);
        assert!(!ctx[2].test);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() {\n    one();\n}\nfn sig();\nfn b() { two(); }\n";
        let spans = fn_spans(&lex(src));
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start, spans[0].end), (0, 2));
        assert_eq!((spans[1].start, spans[1].end), (4, 4));
    }

    #[test]
    fn statement_spans_multiline_asserts() {
        let src = "x();\nassert_eq!(\n    a.b(),\n    0\n);\ny();\n";
        let lines = lex(src);
        let (text, start, end) = statement(&lines, 2);
        assert!(text.contains("assert_eq!"));
        assert_eq!((start, end), (1, 4));
    }
}
