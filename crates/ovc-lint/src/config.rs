//! The built-in allowlists.
//!
//! Allowlists are deliberately *in the binary*, not in a config file:
//! widening one is a reviewed code change to the lint itself, with the
//! justification in the table below.  Point exemptions inside
//! non-allowlisted files use inline suppressions instead
//! (`// ovc-lint: allow(rule) -- reason`), which the report records.

/// Rule configuration: per-rule file allowlists.  Paths are matched by
/// suffix against the repo-relative path, so absolute walk roots work
/// too.
#[derive(Clone, Debug)]
pub struct Config {
    /// Files where `Ordering::Relaxed` is the *point* — monotonic
    /// counter/gauge modules whose reads are statistical by contract.
    pub relaxed_allowed_files: Vec<String>,
    /// Files exempt from the bounded-channel rule (none today; the one
    /// deliberate unbounded edge carries an inline suppression where
    /// the reasoning lives, DESIGN.md §12).
    pub channel_allowed_files: Vec<String>,
    /// Files exempt from the contained-spawn rule (none today).
    pub spawn_allowed_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            relaxed_allowed_files: vec![
                // Comparison/spill counters: monotonically increasing,
                // read for reporting; torn totals are impossible and
                // ordering between counters is never relied on.
                "crates/ovc-core/src/stats.rs".into(),
                // EXPLAIN ANALYZE gauges: peak-depth/wait accounting is
                // explicitly drift-tolerant (DESIGN.md §11).
                "crates/ovc-core/src/metrics.rs".into(),
                // Prometheus service counters: same contract.
                "crates/ovc-server/src/metrics.rs".into(),
            ],
            channel_allowed_files: vec![],
            spawn_allowed_files: vec![],
        }
    }
}

impl Config {
    /// Does `list` exempt `path`?  Suffix match on `/`-separated paths.
    pub fn allows(&self, list: &[String], path: &str) -> bool {
        list.iter().any(|allowed| path.ends_with(allowed.as_str()))
    }
}
