//! Machine-readable lint reports: `LINT_ovc.json`.
//!
//! Same design as the `BENCH_*.json` layer in `ovc-bench::snapshot`
//! (this workspace builds without crates.io, so no serde): a [`Json`]
//! value type with a writer *and* a parser, the [`LintReport`] builder,
//! and [`validate_report`] — the schema check CI runs against the
//! emitted file.  The module is duplicated rather than imported so the
//! lint stays dependency-free: a broken engine crate must never take
//! the linter down with it.
//!
//! ## Report schema (`schema_version` 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "ovc-lint",
//!   "root": "/path/to/workspace",
//!   "rules": [ { "id": "no-unwrap-expect", "description": "..." } ],
//!   "summary": { "files_scanned": 90, "findings": 0, "suppressions": 14 },
//!   "findings": [
//!     { "rule": "bounded-channels-only", "file": "crates/x/src/a.rs",
//!       "line": 12, "snippet": "let (tx, rx) = mpsc::channel();",
//!       "message": "unbounded mpsc::channel() ..." }
//!   ],
//!   "suppressions": [
//!     { "rules": ["relaxed-ordering-audit"], "file": "crates/x/src/b.rs",
//!       "line": 30, "reason": "monotonic cancel flag ..." }
//!   ]
//! }
//! ```

use std::fmt::Write as _;

use crate::rules::{Finding, Suppression, RULES};

/// A JSON value.  Object member order is preserved (insertion order),
/// which keeps emitted reports diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                let pad = "  ".repeat(depth + 1);
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad);
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                let pad = "  ".repeat(depth + 1);
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_token(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect_token(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect_token(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_token(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_token(bytes, pos, ":")?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err("truncated string".into());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| format!("invalid number at byte {start}"))
}

/// Version stamped into every report; bump when the shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A full lint run, ready to serialize.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Workspace root the walk started from.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings, ordered by (file, line).
    pub findings: Vec<Finding>,
    /// Honored suppressions, ordered by (file, line).
    pub suppressions: Vec<Suppression>,
}

impl LintReport {
    /// The report as a [`Json`] document (schema in the module docs).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("name".into(), Json::Str("ovc-lint".into())),
            ("root".into(), Json::Str(self.root.clone())),
            (
                "rules".into(),
                Json::Arr(
                    RULES
                        .iter()
                        .map(|(id, desc)| {
                            Json::Obj(vec![
                                ("id".into(), Json::Str((*id).into())),
                                ("description".into(), Json::Str((*desc).into())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("files_scanned".into(), Json::Num(self.files_scanned as f64)),
                    ("findings".into(), Json::Num(self.findings.len() as f64)),
                    (
                        "suppressions".into(),
                        Json::Num(self.suppressions.len() as f64),
                    ),
                ]),
            ),
            (
                "findings".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("rule".into(), Json::Str(f.rule.into())),
                                ("file".into(), Json::Str(f.file.clone())),
                                ("line".into(), Json::Num(f.line as f64)),
                                ("snippet".into(), Json::Str(f.snippet.clone())),
                                ("message".into(), Json::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "suppressions".into(),
                Json::Arr(
                    self.suppressions
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                (
                                    "rules".into(),
                                    Json::Arr(
                                        s.rules.iter().map(|r| Json::Str(r.clone())).collect(),
                                    ),
                                ),
                                ("file".into(), Json::Str(s.file.clone())),
                                ("line".into(), Json::Num(s.line as f64)),
                                ("reason".into(), Json::Str(s.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Validate a parsed report against the documented schema.  Returns
/// the first violation found.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing numeric `schema_version`")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    match doc.get("name").and_then(Json::as_str) {
        Some("ovc-lint") => {}
        _ => return Err("`name` must be \"ovc-lint\"".into()),
    }
    doc.get("root")
        .and_then(Json::as_str)
        .ok_or("missing string `root`")?;
    let rules = doc
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("missing array `rules`")?;
    let mut known: Vec<&str> = Vec::new();
    for (i, rule) in rules.iter().enumerate() {
        let id = rule
            .get("id")
            .and_then(Json::as_str)
            .ok_or(format!("rules[{i}]: missing string `id`"))?;
        rule.get("description")
            .and_then(Json::as_str)
            .ok_or(format!("rules[{i}]: missing string `description`"))?;
        known.push(id);
    }
    let summary = doc.get("summary").ok_or("missing `summary`")?;
    for key in ["files_scanned", "findings", "suppressions"] {
        summary
            .get(key)
            .and_then(Json::as_num)
            .ok_or(format!("summary: missing numeric `{key}`"))?;
    }
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing array `findings`")?;
    if summary.get("findings").and_then(Json::as_num) != Some(findings.len() as f64) {
        return Err("summary.findings disagrees with the findings array".into());
    }
    for (i, f) in findings.iter().enumerate() {
        let rule = f
            .get("rule")
            .and_then(Json::as_str)
            .ok_or(format!("findings[{i}]: missing string `rule`"))?;
        if !known.contains(&rule) {
            return Err(format!("findings[{i}]: unknown rule `{rule}`"));
        }
        f.get("file")
            .and_then(Json::as_str)
            .ok_or(format!("findings[{i}]: missing string `file`"))?;
        f.get("line")
            .and_then(Json::as_num)
            .filter(|n| *n >= 1.0)
            .ok_or(format!("findings[{i}]: missing 1-based `line`"))?;
        f.get("snippet")
            .and_then(Json::as_str)
            .ok_or(format!("findings[{i}]: missing string `snippet`"))?;
        f.get("message")
            .and_then(Json::as_str)
            .ok_or(format!("findings[{i}]: missing string `message`"))?;
    }
    let sups = doc
        .get("suppressions")
        .and_then(Json::as_arr)
        .ok_or("missing array `suppressions`")?;
    if summary.get("suppressions").and_then(Json::as_num) != Some(sups.len() as f64) {
        return Err("summary.suppressions disagrees with the suppressions array".into());
    }
    for (i, s) in sups.iter().enumerate() {
        let rules = s
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or(format!("suppressions[{i}]: missing array `rules`"))?;
        for r in rules {
            let r = r
                .as_str()
                .ok_or(format!("suppressions[{i}]: non-string rule"))?;
            if !known.contains(&r) {
                return Err(format!("suppressions[{i}]: unknown rule `{r}`"));
            }
        }
        s.get("file")
            .and_then(Json::as_str)
            .ok_or(format!("suppressions[{i}]: missing string `file`"))?;
        s.get("line")
            .and_then(Json::as_num)
            .filter(|n| *n >= 1.0)
            .ok_or(format!("suppressions[{i}]: missing 1-based `line`"))?;
        let reason = s
            .get("reason")
            .and_then(Json::as_str)
            .ok_or(format!("suppressions[{i}]: missing string `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!("suppressions[{i}]: empty reason"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let doc = Json::Obj(vec![
            ("s".into(), Json::Str("a \"quoted\"\nline\t\\".into())),
            (
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)]),
            ),
            ("b".into(), Json::Bool(true)),
            ("n".into(), Json::Null),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).expect("round trip"), doc);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
    }
}
