//! A comment-, string-, and raw-string-aware line lexer for Rust
//! source.
//!
//! The rule engine works on *stripped* lines: comments removed, string
//! and char literal bodies replaced by placeholders, so a `.unwrap()`
//! inside a doc comment or an error message can never trip a rule.
//! Comments are kept separately per line because suppressions
//! (`// ovc-lint: allow(rule) -- reason`) live in them.
//!
//! This is deliberately *not* a parser: no syn, no token tree, no AST
//! (the workspace builds without crates.io access, and the lint must
//! never be broken by the code it lints).  The rules that need more
//! than a line — `#[cfg(test)]` regions, `fn` bodies, statement
//! boundaries — get it from brace counting over the stripped text (see
//! [`crate::scope`]).

/// One physical source line after lexing.
#[derive(Clone, Debug, Default)]
pub struct LexLine {
    /// The line's code with comments removed and literal bodies
    /// replaced: non-empty string literals become `"m"`, empty ones
    /// stay `""`, char literals become `'c'`.  Multi-line literals
    /// and block comments contribute only to the line they start on.
    pub code: String,
    /// Comment text on this line (`//`, `///`, `//!`, and `/* */`
    /// bodies), one entry per comment, markers stripped.
    pub comments: Vec<String>,
}

/// Lex `src` into per-line stripped code plus extracted comments.
pub fn lex(src: &str) -> Vec<LexLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<LexLine> = vec![LexLine::default()];
    let mut i = 0;

    // Push a newline boundary.
    macro_rules! newline {
        () => {
            lines.push(LexLine::default())
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments).  Collect to EOL.
                let mut j = i + 2;
                while chars.get(j) == Some(&'/') || chars.get(j) == Some(&'!') {
                    j += 1;
                }
                let start = j;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let line = lines.last_mut().expect("at least one line");
                line.comments.push(text.trim().to_string());
                line.code.push(' ');
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                let mut j = i + 2;
                let start_line = lines.len() - 1;
                let mut text = String::new();
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if chars[j] == '\n' {
                            newline!();
                        }
                        text.push(chars[j]);
                        j += 1;
                    }
                }
                lines[start_line].comments.push(text.trim().to_string());
                lines[start_line].code.push(' ');
                i = j;
            }
            '"' => {
                i = consume_string(&chars, i, &mut lines);
            }
            'r' if is_raw_string_start(&chars, i) => {
                i = consume_raw_string(&chars, i + 1, &mut lines);
            }
            'b' if chars.get(i + 1) == Some(&'"') => {
                i = consume_string(&chars, i + 1, &mut lines);
            }
            'b' if chars.get(i + 1) == Some(&'r') && raw_start_at(&chars, i + 2) => {
                i = consume_raw_string(&chars, i + 2, &mut lines);
            }
            'b' if chars.get(i + 1) == Some(&'\'') => {
                // Byte char literal b'x' / b'\n'.
                lines.last_mut().expect("line").code.push_str("'c'");
                i = skip_char_literal(&chars, i + 1);
            }
            '\'' => {
                // Char literal vs lifetime/label.  A char literal is
                // `'\...'` or `'x'`; anything else (`'a` in `<'a>`,
                // `'outer:`) is a lifetime and stays in the code.
                let is_char = match chars.get(i + 1) {
                    Some('\\') => true,
                    Some(_) => chars.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char {
                    lines.last_mut().expect("line").code.push_str("'c'");
                    i = skip_char_literal(&chars, i);
                } else {
                    lines.last_mut().expect("line").code.push(c);
                    i += 1;
                }
            }
            _ => {
                lines.last_mut().expect("line").code.push(c);
                i += 1;
            }
        }
    }
    lines
}

/// Does a raw string (`r"` or `r#...#"`) start at `chars[i]` (which is
/// `'r'`)?  The previous character must not be part of an identifier,
/// so `attr`/`for`/`super` never trigger.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    raw_start_at(chars, i + 1)
}

/// Do the hashes-then-quote of a raw string begin at `chars[i]`?
fn raw_start_at(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Consume a plain (possibly multi-line) string literal starting at the
/// opening quote `chars[i]`; returns the index after the closing quote.
/// Emits `""` or `"m"` on the line the literal starts on.
fn consume_string(chars: &[char], i: usize, lines: &mut Vec<LexLine>) -> usize {
    let start_line = lines.len() - 1;
    let mut j = i + 1;
    let mut empty = true;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                empty = false;
                j += 2;
            }
            '"' => {
                j += 1;
                break;
            }
            '\n' => {
                empty = false;
                lines.push(LexLine::default());
                j += 1;
            }
            _ => {
                empty = false;
                j += 1;
            }
        }
    }
    lines[start_line]
        .code
        .push_str(if empty { "\"\"" } else { "\"m\"" });
    j
}

/// Consume a raw string whose hashes begin at `chars[i]` (`i` points at
/// the first `#` or the opening quote); returns the index after the
/// closing delimiter.
fn consume_raw_string(chars: &[char], i: usize, lines: &mut Vec<LexLine>) -> usize {
    let start_line = lines.len() - 1;
    let mut hashes = 0usize;
    let mut j = i;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    j += 1; // past the opening quote
    let mut empty = true;
    'scan: while j < chars.len() {
        if chars[j] == '"' {
            // Candidate close: need `hashes` following '#'s.
            let mut k = 0;
            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                j += 1 + hashes;
                break 'scan;
            }
        }
        if chars[j] == '\n' {
            lines.push(LexLine::default());
        }
        empty = false;
        j += 1;
    }
    lines[start_line]
        .code
        .push_str(if empty { "\"\"" } else { "\"m\"" });
    j
}

/// Skip a char literal starting at the opening `'` at `chars[i]`;
/// returns the index after the closing quote.
fn skip_char_literal(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Is the byte at `pos` in `code` a word-boundary occurrence of `word`
/// (no identifier character on either side)?
pub fn word_at(code: &str, pos: usize, word: &str) -> bool {
    let bytes = code.as_bytes();
    if pos > 0 {
        let prev = bytes[pos - 1] as char;
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let end = pos + word.len();
    if end < bytes.len() {
        let next = bytes[end] as char;
        if next.is_alphanumeric() || next == '_' {
            return false;
        }
    }
    true
}

/// All word-boundary occurrences of `word` in `code` (byte offsets).
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let pos = from + rel;
        if word_at(code, pos, word) {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn comments_are_stripped_and_collected() {
        let lines = lex("let x = 1; // trailing .unwrap()\n/// doc .unwrap()\nlet y = 2;");
        assert!(!lines[0].code.contains("unwrap"));
        assert_eq!(lines[0].comments, vec!["trailing .unwrap()"]);
        assert!(!lines[1].code.contains("unwrap"));
        assert_eq!(lines[1].comments, vec!["doc .unwrap()"]);
        assert_eq!(lines[2].code, "let y = 2;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = lex("a /* x /* y */ z\nstill comment */ b");
        assert_eq!(lines[0].code.trim(), "a");
        assert_eq!(lines[1].code.trim(), "b");
        assert!(lines[0].comments[0].contains("still comment"));
    }

    #[test]
    fn string_bodies_are_blanked_but_emptiness_survives() {
        let lines = codes(r#"x.expect("msg"); y.expect(""); z("has .unwrap() inside");"#);
        assert_eq!(
            lines[0],
            r#"x.expect("m"); y.expect(""); z("m");"#.to_string()
        );
    }

    #[test]
    fn raw_strings_and_escapes() {
        let lines = codes("let s = r#\"raw .unwrap() \"# ; let t = \"esc \\\" quote\";");
        assert_eq!(lines[0], "let s = \"m\" ; let t = \"m\";");
        let multi = codes("let s = r\"line1\nline2\"; after();");
        assert_eq!(multi[0], "let s = \"m\"");
        assert_eq!(multi[1], "; after();");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = codes("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            lines[0],
            "fn f<'a>(x: &'a str) { let c = 'c'; let n = 'c'; }"
        );
    }

    #[test]
    fn word_boundaries() {
        let code = "sync_channel(4); mpsc::channel(); my_channel();";
        let hits = find_word(code, "channel");
        assert_eq!(hits.len(), 1);
        assert!(code[hits[0]..].starts_with("channel()"));
    }
}
