//! The `ovc-lint` binary: walk the workspace, enforce the five
//! invariants, emit a machine-readable report.
//!
//! ```text
//! cargo run -p ovc-lint --                  # report, always exit 0
//! cargo run -p ovc-lint -- --deny           # CI mode: exit 1 on findings
//! cargo run -p ovc-lint -- --json LINT_ovc.json
//! cargo run -p ovc-lint -- --validate LINT_ovc.json
//! cargo run -p ovc-lint -- --list-rules
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ovc_lint::report::validate_report;
use ovc_lint::rules::RULES;
use ovc_lint::{lint_workspace, Config, Json};

fn main() -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut validate: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--validate" => match args.next() {
                Some(v) => validate = Some(PathBuf::from(v)),
                None => return usage("--validate needs a path"),
            },
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id}\n    {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Validation mode: parse + schema-check an emitted report and exit.
    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("ovc-lint: cannot read {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match Json::parse(&text).and_then(|doc| validate_report(&doc)) {
            Ok(()) => {
                println!("ovc-lint: {} conforms to schema", path.display());
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("ovc-lint: {} invalid: {why}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let report = match lint_workspace(&root, &Config::default()) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("ovc-lint: walk failed under {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if !quiet {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            println!("    {}", f.snippet);
        }
        println!(
            "ovc-lint: {} files, {} findings, {} suppressions",
            report.files_scanned,
            report.findings.len(),
            report.suppressions.len()
        );
    }

    if let Some(path) = json_out {
        let text = report.to_json().to_pretty();
        if let Err(err) = std::fs::write(&path, text) {
            eprintln!("ovc-lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            println!("ovc-lint: wrote {}", path.display());
        }
    }

    if deny && !report.findings.is_empty() {
        eprintln!(
            "ovc-lint: --deny: {} finding(s) — fix them or add a reasoned \
             `// ovc-lint: allow(rule) -- why` suppression",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ovc-lint: {err}");
    }
    eprintln!(
        "usage: ovc-lint [--root PATH] [--deny] [--quiet] [--json PATH] \
         [--validate PATH] [--list-rules]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
