//! Conformance suite for `ovc-lint`: for every rule a true positive,
//! a true negative, a suppressed-with-reason case, and a
//! suppression-without-reason rejection — plus the JSON report
//! round-trip and a run over the real workspace asserting zero
//! findings.
//!
//! The true-positive fixtures are not synthetic: each reproduces a
//! violation that was live in this repo at some point (the PR 5/6
//! vacuous `Stats` asserts, the pre-PR 10 uncontained server session
//! spawn, the `mpsc::channel()` split edge in the batch executor), so
//! the suite doubles as a regression log of the incidents the rules
//! mechanize.

use ovc_lint::report::{validate_report, SCHEMA_VERSION};
use ovc_lint::rules::{
    BOUNDED_CHANNELS_ONLY, CONTAINED_SPAWN, NO_UNWRAP_EXPECT, NO_VACUOUS_STATS,
    RELAXED_ORDERING_AUDIT, SUPPRESSION_HYGIENE,
};
use ovc_lint::{lint_source, lint_workspace, Config, FileReport, Json};

/// Lint a fixture under a non-test lib path (all five rules active).
fn lint(src: &str) -> FileReport {
    lint_source("crates/fixture/src/lib.rs", src, &Config::default())
}

fn rules_of(report: &FileReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------
// Rule 1: no-vacuous-stats
// ---------------------------------------------------------------------

/// The PR 5/6 bug class verbatim: a `Stats` handle created fresh,
/// never threaded into an operator, then asserted on.  The assert is
/// vacuously true and the §4 comparison-accounting claim it was meant
/// to check silently stops being checked.
#[test]
fn vacuous_stats_true_positive() {
    let r = lint(
        r#"
fn check_comparisons() {
    let stats = Stats::new_shared();
    let run = sort_rows(input);
    assert!(stats.snapshot().comparisons > 0);
}
"#,
    );
    assert_eq!(rules_of(&r), vec![NO_VACUOUS_STATS]);
    assert_eq!(r.findings[0].line, 5);
    assert!(r.findings[0].message.contains("vacuously true"));
    assert!(r.findings[0].message.contains("Stats::new_shared()"));
}

/// Rule 1 is the one rule that applies inside test code too — that is
/// where the bug class lives (both historic incidents were in
/// `#[cfg(test)]` modules).
#[test]
fn vacuous_stats_applies_in_tests() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn counts_comparisons() {
        let stats = Stats::default();
        let sorted = sort(rows);
        assert!(stats.comparisons() > 0);
    }
}
"#;
    let r = lint(src);
    assert_eq!(rules_of(&r), vec![NO_VACUOUS_STATS]);
    // Same fixture under a tests/ tree path: still flagged.
    let r = lint_source("crates/fixture/tests/it.rs", src, &Config::default());
    assert_eq!(rules_of(&r), vec![NO_VACUOUS_STATS]);
}

/// Threading the handle into the operator (by reference or by value)
/// makes it live; the assert is then meaningful.
#[test]
fn vacuous_stats_true_negative_threaded() {
    let r = lint(
        r#"
fn check_by_ref() {
    let stats = Stats::new_shared();
    let sorted = sort_with_stats(rows, &stats);
    assert!(stats.snapshot().comparisons > 0);
}
fn check_by_value() {
    let stats = Stats::new_shared();
    let op = Filter::new(input, pred, stats);
    assert!(op.next().is_some());
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

/// The false-positive shape rule 1 must NOT flag: the ctor appears as
/// an *argument* to an operator constructor, so the binding is a live
/// operator, not a dead handle (`crates/ovc-exec/src/filter.rs`
/// exercises exactly this).
#[test]
fn vacuous_stats_true_negative_ctor_as_argument() {
    let r = lint(
        r#"
fn empty_filter_yields_nothing() {
    let filter = Filter::new(input, |_| false, Stats::new_shared());
    assert!(filter.next().is_none());
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

/// Comparing a measured handle against a fresh baseline in the same
/// assert is legitimate: the dead binding is the *expected* side.
#[test]
fn vacuous_stats_true_negative_fresh_baseline() {
    let r = lint(
        r#"
fn unchanged_against_baseline() {
    let baseline = Stats::default();
    let stats = Stats::new_shared();
    let sorted = sort_with_stats(rows, &stats);
    assert_eq!(stats.snapshot(), baseline.snapshot());
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

/// `Arc::new(Stats::default())` is still a dead handle if never
/// threaded — the shared wrapper does not launder it.
#[test]
fn vacuous_stats_sees_through_arc() {
    let r = lint(
        r#"
fn wrapped() {
    let stats = Arc::new(Stats::default());
    let sorted = sort(rows);
    assert!(stats.comparisons() > 0);
}
"#,
    );
    assert_eq!(rules_of(&r), vec![NO_VACUOUS_STATS]);
}

#[test]
fn vacuous_stats_suppressed_with_reason() {
    let r = lint(
        r#"
fn check() {
    let stats = Stats::new_shared();
    let run = sort_rows(input);
    // ovc-lint: allow(no-vacuous-stats) -- asserting the handle stays zeroed is the point here
    assert!(stats.snapshot().comparisons == 0);
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    assert_eq!(r.suppressions.len(), 1);
    assert_eq!(r.suppressions[0].rules, vec![NO_VACUOUS_STATS]);
    assert!(r.suppressions[0].reason.contains("stays zeroed"));
}

/// A reason-less suppression suppresses nothing: the original finding
/// survives AND a hygiene finding is added.
#[test]
fn vacuous_stats_suppression_without_reason_rejected() {
    let r = lint(
        r#"
fn check() {
    let stats = Stats::new_shared();
    let run = sort_rows(input);
    // ovc-lint: allow(no-vacuous-stats)
    assert!(stats.snapshot().comparisons > 0);
}
"#,
    );
    let mut rules = rules_of(&r);
    rules.sort_unstable();
    assert_eq!(rules, vec![NO_VACUOUS_STATS, SUPPRESSION_HYGIENE]);
    assert!(r.suppressions.is_empty());
}

// ---------------------------------------------------------------------
// Rule 2: bounded-channels-only
// ---------------------------------------------------------------------

/// The batch-executor split edge as it would look WITHOUT its reasoned
/// suppression (`crates/ovc-plan/src/batch_exec.rs`): an unbounded
/// `mpsc::channel()` hides the §4.10 deadlock-by-memory shape.
#[test]
fn bounded_channels_true_positive_unbounded() {
    let r = lint(
        r#"
fn split(parts: usize) {
    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(batch).ok();
}
"#,
    );
    assert_eq!(rules_of(&r), vec![BOUNDED_CHANNELS_ONLY]);
    assert!(r.findings[0].message.contains("§4.10"));
}

/// Turbofish form is the same construction.
#[test]
fn bounded_channels_true_positive_turbofish() {
    let r = lint(
        r#"
fn split() {
    let (tx, rx) = mpsc::channel::<Batch>();
}
"#,
    );
    assert_eq!(rules_of(&r), vec![BOUNDED_CHANNELS_ONLY]);
}

/// `sync_channel(0)` is a rendezvous — it wedges fair-drain loops —
/// and a bare literal capacity dodges the named-constant review point.
#[test]
fn bounded_channels_true_positive_rendezvous_and_literal() {
    let r = lint(
        r#"
fn exchanges() {
    let (a_tx, a_rx) = std::sync::mpsc::sync_channel(0);
    let (b_tx, b_rx) = std::sync::mpsc::sync_channel(64);
}
"#,
    );
    assert_eq!(
        rules_of(&r),
        vec![BOUNDED_CHANNELS_ONLY, BOUNDED_CHANNELS_ONLY]
    );
    assert!(r.findings[0].message.contains("rendezvous"));
    assert!(r.findings[1].message.contains("name it as a constant"));
    assert!(r.findings[1].message.contains("64"));
}

/// Named-constant capacity is the sanctioned shape; the `.channel(`
/// gauge accessor and a `fn channel(` definition are not channel
/// constructions; test code is out of scope for this rule.
#[test]
fn bounded_channels_true_negatives() {
    let r = lint(
        r#"
const EXCHANGE_CAPACITY: usize = 4;
fn exchange() {
    let (tx, rx) = std::sync::mpsc::sync_channel(EXCHANGE_CAPACITY);
    let depth = metrics.channel(id).depth();
}
impl Gauges {
    fn channel(&self, id: usize) -> &Gauge { &self.channels[id] }
}
#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_is_fine_in_tests() {
        let (tx, rx) = std::sync::mpsc::channel();
    }
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

/// The real batch_exec.rs exemption shape: suppression with the
/// boundedness argument in the reason.
#[test]
fn bounded_channels_suppressed_with_reason() {
    let r = lint(
        r#"
fn split() {
    // ovc-lint: allow(bounded-channels-only) -- in-flight data bounded by the producer's input (DESIGN.md s12)
    let (tx, rx) = std::sync::mpsc::channel();
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    assert_eq!(r.suppressions.len(), 1);
}

#[test]
fn bounded_channels_suppression_without_reason_rejected() {
    let r = lint(
        r#"
fn split() {
    let (tx, rx) = std::sync::mpsc::channel(); // ovc-lint: allow(bounded-channels-only) --
}
"#,
    );
    let mut rules = rules_of(&r);
    rules.sort_unstable();
    assert_eq!(rules, vec![BOUNDED_CHANNELS_ONLY, SUPPRESSION_HYGIENE]);
}

// ---------------------------------------------------------------------
// Rule 3: no-unwrap-expect
// ---------------------------------------------------------------------

#[test]
fn unwrap_true_positive() {
    let r = lint(
        r#"
fn run(path: &str) -> u64 {
    let file = std::fs::read(path).unwrap();
    file.len() as u64
}
"#,
    );
    assert_eq!(rules_of(&r), vec![NO_UNWRAP_EXPECT]);
    assert!(r.findings[0].message.contains("containment hole"));
}

/// `.expect("")` carries no message — it is `.unwrap()` with extra
/// keystrokes.  The multiline form (argument on the next line) must be
/// caught too.
#[test]
fn expect_empty_message_true_positive() {
    let r = lint(
        "fn f() {\n    let v = map.get(&k).expect(\"\");\n    let w = map\n        .get(&k)\n        .expect(\n            \"\",\n        );\n}\n",
    );
    assert_eq!(rules_of(&r), vec![NO_UNWRAP_EXPECT, NO_UNWRAP_EXPECT]);
}

/// A messaged expect is the sanctioned shape; unwrap in test context
/// (attribute region or tests/ tree) is fine; `.unwrap()` inside a
/// string literal or comment is not code.
#[test]
fn unwrap_true_negatives() {
    let r = lint(
        r#"
fn f() {
    let v = map.get(&k).expect("key inserted two lines up");
    // calling .unwrap() here would be wrong
    let s = "do not call .unwrap() in lib code";
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(parse("1").unwrap(), 1); }
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    let r = lint_source(
        "crates/fixture/benches/b.rs",
        "fn bench() { let v = setup().unwrap(); }\n",
        &Config::default(),
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

#[test]
fn unwrap_suppressed_with_reason() {
    let r = lint(
        r#"
fn f() {
    // ovc-lint: allow(no-unwrap-expect) -- mutex poisoning is already a contained panic upstream
    let guard = lock.lock().unwrap();
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    assert_eq!(r.suppressions.len(), 1);
}

#[test]
fn unwrap_suppression_without_reason_rejected() {
    let r = lint(
        r#"
fn f() {
    // ovc-lint: allow(no-unwrap-expect)
    let guard = lock.lock().unwrap();
}
"#,
    );
    let mut rules = rules_of(&r);
    rules.sort_unstable();
    assert_eq!(rules, vec![NO_UNWRAP_EXPECT, SUPPRESSION_HYGIENE]);
}

// ---------------------------------------------------------------------
// Rule 4: contained-spawn
// ---------------------------------------------------------------------

/// The pre-PR 10 server acceptor verbatim (`ovc-server/src/server.rs`
/// before this PR): a session thread whose panic took the slot
/// accounting down with it.  This is the live violation the rule was
/// built to catch — and the one real product fix in the sweep.
#[test]
fn contained_spawn_true_positive_server_session_shape() {
    let r = lint(
        r#"
fn accept_loop(state: &Shared) {
    let mut sessions = Vec::new();
    sessions.push(std::thread::spawn(move || {
        let _guard = SessionGuard(&state.metrics.active_sessions);
        session_loop(&state, stream)
    }));
}
"#,
    );
    assert_eq!(rules_of(&r), vec![CONTAINED_SPAWN]);
    assert!(r.findings[0].message.contains("ctx::contain"));
}

/// Contain-at-spawn: `ctx::contain` in the closure prologue (locals
/// may come first — the real wrappers set up counters and a Stats
/// handle before containing).
#[test]
fn contained_spawn_true_negative_contain_at_spawn() {
    let r = lint(
        r#"
fn accept_loop(state: &Shared) {
    std::thread::spawn(move || {
        let _guard = SessionGuard(&state.metrics.active_sessions);
        if let Err(err) = ovc_core::ctx::contain(|| session_loop(&state, stream)) {
            eprintln!("session aborted: {err}");
        }
    });
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

/// Contain-at-join: the enclosing fn maps panic payloads to typed
/// errors when it joins (the `ovc-sort`/`ovc-exec` parallel shape —
/// `join_all` routes payloads through `ctx::error_from_panic`).
#[test]
fn contained_spawn_true_negative_contain_at_join() {
    let r = lint(
        r#"
fn run_partitions(parts: Vec<Part>) -> Result<(), ExecError> {
    let mut handles = Vec::new();
    for part in parts {
        handles.push(std::thread::spawn(move || sort_part(part)));
    }
    join_all(handles)
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

/// The `server_bench` exemption shape: a bench driver WANTS a panic to
/// crash the run loudly.
#[test]
fn contained_spawn_suppressed_with_reason() {
    let r = lint(
        r#"
fn drive() {
    // ovc-lint: allow(contained-spawn) -- bench driver: a server panic should crash the run loudly
    let server = std::thread::spawn(move || serve(listener));
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    assert_eq!(r.suppressions.len(), 1);
}

#[test]
fn contained_spawn_suppression_without_reason_rejected() {
    let r = lint(
        r#"
fn drive() {
    // ovc-lint: allow(contained-spawn) --
    let server = std::thread::spawn(move || serve(listener));
}
"#,
    );
    let mut rules = rules_of(&r);
    rules.sort_unstable();
    assert_eq!(rules, vec![CONTAINED_SPAWN, SUPPRESSION_HYGIENE]);
}

// ---------------------------------------------------------------------
// Rule 5: relaxed-ordering-audit
// ---------------------------------------------------------------------

#[test]
fn relaxed_ordering_true_positive() {
    let r = lint(
        r#"
fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}
"#,
    );
    assert_eq!(rules_of(&r), vec![RELAXED_ORDERING_AUDIT]);
    assert!(r.findings[0].message.contains("allowlisted"));
}

/// The allowlisted counter files are exempt by path suffix — that is
/// where `Relaxed` is the point, not a hazard.
#[test]
fn relaxed_ordering_true_negative_allowlisted_file() {
    let src = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let cfg = Config::default();
    let r = lint_source("crates/ovc-core/src/stats.rs", src, &cfg);
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    // Same code outside the allowlist: flagged.
    let r = lint_source("crates/ovc-core/src/other.rs", src, &cfg);
    assert_eq!(rules_of(&r), vec![RELAXED_ORDERING_AUDIT]);
    // "Relaxed" in a string or comment is not an ordering.
    let r = lint(
        "fn f() {\n    // Ordering::Relaxed would be wrong here\n    let s = \"Ordering::Relaxed\";\n}\n",
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
}

/// The `ctx.rs` cancel-flag shape: a monotonic one-way flag with a
/// reasoned suppression.
#[test]
fn relaxed_ordering_suppressed_with_reason() {
    let r = lint(
        r#"
fn cancel(flag: &AtomicBool) {
    // ovc-lint: allow(relaxed-ordering-audit) -- monotonic one-way flag; observers only need eventual visibility
    flag.store(true, Ordering::Relaxed);
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    assert_eq!(r.suppressions.len(), 1);
}

#[test]
fn relaxed_ordering_suppression_without_reason_rejected() {
    let r = lint(
        r#"
fn cancel(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed); // ovc-lint: allow(relaxed-ordering-audit)
}
"#,
    );
    let mut rules = rules_of(&r);
    rules.sort_unstable();
    assert_eq!(rules, vec![RELAXED_ORDERING_AUDIT, SUPPRESSION_HYGIENE]);
}

// ---------------------------------------------------------------------
// Suppression mechanics
// ---------------------------------------------------------------------

/// One suppression can name several rules; unknown rules are rejected;
/// the hygiene meta-rule cannot suppress itself; prose that merely
/// *mentions* the syntax mid-comment is not a directive.
#[test]
fn suppression_mechanics() {
    let r = lint(
        r#"
fn f(flag: &AtomicBool) {
    // ovc-lint: allow(relaxed-ordering-audit, no-unwrap-expect) -- flag is monotonic and the lock cannot be poisoned
    flag.store(lock.lock().unwrap().done, Ordering::Relaxed);
}
"#,
    );
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    assert_eq!(r.suppressions.len(), 1);
    assert_eq!(r.suppressions[0].rules.len(), 2);

    let r = lint("fn f() {}\n// ovc-lint: allow(no-such-rule) -- whatever\n");
    assert_eq!(rules_of(&r), vec![SUPPRESSION_HYGIENE]);
    assert!(r.findings[0].message.contains("no-such-rule"));

    let r = lint("fn f() {}\n// ovc-lint: allow(suppression-hygiene) -- nice try\n");
    assert_eq!(rules_of(&r), vec![SUPPRESSION_HYGIENE]);

    // Prose about the syntax, not at the comment start: ignored.
    let r = lint("fn f() {}\n// to exempt a site, write `ovc-lint: allow(rule) -- why`\n");
    assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    assert!(r.suppressions.is_empty());
}

/// A suppression on its own comment line covers the next code line,
/// and covers ONLY that line — it is not file-wide.
#[test]
fn suppression_scope_is_one_line() {
    let r = lint(
        r#"
fn f(flag: &AtomicBool) {
    // ovc-lint: allow(relaxed-ordering-audit) -- first store is a monotonic flag
    flag.store(true, Ordering::Relaxed);
    flag.store(false, Ordering::Relaxed);
}
"#,
    );
    assert_eq!(rules_of(&r), vec![RELAXED_ORDERING_AUDIT]);
    assert_eq!(r.findings[0].line, 5);
}

// ---------------------------------------------------------------------
// Lexer robustness through the public surface
// ---------------------------------------------------------------------

/// Violations hidden in raw strings, nested block comments, and char
/// literals must not fire; real code after them still must.
#[test]
fn lexer_edge_cases() {
    let src = "fn f() {\n    let doc = r#\"call .unwrap() and mpsc::channel() freely\"#;\n    /* outer /* nested .unwrap() */ still comment */\n    let tick: char = '\\'';\n    let v = opt.unwrap();\n}\n";
    let r = lint(src);
    assert_eq!(rules_of(&r), vec![NO_UNWRAP_EXPECT]);
    assert_eq!(r.findings[0].line, 5);
}

// ---------------------------------------------------------------------
// JSON report round-trip (snapshot-validator pattern)
// ---------------------------------------------------------------------

/// The emitted report must round-trip through the parser and pass the
/// schema validator; a corrupted report must not.
#[test]
fn report_round_trips_and_validates() {
    let src = r#"
fn f(path: &str) {
    let v = std::fs::read(path).unwrap();
    // ovc-lint: allow(relaxed-ordering-audit) -- monotonic counter
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
    let file = lint(src);
    let report = ovc_lint::LintReport {
        root: "fixture".to_string(),
        files_scanned: 1,
        findings: file.findings,
        suppressions: file.suppressions,
    };
    let pretty = report.to_json().to_pretty();
    let doc = Json::parse(&pretty).expect("emitted report must parse");
    validate_report(&doc).expect("emitted report must validate");

    assert_eq!(
        doc.get("schema_version").and_then(Json::as_num),
        Some(SCHEMA_VERSION as f64)
    );
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings array");
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("rule").and_then(Json::as_str),
        Some(NO_UNWRAP_EXPECT)
    );
    let sups = doc
        .get("suppressions")
        .and_then(Json::as_arr)
        .expect("suppressions array");
    assert_eq!(sups.len(), 1);
    assert!(sups[0]
        .get("reason")
        .and_then(Json::as_str)
        .is_some_and(|s| !s.is_empty()));

    // Corruption: a wrong schema_version must be rejected.
    let corrupted = pretty.replacen(
        &format!("\"schema_version\": {SCHEMA_VERSION}"),
        "\"schema_version\": 999",
        1,
    );
    assert_ne!(corrupted, pretty, "corruption must actually apply");
    let doc = Json::parse(&corrupted).expect("still valid JSON");
    assert!(validate_report(&doc).is_err());

    // Corruption: a summary count disagreeing with the array length.
    let corrupted = pretty.replacen("\"findings\": 1", "\"findings\": 7", 1);
    assert_ne!(corrupted, pretty, "corruption must actually apply");
    let doc = Json::parse(&corrupted).expect("still valid JSON");
    assert!(validate_report(&doc).is_err());
}

// ---------------------------------------------------------------------
// The real workspace
// ---------------------------------------------------------------------

/// The whole point: the actual workspace is at zero findings, every
/// suppression carries a reason, and the run covers a non-trivial file
/// count.  This is the same check CI runs via `ovc-lint --deny`.
#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = lint_workspace(&root, &Config::default()).expect("workspace walk");
    assert!(
        report.findings.is_empty(),
        "workspace must be finding-free; got: {:#?}",
        report.findings
    );
    assert!(
        report.files_scanned > 100,
        "expected to scan the whole workspace, saw {} files",
        report.files_scanned
    );
    assert!(
        !report.suppressions.is_empty(),
        "the sweep recorded reasoned suppressions; none seen"
    );
    for s in &report.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "reason-less suppression honored at {}:{}",
            s.file,
            s.line
        );
    }
    // And the report it writes is schema-valid.
    let doc = Json::parse(&report.to_json().to_pretty()).expect("report parses");
    validate_report(&doc).expect("workspace report validates");
}
