//! Log-structured merge-forest (Sections 1, 2, 4.11).
//!
//! The paper's motivating deployment: "offset-value coding … already saves
//! thousands of CPUs in Google's Napa and F1 Query systems, e.g., in
//! grouping algorithms and in log-structured merge-forests", where
//! "ingestion (run generation), compaction (merging), and query processing
//! … rely heavily on sorting and merging" (Section 7).
//!
//! This forest follows the stepped-merge design [Jagadish et al. 1997]:
//! each level holds up to `fanout` sorted runs; when a level fills, all its
//! runs merge into a single run of the next level.  Every piece of sorted
//! data carries offset-value codes:
//!
//! * **ingest** sorts a batch with the OVC priority queue — codes are a
//!   by-product;
//! * **compaction** merges runs with a tree-of-losers — codes in, codes
//!   out, column comparisons bounded by `N × K`;
//! * **scan** merges all runs the same way, delivering one coded stream to
//!   query processing.

use std::sync::Arc;

use ovc_core::{Row, Stats};
use ovc_sort::{merge_runs_to_run, sort_rows_ovc, Run, RunCursor, TreeOfLosers};

/// Forest shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct LsmConfig {
    /// Maximum runs per level before compaction into the next level.
    pub fanout: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig { fanout: 4 }
    }
}

/// A log-structured merge-forest of coded sorted runs.
pub struct LsmForest {
    key_len: usize,
    config: LsmConfig,
    /// `levels[0]` holds the newest (smallest) runs.
    levels: Vec<Vec<Run>>,
    stats: Arc<Stats>,
    total_rows: usize,
}

impl LsmForest {
    /// An empty forest.
    pub fn new(key_len: usize, config: LsmConfig, stats: Arc<Stats>) -> Self {
        assert!(config.fanout >= 2);
        LsmForest {
            key_len,
            config,
            levels: vec![Vec::new()],
            stats,
            total_rows: 0,
        }
    }

    /// Sort-key arity.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Total ingested rows currently in the forest.
    pub fn len(&self) -> usize {
        self.total_rows
    }

    /// Is the forest empty?
    pub fn is_empty(&self) -> bool {
        self.total_rows == 0
    }

    /// Number of levels currently materialized.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of sorted runs across all levels.
    pub fn run_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Ingest one unsorted batch: run generation via the OVC priority
    /// queue, then cascading compaction.
    pub fn ingest(&mut self, batch: Vec<Row>) {
        if batch.is_empty() {
            return;
        }
        self.total_rows += batch.len();
        let run = sort_rows_ovc(batch, self.key_len, &self.stats);
        // Ingestion writes the run (spill accounting mirrors Napa's
        // "ingestion (run generation)" I/O).
        self.stats.count_spill(run.len() as u64, run.spill_bytes());
        self.levels[0].push(run);
        self.compact_from(0);
    }

    /// Cascade compaction: when a level exceeds the fanout, merge all its
    /// runs into one run of the next level.
    fn compact_from(&mut self, mut level: usize) {
        while self.levels[level].len() > self.config.fanout {
            let runs = std::mem::take(&mut self.levels[level]);
            let read_rows: u64 = runs.iter().map(|r| r.len() as u64).sum();
            let read_bytes: u64 = runs.iter().map(Run::spill_bytes).sum();
            self.stats.count_read_back(read_rows, read_bytes);
            let merged = merge_runs_to_run(runs, self.key_len, &self.stats);
            self.stats
                .count_spill(merged.len() as u64, merged.spill_bytes());
            if level + 1 == self.levels.len() {
                self.levels.push(Vec::new());
            }
            self.levels[level + 1].push(merged);
            level += 1;
        }
    }

    /// Force-merge the whole forest into a single run (major compaction).
    pub fn major_compact(&mut self) {
        let runs: Vec<Run> = self.levels.iter_mut().flat_map(std::mem::take).collect();
        if runs.is_empty() {
            return;
        }
        let merged = merge_runs_to_run(runs, self.key_len, &self.stats);
        self.levels = vec![Vec::new(), vec![merged]];
        while self.levels.len() > 2 {
            self.levels.pop();
        }
    }

    /// Ordered scan over the whole forest: a tree-of-losers merge of every
    /// run's cursor, producing one coded stream.
    pub fn scan(&self) -> TreeOfLosers<RunCursor> {
        let cursors: Vec<RunCursor> = self
            .levels
            .iter()
            .flatten()
            .map(|r| r.clone().cursor())
            .collect();
        TreeOfLosers::new(cursors, self.key_len, Arc::clone(&self.stats))
    }

    /// Point lookup: all rows matching the full key, newest level first
    /// within result order (sorted overall).
    pub fn lookup(&self, key: &[u64]) -> Vec<Row> {
        assert_eq!(key.len(), self.key_len);
        let mut out: Vec<Row> = Vec::new();
        for run in self.levels.iter().flatten() {
            // Binary search directly over the run's flat storage.
            let (mut lo, mut hi) = (0usize, run.len());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                self.stats.count_row_cmp();
                if &run.row(mid)[..self.key_len] < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            for i in lo..run.len() {
                if &run.row(i)[..self.key_len] != key {
                    break;
                }
                out.push(Row::from_slice(run.row(i)));
            }
        }
        out.sort();
        out
    }

    /// Consume the forest into one merged coded stream (used by pipelines
    /// that own the forest).
    pub fn into_scan(self) -> TreeOfLosers<RunCursor> {
        let key_len = self.key_len;
        let stats = Arc::clone(&self.stats);
        let cursors: Vec<RunCursor> = self.levels.into_iter().flatten().map(Run::cursor).collect();
        TreeOfLosers::new(cursors, key_len, stats)
    }
}

/// Merge several forests' scans into one coded stream — the "merge of such
/// scans benefits from offset-value codes" case of Section 4.11.  The
/// merge is itself a tree-of-losers over the forests' merge trees.
pub fn merge_forest_scans(
    forests: Vec<LsmForest>,
    stats: &Arc<Stats>,
) -> TreeOfLosers<TreeOfLosers<RunCursor>> {
    let key_len = forests.first().map(|f| f.key_len()).unwrap_or(0);
    let scans: Vec<TreeOfLosers<RunCursor>> =
        forests.into_iter().map(LsmForest::into_scan).collect();
    TreeOfLosers::new(scans, key_len, Arc::clone(stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::Ovc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn batch(n: usize, rng: &mut StdRng) -> Vec<Row> {
        (0..n)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..50u64),
                    rng.gen_range(0..50u64),
                    rng.gen::<u64>() % 1000, // payload
                ])
            })
            .collect()
    }

    #[test]
    fn ingest_scan_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let stats = Stats::new_shared();
        let mut forest = LsmForest::new(2, LsmConfig::default(), Arc::clone(&stats));
        let mut all: Vec<Row> = Vec::new();
        for _ in 0..10 {
            let b = batch(100, &mut rng);
            all.extend(b.iter().cloned());
            forest.ingest(b);
        }
        assert_eq!(forest.len(), 1000);
        let pairs: Vec<(Row, Ovc)> = forest.scan().map(|r| (r.row, r.code)).collect();
        assert_eq!(pairs.len(), 1000);
        assert_codes_exact(&pairs, 2);
        let mut got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        let mut expect = all;
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn compaction_bounds_run_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let stats = Stats::new_shared();
        let cfg = LsmConfig { fanout: 3 };
        let mut forest = LsmForest::new(2, cfg, Arc::clone(&stats));
        for _ in 0..40 {
            forest.ingest(batch(20, &mut rng));
        }
        // Every level holds at most `fanout` runs after ingest returns.
        for level in &forest.levels {
            assert!(level.len() <= 3);
        }
        assert!(forest.depth() >= 2, "compaction created deeper levels");
    }

    #[test]
    fn major_compact_leaves_single_run() {
        let mut rng = StdRng::seed_from_u64(3);
        let stats = Stats::new_shared();
        let mut forest = LsmForest::new(2, LsmConfig::default(), Arc::clone(&stats));
        for _ in 0..7 {
            forest.ingest(batch(30, &mut rng));
        }
        forest.major_compact();
        assert_eq!(forest.run_count(), 1);
        let pairs: Vec<(Row, Ovc)> = forest.scan().map(|r| (r.row, r.code)).collect();
        assert_eq!(pairs.len(), 210);
        assert_codes_exact(&pairs, 2);
    }

    #[test]
    fn lookup_finds_all_versions() {
        let stats = Stats::new_shared();
        let mut forest = LsmForest::new(1, LsmConfig { fanout: 2 }, Arc::clone(&stats));
        forest.ingest(vec![Row::new(vec![5, 100]), Row::new(vec![6, 101])]);
        forest.ingest(vec![Row::new(vec![5, 200])]);
        forest.ingest(vec![Row::new(vec![7, 300]), Row::new(vec![5, 300])]);
        let got = forest.lookup(&[5]);
        assert_eq!(got.len(), 3);
        assert!(forest.lookup(&[99]).is_empty());
    }

    #[test]
    fn empty_forest() {
        let stats = Stats::new_shared();
        let forest = LsmForest::new(2, LsmConfig::default(), stats);
        assert!(forest.is_empty());
        assert_eq!(forest.scan().count(), 0);
    }

    #[test]
    fn empty_batch_is_noop() {
        let stats = Stats::new_shared();
        let mut forest = LsmForest::new(2, LsmConfig::default(), stats);
        forest.ingest(vec![]);
        assert!(forest.is_empty());
    }

    #[test]
    fn compaction_comparisons_bounded() {
        // Compaction effort: merging N rows with K columns costs at most
        // N*K column comparisons per merge level.
        let mut rng = StdRng::seed_from_u64(4);
        let stats = Stats::new_shared();
        let mut forest = LsmForest::new(2, LsmConfig { fanout: 4 }, Arc::clone(&stats));
        let mut n = 0u64;
        for _ in 0..16 {
            let b = batch(50, &mut rng);
            n += b.len() as u64;
            forest.ingest(b);
        }
        // Levels created: rows pass through at most depth() merge levels
        // plus run generation.  Generous bound: (depth + 1) * N * K.
        let bound = (forest.depth() as u64 + 1) * n * 2;
        assert!(
            stats.col_value_cmps() <= bound,
            "col cmps {} exceed bound {}",
            stats.col_value_cmps(),
            bound
        );
    }
}
