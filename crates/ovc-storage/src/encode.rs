//! Run spill encodings: prefix-truncated and raw flat words.
//!
//! "Recall that input runs are encoded with prefixes truncated"
//! (Section 3) — each row stores only its offset-value code, the key
//! columns past the shared prefix with its predecessor, and its payload.
//! The decoder reconstructs each key from the previous one, which is
//! precisely why a merge input's successor rows arrive coded relative to
//! the prior row *for free* ("offset-value codes for rows in sorted runs
//! are a byproduct of run generation", Section 5).
//!
//! Prefix-truncated layout (all little-endian `u64`):
//!
//! ```text
//! [magic][key_len][width][row count]
//! per row: [code][key columns from offset .. key_len][payload columns]
//! ```
//!
//! Since runs live in flat columnar storage (DESIGN.md §10) there is also
//! a **raw** layout that writes the run's two vectors verbatim — codes,
//! then the value buffer — trading bytes for serialization CPU.  Because
//! every raw bit pattern decodes to *some* row, the raw frame is
//! crash-safe: it carries its own length and a CRC32 so torn writes and
//! bit rot surface as a typed [`ExecError::SpillCorruption`] instead of
//! plausible garbage rows (DESIGN.md §14):
//!
//! ```text
//! [magic3][frame bytes][key_len][width][row count]
//! [codes × count][values × count·width]
//! [crc32 of all preceding bytes, zero-extended to u64]
//! ```
//!
//! Both round-trip bit-exactly; spill devices pick per fidelity goal
//! (encoded-byte accounting vs raw throughput / integrity framing).

use ovc_core::{ExecError, FlatRows, Ovc, SortSpec};
use ovc_sort::Run;

use crate::checksum::crc32;

const MAGIC: u64 = 0x4F56_4352_554E_0001; // "OVCRUN" v1 (prefix-truncated)
const MAGIC_RAW: u64 = 0x4F56_4352_554E_0003; // "OVCRUN" v3 (framed raw flat words)

/// Fixed overhead of a raw frame: five header words plus the checksum
/// word.
pub const RAW_FRAME_OVERHEAD: usize = 48;

/// Encode a run into bytes with prefix truncation, straight off its flat
/// storage.
pub fn encode_run(run: &Run) -> Vec<u8> {
    let key_len = run.key_len();
    let width = run.width();
    let mut out = Vec::with_capacity(32 + run.len() * (width + 1) * 8);
    push_u64(&mut out, MAGIC);
    push_u64(&mut out, key_len as u64);
    push_u64(&mut out, width as u64);
    push_u64(&mut out, run.len() as u64);
    for (row, code) in run.iter() {
        push_u64(&mut out, code.raw());
        let offset = if code.is_valid() {
            code.offset(key_len)
        } else {
            0
        };
        for &col in &row[offset..key_len] {
            push_u64(&mut out, col);
        }
        for &col in &row[key_len..] {
            push_u64(&mut out, col);
        }
    }
    out
}

/// Decode a prefix-truncated run into flat storage.  Shared key prefixes
/// are reconstructed by copying from the previous row **within the output
/// buffer itself** — the decode loop performs no per-row allocation.
/// Panics on malformed input (this is an internal format, not an
/// adversarial one).
pub fn decode_run(bytes: &[u8]) -> Run {
    let mut pos = 0usize;
    assert_eq!(read_u64(bytes, &mut pos), MAGIC, "bad run magic");
    let key_len = read_u64(bytes, &mut pos) as usize;
    let width = read_u64(bytes, &mut pos) as usize;
    let count = read_u64(bytes, &mut pos) as usize;
    let mut values: Vec<u64> = Vec::with_capacity(count * width);
    let mut codes: Vec<Ovc> = Vec::with_capacity(count);
    for i in 0..count {
        let code = Ovc::from_raw(read_u64(bytes, &mut pos));
        assert!(code.is_valid(), "row {i}: fence stored in run");
        let offset = code.offset(key_len);
        let prev_start = values.len().saturating_sub(width);
        // Shared prefix from the previous decoded row, in place.
        values.extend_from_within(prev_start..prev_start + offset);
        for _ in offset..width {
            values.push(read_u64(bytes, &mut pos));
        }
        codes.push(code);
    }
    assert_eq!(pos, bytes.len(), "trailing bytes after run");
    Run::from_flat(
        FlatRows::from_parts(width, values, codes),
        SortSpec::asc(key_len),
    )
}

/// Encode a run as framed raw flat words: header (with total frame
/// length), the code vector, the contiguous value buffer, then a CRC32
/// of everything preceding it.  No per-row branching — the cheap spill
/// format for devices that do not need prefix-truncated byte accounting.
pub fn encode_run_raw(run: &Run) -> Vec<u8> {
    let flat = run.flat();
    let total = RAW_FRAME_OVERHEAD + (flat.codes().len() + flat.values().len()) * 8;
    let mut out = Vec::with_capacity(total);
    push_u64(&mut out, MAGIC_RAW);
    push_u64(&mut out, total as u64);
    push_u64(&mut out, run.key_len() as u64);
    push_u64(&mut out, flat.width() as u64);
    push_u64(&mut out, flat.len() as u64);
    for &code in flat.codes() {
        push_u64(&mut out, code.raw());
    }
    for &v in flat.values() {
        push_u64(&mut out, v);
    }
    let crc = crc32(&out);
    push_u64(&mut out, u64::from(crc));
    out
}

fn corrupt(detail: impl Into<String>) -> ExecError {
    ExecError::SpillCorruption {
        detail: detail.into(),
    }
}

/// Decode a framed raw flat-words run, validating the frame before
/// trusting a single word of it: magic, declared length against actual
/// length (torn-write detection), and CRC32 (bit-rot detection).  Every
/// malformation returns a typed [`ExecError::SpillCorruption`]; this
/// function never panics on bad bytes and never returns garbage rows.
pub fn decode_run_raw(bytes: &[u8]) -> Result<Run, ExecError> {
    if bytes.len() < RAW_FRAME_OVERHEAD || !bytes.len().is_multiple_of(8) {
        return Err(corrupt(format!(
            "raw run frame truncated: {} bytes, need at least {RAW_FRAME_OVERHEAD}",
            bytes.len()
        )));
    }
    let mut pos = 0usize;
    let magic = read_u64(bytes, &mut pos);
    if magic != MAGIC_RAW {
        return Err(corrupt(format!(
            "bad raw run magic {magic:#018x} (expected {MAGIC_RAW:#018x})"
        )));
    }
    let declared = read_u64(bytes, &mut pos);
    if declared != bytes.len() as u64 {
        return Err(corrupt(format!(
            "torn raw run frame: header declares {declared} bytes, got {}",
            bytes.len()
        )));
    }
    let body = &bytes[..bytes.len() - 8];
    let mut crc_pos = bytes.len() - 8;
    let stored_crc = read_u64(bytes, &mut crc_pos);
    let actual_crc = u64::from(crc32(body));
    if stored_crc != actual_crc {
        return Err(corrupt(format!(
            "raw run checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    let key_len = read_u64(bytes, &mut pos) as usize;
    let width = read_u64(bytes, &mut pos) as usize;
    let count = read_u64(bytes, &mut pos) as usize;
    let expected = count
        .checked_mul(width + 1)
        .and_then(|words| words.checked_mul(8))
        .and_then(|data| data.checked_add(RAW_FRAME_OVERHEAD));
    if expected != Some(bytes.len()) {
        return Err(corrupt(format!(
            "raw run header inconsistent: count {count} width {width} in a {}-byte frame",
            bytes.len()
        )));
    }
    if key_len > width {
        return Err(corrupt(format!(
            "raw run header inconsistent: key_len {key_len} exceeds width {width}"
        )));
    }
    let codes: Vec<Ovc> = (0..count)
        .map(|_| Ovc::from_raw(read_u64(bytes, &mut pos)))
        .collect();
    let values: Vec<u64> = (0..count * width)
        .map(|_| read_u64(bytes, &mut pos))
        .collect();
    Ok(Run::from_flat(
        FlatRows::from_parts(width, values, codes),
        SortSpec::asc(key_len),
    ))
}

#[inline]
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn read_u64(bytes: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(
        bytes[*pos..*pos + 8]
            .try_into()
            .expect("an 8-byte slice always converts to [u8; 8]"),
    );
    *pos += 8;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::{Row, Stats};
    use ovc_sort::sort_rows_ovc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn round_trip(run: &Run) {
        let bytes = encode_run(run);
        let back = decode_run(&bytes);
        assert_eq!(back.key_len(), run.key_len());
        assert_eq!(back.flat(), run.flat());
        let raw = encode_run_raw(run);
        let back_raw = decode_run_raw(&raw).expect("clean frame decodes");
        assert_eq!(back_raw.key_len(), run.key_len());
        assert_eq!(back_raw.flat(), run.flat());
    }

    #[test]
    fn round_trips_table1() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        round_trip(&run);
    }

    #[test]
    fn round_trips_random_runs_with_payload() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Row> = (0..500)
            .map(|i| {
                Row::new(vec![
                    rng.gen_range(0..4u64),
                    rng.gen_range(0..4u64),
                    rng.gen_range(0..100u64),
                    i, // payload
                ])
            })
            .collect();
        let stats = Stats::new_shared();
        let run = sort_rows_ovc(rows, 3, &stats);
        round_trip(&run);
    }

    #[test]
    fn empty_run() {
        round_trip(&Run::empty(2));
    }

    #[test]
    fn prefix_truncation_saves_bytes() {
        // Heavily duplicated keys compress well: duplicates store no key
        // columns at all.
        let rows: Vec<Row> = (0..100).map(|_| Row::new(vec![1, 2, 3, 4])).collect();
        let run = Run::from_sorted_rows(rows, 4);
        let bytes = encode_run(&run);
        let plain = 32 + 100 * 5 * 8; // header + (code + 4 cols) per row
        assert!(
            bytes.len() < plain / 3,
            "truncated {} vs plain {}",
            bytes.len(),
            plain
        );
        // The raw format is exactly the flat words plus frame overhead
        // (header with length, trailing CRC32).
        assert_eq!(encode_run_raw(&run).len(), RAW_FRAME_OVERHEAD + 100 * 5 * 8);
    }

    #[test]
    fn raw_frame_detects_bit_rot() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        let clean = encode_run_raw(&run);
        // Flip a single bit at every byte position: each one must decode
        // to a typed corruption error, never to rows.
        for pos in 0..clean.len() {
            let mut bad = clean.clone();
            bad[pos] ^= 0x10;
            let err = decode_run_raw(&bad).expect_err("flip must be detected");
            assert_eq!(err.reason(), "spill_corruption", "flip at byte {pos}");
        }
    }

    #[test]
    fn raw_frame_detects_torn_writes() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        let clean = encode_run_raw(&run);
        // A torn write drops the tail of the frame.
        for keep in [0usize, 8, RAW_FRAME_OVERHEAD, clean.len() - 8] {
            let err = decode_run_raw(&clean[..keep]).expect_err("tear must be detected");
            assert_eq!(err.reason(), "spill_corruption", "torn at {keep} bytes");
        }
        // Trailing garbage is equally fatal.
        let mut padded = clean;
        padded.extend_from_slice(&[0u8; 8]);
        assert!(decode_run_raw(&padded).is_err());
    }

    #[test]
    fn raw_frame_rejects_foreign_magic() {
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        // A prefix-truncated image is not a raw frame.
        let err = decode_run_raw(&encode_run(&run)).expect_err("wrong format");
        assert_eq!(err.reason(), "spill_corruption");
    }

    #[test]
    fn single_row_run() {
        let run = Run::from_sorted_rows(vec![Row::new(vec![9, 8, 7])], 3);
        round_trip(&run);
    }
}
