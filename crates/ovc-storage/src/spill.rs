//! Spill devices: encoding-faithful [`RunStorage`] implementations.
//!
//! [`EncodedRunStorage`] keeps prefix-truncated byte images in memory and
//! accounts *actual encoded bytes* — the honest substitute for the paper's
//! temporary files (DESIGN.md §3.6): spill behaviour depends on row counts
//! and byte volumes, not on the device.  [`FileRunStorage`] writes the same
//! images through `std::fs` for runs that should genuinely leave memory.

use std::path::PathBuf;
use std::sync::Arc;

use ovc_core::fault::{self, FaultPoint};
use ovc_core::{ExecError, Stats};
use ovc_sort::{Run, RunStorage};

use crate::encode::{decode_run, decode_run_raw, encode_run, encode_run_raw};

/// On-disk layout of a spilled run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillFormat {
    /// Prefix-truncated byte images (Section 3's encoding; honest encoded
    /// byte accounting, the historical default).
    PrefixTruncated,
    /// The run's flat buffers written as raw little-endian `u64` words —
    /// no per-row branching on either side of the spill, the cheap path
    /// for devices where serialization CPU matters more than bytes.
    RawWords,
}

impl SpillFormat {
    fn encode(self, run: &Run) -> Vec<u8> {
        match self {
            SpillFormat::PrefixTruncated => encode_run(run),
            SpillFormat::RawWords => encode_run_raw(run),
        }
    }

    fn decode(self, bytes: &[u8]) -> Result<Run, ExecError> {
        match self {
            SpillFormat::PrefixTruncated => Ok(decode_run(bytes)),
            SpillFormat::RawWords => decode_run_raw(bytes),
        }
    }

    /// Whether the format carries its own integrity framing (length +
    /// CRC32), i.e. whether corrupted bytes decode to a typed error.
    fn checksummed(self) -> bool {
        matches!(self, SpillFormat::RawWords)
    }
}

/// In-memory spill device storing encoded (prefix-truncated) run images.
pub struct EncodedRunStorage {
    blobs: Vec<Option<(Vec<u8>, u64)>>, // (bytes, row count)
    stats: Arc<Stats>,
}

impl EncodedRunStorage {
    /// New device accounting into `stats`.
    pub fn new(stats: Arc<Stats>) -> Self {
        EncodedRunStorage {
            blobs: Vec::new(),
            stats,
        }
    }

    /// Total encoded bytes currently held.
    pub fn resident_bytes(&self) -> usize {
        self.blobs.iter().flatten().map(|(b, _)| b.len()).sum()
    }
}

impl RunStorage for EncodedRunStorage {
    fn write_run(&mut self, run: Run) -> Result<usize, ExecError> {
        fault::maybe_spill_io(FaultPoint::SpillWrite)?;
        let rows = run.len() as u64;
        let bytes = encode_run(&run);
        self.stats.count_spill(rows, bytes.len() as u64);
        self.blobs.push(Some((bytes, rows)));
        Ok(self.blobs.len() - 1)
    }

    fn read_run(&mut self, handle: usize) -> Result<Run, ExecError> {
        fault::maybe_spill_io(FaultPoint::SpillRead)?;
        let (bytes, rows) = self.blobs[handle].take().expect("run already consumed");
        self.stats.count_read_back(rows, bytes.len() as u64);
        Ok(decode_run(&bytes))
    }

    fn stored_runs(&self) -> usize {
        self.blobs.iter().filter(|b| b.is_some()).count()
    }
}

/// File-backed spill device: each run is one file in a scratch directory,
/// deleted when the device drops.
pub struct FileRunStorage {
    dir: PathBuf,
    files: Vec<Option<(PathBuf, u64, u64)>>, // (path, rows, bytes)
    stats: Arc<Stats>,
    next_id: u64,
    format: SpillFormat,
}

impl FileRunStorage {
    /// As [`FileRunStorage::new`], spilling raw flat words instead of
    /// prefix-truncated images (cheaper encode/decode, more bytes).
    pub fn new_raw(stats: Arc<Stats>) -> std::io::Result<Self> {
        let mut s = Self::new(stats)?;
        s.format = SpillFormat::RawWords;
        Ok(s)
    }

    /// Create a scratch directory under the system temp dir.
    pub fn new(stats: Arc<Stats>) -> std::io::Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "ovc-spill-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(FileRunStorage {
            dir,
            files: Vec::new(),
            stats,
            next_id: 0,
            format: SpillFormat::PrefixTruncated,
        })
    }

    /// The scratch directory path.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }
}

impl RunStorage for FileRunStorage {
    fn write_run(&mut self, run: Run) -> Result<usize, ExecError> {
        fault::maybe_spill_io(FaultPoint::SpillWrite)?;
        let rows = run.len() as u64;
        let mut bytes = self.format.encode(&run);
        // Corruption injection only targets the checksummed format: the
        // flip must surface as a typed decode error on read-back, and
        // only framed bytes guarantee that.
        if self.format.checksummed() {
            fault::maybe_corrupt(&mut bytes);
        }
        let path = self.dir.join(format!("run-{}.ovc", self.next_id));
        self.next_id += 1;
        std::fs::write(&path, &bytes).map_err(|e| ExecError::SpillIo {
            detail: format!("writing {}: {e}", path.display()),
        })?;
        self.stats.count_spill(rows, bytes.len() as u64);
        self.files.push(Some((path, rows, bytes.len() as u64)));
        Ok(self.files.len() - 1)
    }

    fn read_run(&mut self, handle: usize) -> Result<Run, ExecError> {
        fault::maybe_spill_io(FaultPoint::SpillRead)?;
        let (path, rows, bytes) = self.files[handle].take().expect("run already consumed");
        let data = std::fs::read(&path).map_err(|e| ExecError::SpillIo {
            detail: format!("reading {}: {e}", path.display()),
        })?;
        let _ = std::fs::remove_file(&path);
        self.stats.count_read_back(rows, bytes);
        self.format.decode(&data)
    }

    fn stored_runs(&self) -> usize {
        self.files.iter().filter(|f| f.is_some()).count()
    }
}

impl Drop for FileRunStorage {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::Row;
    use ovc_sort::{external_sort, SortConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..8u64), rng.gen_range(0..8u64)]))
            .collect()
    }

    #[test]
    fn encoded_storage_round_trip() {
        let stats = Stats::new_shared();
        let mut storage = EncodedRunStorage::new(Arc::clone(&stats));
        let run = Run::from_sorted_rows(ovc_core::table1::rows(), 4);
        let h = storage.write_run(run.clone()).expect("write");
        assert_eq!(storage.stored_runs(), 1);
        assert!(storage.resident_bytes() > 0);
        let back = storage.read_run(h).expect("read");
        assert_eq!(back.flat(), run.flat());
        assert_eq!(storage.stored_runs(), 0);
        assert_eq!(stats.rows_spilled(), 7);
        assert_eq!(stats.rows_read_back(), 7);
        assert_eq!(stats.bytes_spilled(), stats.bytes_read_back());
    }

    #[test]
    fn external_sort_through_encoded_storage() {
        let rows = random_rows(600, 9);
        let stats = Stats::new_shared();
        let mut storage = EncodedRunStorage::new(Arc::clone(&stats));
        let out: Vec<_> =
            external_sort(rows, SortConfig::new(2, 64), &mut storage, &stats).collect();
        assert_eq!(out.len(), 600);
        let pairs: Vec<_> = out.into_iter().map(|r| (r.row, r.code)).collect();
        ovc_core::derive::assert_codes_exact(&pairs, 2);
        assert_eq!(stats.rows_spilled(), 600, "one spill pass");
    }

    #[test]
    fn file_storage_round_trip() {
        let stats = Stats::new_shared();
        let mut storage = FileRunStorage::new(Arc::clone(&stats)).expect("tempdir");
        let dir = storage.dir().clone();
        assert!(dir.exists());
        let mut rows = random_rows(100, 3);
        rows.sort();
        let run = Run::from_sorted_rows(rows, 2);
        let h = storage.write_run(run.clone()).expect("write");
        let back = storage.read_run(h).expect("read");
        assert_eq!(back.flat(), run.flat());
        drop(storage);
        assert!(!dir.exists(), "scratch dir removed on drop");
    }

    #[test]
    fn raw_file_storage_round_trips_and_costs_more_bytes() {
        let mut rows = random_rows(200, 21);
        rows.sort();
        let run = Run::from_sorted_rows(rows, 2);

        let s_enc = Stats::new_shared();
        let mut enc = FileRunStorage::new(Arc::clone(&s_enc)).expect("tempdir");
        let h = enc.write_run(run.clone()).expect("write");
        assert_eq!(enc.read_run(h).expect("read").flat(), run.flat());

        let s_raw = Stats::new_shared();
        let mut raw = FileRunStorage::new_raw(Arc::clone(&s_raw)).expect("tempdir");
        let h = raw.write_run(run.clone()).expect("write");
        assert_eq!(raw.read_run(h).expect("read").flat(), run.flat());

        // Raw words spill the whole flat buffer; prefix truncation saves
        // bytes on these low-cardinality keys.
        assert!(s_raw.bytes_spilled() > s_enc.bytes_spilled());
        assert_eq!(
            s_raw.bytes_spilled(),
            crate::encode::RAW_FRAME_OVERHEAD as u64
                + (run.len() as u64) * (run.width() as u64 + 1) * 8
        );
    }

    #[test]
    fn tampered_raw_spill_file_reads_back_as_typed_corruption() {
        let stats = Stats::new_shared();
        let mut storage = FileRunStorage::new_raw(Arc::clone(&stats)).expect("tempdir");
        let mut rows = random_rows(150, 33);
        rows.sort();
        let run = Run::from_sorted_rows(rows, 2);
        let h = storage.write_run(run).expect("write");

        // Flip one byte of the spilled file behind the device's back —
        // the bit-rot scenario the CRC32 framing exists for.
        let file = std::fs::read_dir(storage.dir())
            .expect("scratch dir")
            .next()
            .expect("one spill file")
            .expect("dir entry")
            .path();
        let mut bytes = std::fs::read(&file).expect("read spill file");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&file, &bytes).expect("rewrite spill file");

        let err = storage
            .read_run(h)
            .expect_err("corruption must be detected");
        assert_eq!(err.reason(), "spill_corruption");
    }

    #[test]
    fn truncated_raw_spill_file_reads_back_as_typed_corruption() {
        let stats = Stats::new_shared();
        let mut storage = FileRunStorage::new_raw(Arc::clone(&stats)).expect("tempdir");
        let mut rows = random_rows(150, 34);
        rows.sort();
        let run = Run::from_sorted_rows(rows, 2);
        let h = storage.write_run(run).expect("write");

        // Simulate a torn write: the file loses its tail.
        let file = std::fs::read_dir(storage.dir())
            .expect("scratch dir")
            .next()
            .expect("one spill file")
            .expect("dir entry")
            .path();
        let bytes = std::fs::read(&file).expect("read spill file");
        std::fs::write(&file, &bytes[..bytes.len() / 2]).expect("truncate spill file");

        let err = storage
            .read_run(h)
            .expect_err("torn write must be detected");
        assert_eq!(err.reason(), "spill_corruption");
    }

    #[test]
    fn file_storage_external_sort() {
        let rows = random_rows(400, 11);
        let stats = Stats::new_shared();
        let mut storage = FileRunStorage::new(Arc::clone(&stats)).expect("tempdir");
        let out: Vec<_> =
            external_sort(rows, SortConfig::new(2, 50), &mut storage, &stats).collect();
        assert_eq!(out.len(), 400);
        let pairs: Vec<_> = out.into_iter().map(|r| (r.row, r.code)).collect();
        ovc_core::derive::assert_codes_exact(&pairs, 2);
    }
}
