//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for spill-frame
//! integrity — table-driven, dependency-free.
//!
//! Spilled runs are written once and read back once on a path where a
//! torn write or a flipped bit would otherwise decode into *plausible but
//! wrong rows* (the raw-words format is just little-endian `u64`s — every
//! bit pattern is a valid row).  A 32-bit frame checksum turns both
//! failure modes into a typed `ExecError::SpillCorruption` instead.

/// The reflected IEEE polynomial used by zip, Ethernet, PNG, et al.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// standard IEEE convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = vec![0xABu8; 256];
        let base = crc32(&data);
        for pos in [0usize, 1, 100, 255] {
            let mut flipped = data.clone();
            flipped[pos] ^= 0x01;
            assert_ne!(crc32(&flipped), base, "flip at {pos} must change crc");
        }
    }
}
