//! Sorted, run-length-encoded column storage whose scans produce
//! offset-value codes for free (Section 4.11).
//!
//! "Column storage is often sorted with the leading key columns compressed
//! by run-length encoding.  Fortunately … such scans can produce row-by-row
//! offset-value codes without sorting and even without any column value
//! accesses or column value comparisons."
//!
//! The runs are *hierarchical*: a run in column `j` never crosses a run
//! boundary of any column `< j` (standard for sorted data — a new value in
//! an earlier column resets the later columns' runs).  At scan time, the
//! offset of row `i` is simply the first column whose run begins at `i`,
//! and the value is that run's stored value: an offset-value code computed
//! from run bookkeeping alone, no data comparisons.

use ovc_core::{Ovc, OvcRow, OvcStream, Row, Value};

/// One RLE run: a value repeated `len` times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Rle {
    value: Value,
    len: u32,
}

/// Sorted RLE column store: key columns run-length encoded hierarchically,
/// payload columns stored row-wise.
pub struct RleColumnStore {
    key_len: usize,
    n_rows: usize,
    /// Per key column, its runs (hierarchically split).
    key_runs: Vec<Vec<Rle>>,
    /// Payload columns of each row (row-major).
    payload: Vec<Box<[Value]>>,
    payload_width: usize,
}

impl RleColumnStore {
    /// Build from sorted rows.  Index-creation comparisons happen here,
    /// once; every later scan reuses them (Section 4.12).
    pub fn build(rows: &[Row], key_len: usize) -> Self {
        assert!(
            ovc_core::derive::is_sorted(rows, key_len),
            "RLE store requires sorted input"
        );
        let payload_width = rows.first().map(|r| r.width() - key_len).unwrap_or(0);
        let mut key_runs: Vec<Vec<Rle>> = vec![Vec::new(); key_len];
        let mut payload = Vec::with_capacity(rows.len());
        let mut prev: Option<&Row> = None;
        for row in rows {
            // First column where this row differs from its predecessor;
            // all runs from that column on break (hierarchical split).
            let break_col = match prev {
                None => 0,
                Some(p) => {
                    let mut b = key_len;
                    for j in 0..key_len {
                        if p.cols()[j] != row.cols()[j] {
                            b = j;
                            break;
                        }
                    }
                    b
                }
            };
            for (j, runs) in key_runs.iter_mut().enumerate() {
                if j >= break_col || runs.is_empty() {
                    runs.push(Rle {
                        value: row.cols()[j],
                        len: 1,
                    });
                } else {
                    runs.last_mut().expect("non-empty").len += 1;
                }
            }
            payload.push(row.payload(key_len).to_vec().into_boxed_slice());
            prev = Some(row);
        }
        RleColumnStore {
            key_len,
            n_rows: rows.len(),
            key_runs,
            payload,
            payload_width,
        }
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Sort-key arity.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Compression ratio achieved on the key columns: stored runs vs.
    /// `rows × columns` plain cells.
    pub fn key_compression_ratio(&self) -> f64 {
        let runs: usize = self.key_runs.iter().map(Vec::len).sum();
        let cells = self.n_rows * self.key_len.max(1);
        if cells == 0 {
            1.0
        } else {
            runs as f64 / cells as f64
        }
    }

    /// Ordered scan producing rows and codes from run bookkeeping alone.
    pub fn scan(&self) -> RleScan<'_> {
        RleScan {
            store: self,
            row: 0,
            cursors: vec![
                RunCursor {
                    run: 0,
                    remaining: 0
                };
                self.key_len
            ],
        }
    }
}

#[derive(Clone, Copy)]
struct RunCursor {
    run: usize,
    /// Rows left in the current run (0 = a new run starts at this row).
    remaining: u32,
}

/// Comparison-free coded scan over an [`RleColumnStore`].
pub struct RleScan<'a> {
    store: &'a RleColumnStore,
    row: usize,
    cursors: Vec<RunCursor>,
}

impl Iterator for RleScan<'_> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        if self.row >= self.store.n_rows {
            return None;
        }
        let key_len = self.store.key_len;
        // Offset = first column whose run begins at this row; the code's
        // value is that run's stored value.  No column comparisons.
        let mut offset = key_len;
        for j in 0..key_len {
            let c = &mut self.cursors[j];
            if c.remaining == 0 {
                if offset == key_len {
                    offset = j;
                }
                if self.row > 0 {
                    c.run += 1;
                }
                c.remaining = self.store.key_runs[j][c.run].len;
            }
            c.remaining -= 1;
        }
        let mut cols = Vec::with_capacity(key_len + self.store.payload_width);
        for j in 0..key_len {
            cols.push(self.store.key_runs[j][self.cursors[j].run].value);
        }
        cols.extend_from_slice(&self.store.payload[self.row]);
        let code = if self.row == 0 {
            Ovc::initial(&cols[..key_len])
        } else if offset == key_len {
            Ovc::duplicate()
        } else {
            Ovc::new(offset, cols[offset], key_len)
        };
        self.row += 1;
        Some(OvcRow::new(Row::new(cols), code))
    }
}

impl OvcStream for RleScan<'_> {
    fn key_len(&self) -> usize {
        self.store.key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_rows(n: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    rng.gen_range(0..domain),
                    rng.gen_range(0..domain),
                    rng.gen_range(0..domain),
                    i as u64, // payload
                ])
            })
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn scan_reproduces_rows_and_exact_codes() {
        let rows = sorted_rows(500, 4, 1);
        let store = RleColumnStore::build(&rows, 3);
        assert_eq!(store.len(), 500);
        let pairs: Vec<(Row, Ovc)> = store.scan().map(|r| (r.row, r.code)).collect();
        assert_eq!(pairs.len(), 500);
        assert_codes_exact(&pairs, 3);
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, rows);
    }

    #[test]
    fn table1_codes_from_rle() {
        let rows = ovc_core::table1::rows();
        let store = RleColumnStore::build(&rows, 4);
        let codes: Vec<Ovc> = store.scan().map(|r| r.code).collect();
        assert_eq!(codes, ovc_core::table1::asc_codes());
    }

    #[test]
    fn few_distinct_values_compress_well() {
        let rows = sorted_rows(1000, 3, 2);
        let store = RleColumnStore::build(&rows, 3);
        assert!(
            store.key_compression_ratio() < 0.5,
            "ratio {}",
            store.key_compression_ratio()
        );
    }

    #[test]
    fn empty_store() {
        let store = RleColumnStore::build(&[], 2);
        assert!(store.is_empty());
        assert_eq!(store.scan().count(), 0);
        assert_eq!(store.key_compression_ratio(), 1.0);
    }

    #[test]
    fn all_duplicates() {
        let rows = vec![Row::new(vec![5, 5]); 20];
        let store = RleColumnStore::build(&rows, 2);
        assert_eq!(
            store.key_runs.iter().map(Vec::len).sum::<usize>(),
            2,
            "one run per column"
        );
        let pairs: Vec<(Row, Ovc)> = store.scan().map(|r| (r.row, r.code)).collect();
        assert_codes_exact(&pairs, 2);
        assert!(pairs[1..].iter().all(|(_, c)| c.is_duplicate()));
    }

    #[test]
    fn keys_only_store() {
        // No payload columns at all.
        let mut rows: Vec<Row> = (0..50).map(|i| Row::new(vec![i / 10, i % 10])).collect();
        rows.sort();
        let store = RleColumnStore::build(&rows, 2);
        let pairs: Vec<(Row, Ovc)> = store.scan().map(|r| (r.row, r.code)).collect();
        assert_codes_exact(&pairs, 2);
    }
}
