//! # ovc-storage — ordered storage substrates that produce OVCs
//!
//! Section 4.11 of the paper: "Data access is a source of offset-value
//! codes as important as sorting.  All sorted scans can produce
//! offset-value codes."  This crate builds every storage structure the
//! paper names, each delivering coded streams:
//!
//! * [`encode`] — prefix-truncated run format (runs "encoded with prefixes
//!   truncated", Section 3) and the checksummed raw-words frame;
//! * [`checksum`] — dependency-free CRC32 behind the crash-safe spill
//!   framing (DESIGN.md §14);
//! * [`spill`] — spill devices with honest byte accounting (in-memory and
//!   file-backed) for the Figure 6 spill claims;
//! * [`btree`] — bulk-loaded b-tree with next-neighbor-difference leaf
//!   compression: scans and range scans produce codes for free;
//! * [`rle`] — sorted run-length-encoded column storage: codes from run
//!   bookkeeping without any column value comparisons;
//! * [`lsm`] — log-structured merge-forest (the Napa motivation): ingest,
//!   stepped-merge compaction, and merged scans all carry codes;
//! * [`secondary`] — non-unique secondary indexes with sorted RID lists,
//!   range/IN scans via tree-of-losers merges, and RID-order scans for
//!   index intersection and index join.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod checksum;
pub mod encode;
pub mod lsm;
pub mod rle;
pub mod secondary;
pub mod spill;

pub use btree::{BTree, BTreeScan};
pub use checksum::crc32;
pub use encode::{decode_run, decode_run_raw, encode_run, encode_run_raw, RAW_FRAME_OVERHEAD};
pub use lsm::{merge_forest_scans, LsmConfig, LsmForest};
pub use rle::{RleColumnStore, RleScan};
pub use secondary::{Rid, SecondaryIndex};
pub use spill::{EncodedRunStorage, FileRunStorage, SpillFormat};
