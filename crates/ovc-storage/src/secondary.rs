//! Non-unique secondary indexes with sorted row-identifier lists
//! (Section 4.11).
//!
//! "In non-unique secondary indexes, lists of row identifiers are usually
//! sorted and compressed … and thus can deliver such lists with
//! offset-value codes.  Range queries need to merge lists of row
//! identifiers; again, the merge logic consumes, benefits from, and
//! produces offset-value codes.  Multi-dimensional b-tree access, e.g.,
//! MDAM, similarly merges sorted lists of row identifiers.  Sorted lists
//! of row identifiers are similarly useful for index intersection and
//! index join, i.e., 'covering' a query in 'index-only retrieval' with
//! multiple secondary indexes of the same table."
//!
//! This index maps one column's values to sorted RID lists whose codes are
//! computed once at build time; equality, IN-list, and range scans deliver
//! coded RID streams (range/IN scans through a tree-of-losers merge).
//! Index intersection and RID-order index joins compose downstream with
//! the set operations and merge join of `ovc-exec` — see the
//! `secondary_index` integration tests.

use std::sync::Arc;

use ovc_core::{Ovc, OvcRow, Row, Stats, Value, VecStream};
use ovc_sort::{Run, RunCursor, TreeOfLosers};

/// A row identifier: the row's position in the base table.
pub type Rid = u64;

/// A secondary index over one column of a base table.
pub struct SecondaryIndex {
    /// Distinct values in ascending order, each with its coded RID list
    /// (RIDs ascend; codes are next-neighbor differences, free at scan).
    entries: Vec<(Value, Vec<OvcRow>)>,
    column: usize,
    table_rows: usize,
}

impl SecondaryIndex {
    /// Build the index over `table`, indexing `column`.
    pub fn build(table: &[Row], column: usize) -> Self {
        let mut pairs: Vec<(Value, Rid)> = table
            .iter()
            .enumerate()
            .map(|(rid, row)| (row.cols()[column], rid as Rid))
            .collect();
        pairs.sort_unstable();
        let mut entries: Vec<(Value, Vec<OvcRow>)> = Vec::new();
        for (value, rid) in pairs {
            let rid_row = Row::new(vec![rid]);
            match entries.last_mut() {
                Some((v, list)) if *v == value => {
                    // RIDs within one value's list are strictly ascending;
                    // the next-neighbor code is stored, as in a compressed
                    // index leaf.
                    let code = Ovc::new(0, rid, 1);
                    debug_assert!(list.last().map(|p| p.row.cols()[0] < rid).unwrap_or(true));
                    list.push(OvcRow::new(rid_row, code));
                }
                _ => {
                    let code = Ovc::initial(&[rid]);
                    entries.push((value, vec![OvcRow::new(rid_row, code)]));
                }
            }
        }
        SecondaryIndex {
            entries,
            column,
            table_rows: table.len(),
        }
    }

    /// Indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Number of rows in the indexed table.
    pub fn table_rows(&self) -> usize {
        self.table_rows
    }

    fn list_for(&self, value: Value) -> Option<&[OvcRow]> {
        self.entries
            .binary_search_by_key(&value, |(v, _)| *v)
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Coded RID stream for an equality predicate.  The stored codes come
    /// out unchanged — "practically for free".
    pub fn scan_eq(&self, value: Value) -> VecStream {
        let rows = self
            .list_for(value)
            .map(<[OvcRow]>::to_vec)
            .unwrap_or_default();
        VecStream::from_coded(rows, 1)
    }

    /// Coded RID stream for a range predicate `lo <= v < hi`: a
    /// tree-of-losers merge of the per-value lists, producing exact codes
    /// for the merged list (Section 4.11's "range queries need to merge
    /// lists of row identifiers").
    pub fn scan_range(&self, lo: Value, hi: Value, stats: &Arc<Stats>) -> TreeOfLosers<RunCursor> {
        let from = self.entries.partition_point(|(v, _)| *v < lo);
        let to = self.entries.partition_point(|(v, _)| *v < hi);
        let cursors: Vec<RunCursor> = self.entries[from..to]
            .iter()
            .map(|(_, list)| Run::from_coded(list.clone(), 1).cursor())
            .collect();
        TreeOfLosers::new(cursors, 1, Arc::clone(stats))
    }

    /// Coded RID stream for an IN-list predicate — MDAM-style merging of
    /// several disjoint lists.
    pub fn scan_in(&self, values: &[Value], stats: &Arc<Stats>) -> TreeOfLosers<RunCursor> {
        let cursors: Vec<RunCursor> = values
            .iter()
            .filter_map(|&v| self.list_for(v))
            .map(|list| Run::from_coded(list.to_vec(), 1).cursor())
            .collect();
        TreeOfLosers::new(cursors, 1, Arc::clone(stats))
    }

    /// Index-only scan in RID order: `(rid, value)` rows sorted by RID with
    /// exact codes (arity 1, the RID) — the building block for "index
    /// join", i.e. covering a query with multiple secondary indexes.
    pub fn scan_by_rid(&self) -> VecStream {
        let mut rows: Vec<(Rid, Value)> = self
            .entries
            .iter()
            .flat_map(|(v, list)| list.iter().map(move |r| (r.row.cols()[0], *v)))
            .collect();
        rows.sort_unstable();
        let coded: Vec<OvcRow> = rows
            .into_iter()
            .enumerate()
            .map(|(i, (rid, v))| {
                // RIDs are unique and ascending: codes are immediate.
                let code = if i == 0 {
                    Ovc::initial(&[rid])
                } else {
                    Ovc::new(0, rid, 1)
                };
                OvcRow::new(Row::new(vec![rid, v]), code)
            })
            .collect();
        VecStream::from_coded(coded, 1)
    }

    /// Fetch base-table rows for a RID stream (the non-covering path).
    pub fn fetch<'a>(
        table: &'a [Row],
        rids: impl Iterator<Item = OvcRow> + 'a,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        rids.map(move |r| &table[r.row.cols()[0] as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::stream::collect_pairs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..domain), rng.gen_range(0..domain)]))
            .collect()
    }

    #[test]
    fn equality_scan_returns_all_rids_coded() {
        let t = table(500, 10, 1);
        let idx = SecondaryIndex::build(&t, 0);
        for v in 0..10u64 {
            let pairs = collect_pairs(idx.scan_eq(v));
            assert_codes_exact(&pairs, 1);
            let expect: Vec<u64> = t
                .iter()
                .enumerate()
                .filter(|(_, r)| r.cols()[0] == v)
                .map(|(i, _)| i as u64)
                .collect();
            let got: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[0]).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn range_scan_merges_lists_with_exact_codes() {
        let t = table(800, 50, 2);
        let idx = SecondaryIndex::build(&t, 1);
        let stats = Stats::new_shared();
        let pairs = collect_pairs(idx.scan_range(10, 30, &stats));
        assert_codes_exact(&pairs, 1);
        let expect: Vec<u64> = t
            .iter()
            .enumerate()
            .filter(|(_, r)| (10..30).contains(&r.cols()[1]))
            .map(|(i, _)| i as u64)
            .collect();
        let got: Vec<u64> = pairs.iter().map(|(r, _)| r.cols()[0]).collect();
        assert_eq!(got, expect, "merged RID order = base-table order");
    }

    #[test]
    fn in_list_scan() {
        let t = table(300, 20, 3);
        let idx = SecondaryIndex::build(&t, 0);
        let stats = Stats::new_shared();
        let pairs = collect_pairs(idx.scan_in(&[3, 17, 99], &stats));
        assert_codes_exact(&pairs, 1);
        let expect = t
            .iter()
            .filter(|r| [3u64, 17].contains(&r.cols()[0]))
            .count();
        assert_eq!(pairs.len(), expect);
    }

    #[test]
    fn scan_by_rid_covers_the_table() {
        let t = table(200, 8, 4);
        let idx = SecondaryIndex::build(&t, 1);
        let pairs = collect_pairs(idx.scan_by_rid());
        assert_codes_exact(&pairs, 1);
        assert_eq!(pairs.len(), 200);
        for (row, _) in &pairs {
            let (rid, v) = (row.cols()[0], row.cols()[1]);
            assert_eq!(t[rid as usize].cols()[1], v);
        }
    }

    #[test]
    fn fetch_resolves_rids() {
        let t = table(100, 5, 5);
        let idx = SecondaryIndex::build(&t, 0);
        let fetched: Vec<&Row> = SecondaryIndex::fetch(&t, idx.scan_eq(2)).collect();
        assert!(fetched.iter().all(|r| r.cols()[0] == 2));
    }

    #[test]
    fn empty_and_missing_values() {
        let idx = SecondaryIndex::build(&[], 0);
        assert_eq!(idx.distinct_values(), 0);
        assert_eq!(idx.scan_eq(5).count(), 0);
        let stats = Stats::new_shared();
        assert_eq!(idx.scan_range(0, 100, &stats).count(), 0);
    }
}
