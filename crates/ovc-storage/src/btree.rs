//! B-tree with prefix truncation producing offset-value codes on scans
//! (Section 4.11).
//!
//! "Traditional b-trees readily support sorted scans.  Page-wide prefix
//! compression gives offset-value coding a head start; compression within
//! index leaves by next-neighbor difference … provides offset-value codes
//! practically for free."
//!
//! This bulk-loaded B-tree stores, with every leaf entry, its exact code
//! relative to the preceding entry (next-neighbor difference), plus a link
//! code connecting each leaf's first entry to the previous leaf's last —
//! so a full or range scan emits coded rows with **zero** column-value
//! comparisons.  The comparison effort spent at index-creation time is
//! preserved, exactly as Section 4.12 describes.

use ovc_core::compare::derive_code;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Stats};

/// A leaf page: coded entries plus the cross-leaf link code.
struct Leaf {
    /// Entries; entry 0's stored code is relative to the previous leaf's
    /// last entry (the link), later entries to their in-leaf predecessor.
    entries: Vec<OvcRow>,
}

/// An internal node: separator keys route to children one level below.
/// `children[i]` covers keys `< keys[i]`; the last child covers the rest.
struct Internal {
    /// First keys of children 1.. (standard separator layout).
    keys: Vec<Box<[u64]>>,
    /// Child indices into the level below (leaves or internals).
    children: Vec<u32>,
}

/// A bulk-loaded B-tree over sorted rows.
pub struct BTree {
    key_len: usize,
    leaves: Vec<Leaf>,
    /// Internal levels bottom-up; empty when a single leaf is the root.
    levels: Vec<Vec<Internal>>,
    n_rows: usize,
}

impl BTree {
    /// Bulk-load from sorted rows.  `leaf_capacity` entries per leaf,
    /// `branching` children per internal node.
    pub fn bulk_load(
        rows: Vec<Row>,
        key_len: usize,
        leaf_capacity: usize,
        branching: usize,
    ) -> Self {
        assert!(leaf_capacity >= 1 && branching >= 2);
        assert!(
            ovc_core::derive::is_sorted(&rows, key_len),
            "bulk load requires sorted input"
        );
        let n_rows = rows.len();
        let stats = Stats::default(); // creation-time comparisons are the index's own cost
        let mut leaves: Vec<Leaf> = Vec::new();
        let mut prev: Option<Row> = None;
        for chunk in rows.chunks(leaf_capacity) {
            let mut entries = Vec::with_capacity(chunk.len());
            for row in chunk {
                let code = match &prev {
                    None => Ovc::initial(row.key(key_len)),
                    Some(p) => derive_code(p.key(key_len), row.key(key_len), &stats),
                };
                entries.push(OvcRow::new(row.clone(), code));
                prev = Some(row.clone());
            }
            leaves.push(Leaf { entries });
        }

        // Build internal levels bottom-up.
        let mut levels: Vec<Vec<Internal>> = Vec::new();
        let mut child_first_keys: Vec<Box<[u64]>> = leaves
            .iter()
            .map(|l| l.entries[0].row.key(key_len).to_vec().into_boxed_slice())
            .collect();
        let mut width = leaves.len();
        while width > 1 {
            let mut level = Vec::new();
            let mut next_first_keys = Vec::new();
            let mut idx = 0u32;
            for group in child_first_keys.chunks(branching) {
                let children: Vec<u32> = (idx..idx + group.len() as u32).collect();
                idx += group.len() as u32;
                next_first_keys.push(group[0].clone());
                level.push(Internal {
                    keys: group[1..].to_vec(),
                    children,
                });
            }
            width = level.len();
            levels.push(level);
            child_first_keys = next_first_keys;
        }

        BTree {
            key_len,
            leaves,
            levels,
            n_rows,
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Sort-key arity.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Tree height (leaf level = 1).
    pub fn height(&self) -> usize {
        1 + self.levels.len()
    }

    /// Leaf index of the first entry whose key is `>= key` (prefix
    /// comparison on `key.len()` columns), descending through the internal
    /// levels with counted separator comparisons.
    fn descend(&self, key: &[u64], stats: &Stats) -> usize {
        if self.leaves.is_empty() {
            return 0;
        }
        let mut node = 0usize;
        for level in self.levels.iter().rev() {
            let n = &level[node];
            // Find the last child whose first key is strictly below the
            // probe: duplicates equal to a separator can end the previous
            // child, so a `<=` rule would skip them.
            let mut child = 0usize;
            for (i, sep) in n.keys.iter().enumerate() {
                if cmp_prefix(sep, key, stats) == std::cmp::Ordering::Less {
                    child = i + 1;
                } else {
                    break;
                }
            }
            node = n.children[child] as usize;
        }
        node
    }

    /// Position `(leaf, entry)` of the first entry `>= key` under prefix
    /// comparison (the classic `lower_bound`).
    fn lower_bound(&self, key: &[u64], stats: &Stats) -> (usize, usize) {
        if self.leaves.is_empty() {
            return (0, 0);
        }
        let mut leaf = self.descend(key, stats);
        loop {
            let entries = &self.leaves[leaf].entries;
            for (i, e) in entries.iter().enumerate() {
                if cmp_prefix(e.row.key(self.key_len), key, stats) != std::cmp::Ordering::Less {
                    return (leaf, i);
                }
            }
            leaf += 1;
            if leaf == self.leaves.len() {
                return (leaf, 0); // past the end
            }
        }
    }

    /// All rows whose key starts with `prefix`, in order, with exact codes
    /// (first row coded relative to "−∞", later rows reuse stored codes).
    pub fn lookup(&self, prefix: &[u64], stats: &Stats) -> Vec<OvcRow> {
        assert!(prefix.len() <= self.key_len);
        let (mut leaf, mut idx) = self.lower_bound(prefix, stats);
        let mut out: Vec<OvcRow> = Vec::new();
        while leaf < self.leaves.len() {
            let entries = &self.leaves[leaf].entries;
            while idx < entries.len() {
                let e = &entries[idx];
                stats.count_row_cmp();
                if &e.row.key(self.key_len)[..prefix.len()] != prefix {
                    return out;
                }
                let code = if out.is_empty() {
                    // A fresh result stream starts relative to "−∞".
                    Ovc::initial(e.row.key(self.key_len))
                } else {
                    // Contiguous predecessor: the stored next-neighbor
                    // difference is exact — no comparison needed.
                    e.code
                };
                out.push(OvcRow::new(e.row.clone(), code));
                idx += 1;
            }
            leaf += 1;
            idx = 0;
        }
        out
    }

    /// Full ordered scan producing codes with zero column comparisons.
    pub fn scan(&self) -> BTreeScan<'_> {
        BTreeScan {
            tree: self,
            leaf: 0,
            idx: 0,
            first: true,
        }
    }

    /// Ordered scan of all rows with keys in `[lo, hi)` (prefix
    /// comparisons).  Codes: first row relative to "−∞", later rows reuse
    /// the stored next-neighbor differences.
    pub fn range_scan(&self, lo: &[u64], hi: &[u64], stats: &Stats) -> Vec<OvcRow> {
        let (mut leaf, mut idx) = self.lower_bound(lo, stats);
        let mut out = Vec::new();
        while leaf < self.leaves.len() {
            let entries = &self.leaves[leaf].entries;
            while idx < entries.len() {
                let e = &entries[idx];
                if cmp_prefix(e.row.key(self.key_len), hi, stats) != std::cmp::Ordering::Less {
                    return out;
                }
                let code = if out.is_empty() {
                    Ovc::initial(e.row.key(self.key_len))
                } else {
                    e.code
                };
                out.push(OvcRow::new(e.row.clone(), code));
                idx += 1;
            }
            leaf += 1;
            idx = 0;
        }
        out
    }
}

/// Compare a full key against a (possibly shorter) probe prefix.
fn cmp_prefix(key: &[u64], prefix: &[u64], stats: &Stats) -> std::cmp::Ordering {
    let n = prefix.len().min(key.len());
    for i in 0..n {
        stats.count_col_cmp();
        match key[i].cmp(&prefix[i]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Ordered full scan over a [`BTree`] — an [`OvcStream`] whose codes come
/// straight from storage.
pub struct BTreeScan<'a> {
    tree: &'a BTree,
    leaf: usize,
    idx: usize,
    first: bool,
}

impl Iterator for BTreeScan<'_> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        while self.leaf < self.tree.leaves.len() {
            let entries = &self.tree.leaves[self.leaf].entries;
            if self.idx < entries.len() {
                let e = entries[self.idx].clone();
                self.idx += 1;
                self.first = false;
                return Some(e);
            }
            self.leaf += 1;
            self.idx = 0;
        }
        None
    }
}

impl OvcStream for BTreeScan<'_> {
    fn key_len(&self) -> usize {
        self.tree.key_len
    }
}

/// Convenience wrapper yielding the scan as an owned stream (for pipelines
/// that outlive the borrow, e.g. examples).
pub fn scan_to_stream(tree: &BTree) -> ovc_core::VecStream {
    ovc_core::VecStream::from_coded(tree.scan().collect(), tree.key_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(n: usize, seed: u64) -> (BTree, Vec<Row>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    rng.gen_range(0..20u64),
                    rng.gen_range(0..20u64),
                    i as u64, // payload
                ])
            })
            .collect();
        rows.sort();
        (BTree::bulk_load(rows.clone(), 2, 8, 4), rows)
    }

    #[test]
    fn scan_is_free_and_exact() {
        let (tree, rows) = build(500, 1);
        assert_eq!(tree.len(), 500);
        assert!(tree.height() >= 3, "multi-level tree expected");
        // The scan replays codes stored at bulk-load and holds no Stats
        // handle — there is nothing to count.  (A local Stats asserted
        // zero here used to pass vacuously; the checkable form of
        // "scans are free" is that the replayed codes are exact.)
        let pairs: Vec<(Row, Ovc)> = tree.scan().map(|r| (r.row, r.code)).collect();
        assert_eq!(pairs.len(), 500);
        assert_codes_exact(&pairs, 2);
        let got: Vec<Row> = pairs.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, rows);
    }

    #[test]
    fn lookup_finds_all_matches() {
        let (tree, rows) = build(400, 2);
        let stats = Stats::default();
        for probe in 0..20u64 {
            let before = stats.snapshot();
            let got = tree.lookup(&[probe], &stats);
            let delta = stats.snapshot().since(&before);
            let expect: Vec<&Row> = rows.iter().filter(|r| r.cols()[0] == probe).collect();
            assert_eq!(got.len(), expect.len(), "probe {probe}");
            for (g, e) in got.iter().zip(expect) {
                assert_eq!(&g.row, e);
            }
            // Live accounting: one row comparison per examined entry —
            // every result row plus at most the terminating non-match —
            // and the descent/lower-bound paid column comparisons.
            assert!(
                delta.row_cmps >= got.len() as u64
                    && delta.row_cmps <= got.len() as u64 + tree.leaves.len() as u64,
                "probe {probe}: row cmps {} for {} results",
                delta.row_cmps,
                got.len()
            );
            assert!(delta.col_value_cmps >= 1, "probe {probe}: descent counted");
            // Result codes form a valid coded stream.
            let pairs: Vec<(Row, Ovc)> = got.into_iter().map(|r| (r.row, r.code)).collect();
            assert_codes_exact(&pairs, 2);
        }
    }

    #[test]
    fn lookup_missing_key() {
        let (tree, _) = build(100, 3);
        let stats = Stats::default();
        assert!(tree.lookup(&[999], &stats).is_empty());
        // The probe descended and searched leaves (column comparisons)
        // but no candidate ever matched the prefix (no row comparisons:
        // the lower bound is past the last entry).
        let snap = stats.snapshot();
        assert!(snap.col_value_cmps >= 1, "descent must be counted");
        assert_eq!(snap.row_cmps, 0, "no candidate rows examined");
    }

    #[test]
    fn full_key_lookup() {
        let (tree, rows) = build(300, 4);
        let stats = Stats::default();
        let probe = rows[150].key(2);
        let got = tree.lookup(probe, &stats);
        assert!(!got.is_empty());
        assert!(got.iter().all(|r| r.row.key(2) == probe));
        // Each returned row was examined (counted) at least once.
        let snap = stats.snapshot();
        assert!(snap.row_cmps >= got.len() as u64, "{snap:?}");
        assert!(snap.col_value_cmps >= 1, "{snap:?}");
    }

    #[test]
    fn range_scan_respects_bounds() {
        let (tree, rows) = build(400, 5);
        let stats = Stats::default();
        let got = tree.range_scan(&[5], &[12], &stats);
        let expect: Vec<&Row> = rows
            .iter()
            .filter(|r| r.cols()[0] >= 5 && r.cols()[0] < 12)
            .collect();
        assert_eq!(got.len(), expect.len());
        // Every emitted row paid one upper-bound prefix comparison (plus
        // the lower-bound search); codes themselves stay free.
        let snap = stats.snapshot();
        assert!(snap.col_value_cmps >= got.len() as u64, "{snap:?}");
        assert_eq!(snap.row_cmps, 0, "range scans examine bounds, not rows");
        let pairs: Vec<(Row, Ovc)> = got.into_iter().map(|r| (r.row, r.code)).collect();
        assert_codes_exact(&pairs, 2);
    }

    #[test]
    fn empty_tree() {
        let tree = BTree::bulk_load(vec![], 2, 8, 4);
        assert!(tree.is_empty());
        assert_eq!(tree.scan().count(), 0);
        let stats = Stats::default();
        assert!(tree.lookup(&[1], &stats).is_empty());
        assert!(tree.range_scan(&[0], &[9], &stats).is_empty());
    }

    #[test]
    fn single_leaf_tree() {
        let rows: Vec<Row> = (0..5).map(|i| Row::new(vec![i])).collect();
        let tree = BTree::bulk_load(rows.clone(), 1, 8, 4);
        assert_eq!(tree.height(), 1);
        let got: Vec<Row> = tree.scan().map(|r| r.row).collect();
        assert_eq!(got, rows);
    }

    #[test]
    fn duplicates_spanning_leaves() {
        // 30 identical keys with leaf capacity 8: duplicates cross leaves.
        let rows: Vec<Row> = (0..30).map(|i| Row::new(vec![7, i])).collect();
        let tree = BTree::bulk_load(rows, 1, 8, 4);
        let stats = Stats::default();
        let got = tree.lookup(&[7], &stats);
        assert_eq!(got.len(), 30);
        let payloads: Vec<u64> = got.iter().map(|r| r.row.cols()[1]).collect();
        assert_eq!(payloads, (0..30).collect::<Vec<_>>());
    }
}
