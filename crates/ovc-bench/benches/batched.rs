//! Row-at-a-time vs batched execution of the §5 exchange-sandwich
//! workloads: the same planned group-by, union-all, and Figure-5
//! intersect queries, dop ∈ {1, 2, 4, 8}, each timed twice — once on
//! the row executor (`batch_size: None`, exchanges materialize whole
//! inputs at split/merge boundaries) and once on the batched executor
//! (`batch_size: Some(1024)`, operators pass `FlatRows` batches and
//! exchanges forward them through bounded channels).
//!
//! Byte-identity (rows *and* codes, row vs batched, every dop) is
//! asserted once before timing.  Interpreting the sweep: at dop=1 the
//! two executors do the same work through different plumbing, so the
//! pair measures per-batch adapter overhead; at dop > 1 the batched
//! rows additionally replace the row executor's materialize-then-split
//! exchange edges with pipelined channel forwarding, which is where
//! EXPERIMENTS.md §5 showed the sandwich costing up to 2.7×.  On a
//! single-core host both columns are overhead measurements (the sweep
//! prints what it detects).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_bench::workload::{intersect_tables, table, TableSpec};
use ovc_core::{OvcRow, Stats};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::figure5::{catalog_unsorted, plan_intersect};
use ovc_plan::{Aggregate, Catalog, LogicalPlan, Planner, PlannerConfig, Preference, SetOp, Table};

const MEMORY_ROWS: usize = 16 * 1024;
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Rows per `FlatRows` batch for the batched column of every sweep.
const BATCH: usize = 1024;

fn base_config() -> PlannerConfig {
    PlannerConfig::default()
        .with_memory_rows(MEMORY_ROWS)
        .with_preference(Preference::ForceSortBased)
}

/// Plan `q` at `dop` (stamping exchange edges when batched) and run it
/// on the executor selected by `batch`.
fn run_planned(
    catalog: &Catalog,
    q: &LogicalPlan,
    dop: usize,
    batch: Option<usize>,
) -> Vec<OvcRow> {
    let mut cfg = base_config().with_dop(dop).with_parallel_threshold(1);
    if let Some(b) = batch {
        cfg = cfg.with_batch_size(b);
    }
    let plan = Planner::new(catalog, cfg).plan(q).expect("plans");
    let stats = Stats::new_shared();
    let options = ExecOptions {
        batch_size: batch,
        ..Default::default()
    };
    execute(&plan, catalog, &stats, &options).into_coded()
}

/// Assert row/batched byte-identity across every dop, then time both
/// executors per dop under one criterion group.
fn sweep(c: &mut Criterion, group: &str, catalog: &Catalog, q: &LogicalPlan, elements: u64) {
    let reference = run_planned(catalog, q, 1, None);
    for dop in THREADS {
        assert_eq!(
            run_planned(catalog, q, dop, None),
            reference,
            "{group}: row dop={dop} must match serial"
        );
        assert_eq!(
            run_planned(catalog, q, dop, Some(BATCH)),
            reference,
            "{group}: batched dop={dop} must match serial rows and codes"
        );
    }

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.throughput(Throughput::Elements(elements));
    for dop in THREADS {
        g.bench_with_input(BenchmarkId::new("row", dop), &dop, |b, &d| {
            b.iter(|| run_planned(catalog, q, d, None).len())
        });
        g.bench_with_input(BenchmarkId::new("batched", dop), &dop, |b, &d| {
            b.iter(|| run_planned(catalog, q, d, Some(BATCH)).len())
        });
    }
    g.finish();
}

/// Planned group-by behind the exchange sandwich, batched vs row
/// (the §5 `planned_group_by_dop` workload).
fn bench_batched_group_by(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("(host reports {cores} core(s) — speedup requires > 1)");
    const ROWS: usize = 200_000;
    let rows = table(TableSpec {
        rows: ROWS,
        key_cols: 2,
        payload_cols: 1,
        distinct_per_col: 64,
        seed: 7,
    });
    let mut catalog = Catalog::new();
    catalog.register("t", Table::unsorted(rows));
    let q = LogicalPlan::scan("t").group_by(
        1,
        vec![Aggregate::Count, Aggregate::Sum(2), Aggregate::Max(2)],
    );
    sweep(c, "batched_group_by_dop", &catalog, &q, ROWS as u64);
}

/// Planned UNION ALL behind the exchange sandwich, batched vs row
/// (the §5 `planned_union_all_dop` workload).
fn bench_batched_set_op(c: &mut Criterion) {
    let (t1, t2) = intersect_tables(100_000, 7);
    let total = (t1.len() + t2.len()) as u64;
    let mut catalog = Catalog::new();
    catalog.register("l", Table::unsorted(t1));
    catalog.register("r", Table::unsorted(t2));
    let q = LogicalPlan::scan("l").set_op(LogicalPlan::scan("r"), SetOp::UnionAll);
    sweep(c, "batched_union_all_dop", &catalog, &q, total);
}

/// The planned Figure-5 intersect query, batched vs row (the §5
/// `fig5_planned_query_dop` workload).  `plan_intersect` builds its own
/// plan, so this one drives the config directly instead of [`sweep`].
fn bench_batched_figure5(c: &mut Criterion) {
    const ROWS_PER_TABLE: usize = 200_000;
    let (t1, t2) = intersect_tables(ROWS_PER_TABLE, 7);
    let catalog = catalog_unsorted(t1, t2);

    let run = |dop: usize, batch: Option<usize>| -> Vec<OvcRow> {
        let mut cfg = base_config().with_dop(dop).with_parallel_threshold(1);
        if let Some(b) = batch {
            cfg = cfg.with_batch_size(b);
        }
        let plan = plan_intersect(&catalog, cfg).expect("plans");
        let stats = Stats::new_shared();
        let options = ExecOptions {
            batch_size: batch,
            ..Default::default()
        };
        execute(&plan, &catalog, &stats, &options).into_coded()
    };
    let reference = run(1, None);
    for dop in THREADS {
        assert_eq!(run(dop, None), reference, "row dop={dop} must match");
        assert_eq!(
            run(dop, Some(BATCH)),
            reference,
            "batched dop={dop} must match serial rows and codes"
        );
    }

    let mut g = c.benchmark_group("batched_fig5_query_dop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * ROWS_PER_TABLE as u64));
    for dop in THREADS {
        g.bench_with_input(BenchmarkId::new("row", dop), &dop, |b, &d| {
            b.iter(|| run(d, None).len())
        });
        g.bench_with_input(BenchmarkId::new("batched", dop), &dop, |b, &d| {
            b.iter(|| run(d, Some(BATCH)).len())
        });
    }
    g.finish();
}

/// Reduced re-timing of each workload with plain medians, written to
/// `BENCH_batched.json` (schema in `ovc_bench::snapshot`) so the sweep
/// leaves machine-readable row-vs-batched data behind alongside
/// criterion's console output.
fn emit_snapshot(_c: &mut Criterion) {
    use ovc_bench::snapshot::{BenchEntry, BenchSnapshot};
    use std::time::Instant;

    const SNAP_ROWS: usize = 50_000;
    let (t1, t2) = intersect_tables(SNAP_ROWS, 7);
    let mut catalog = Catalog::new();
    catalog.register("l", Table::unsorted(t1));
    catalog.register("r", Table::unsorted(t2));
    let q = LogicalPlan::scan("l").set_op(LogicalPlan::scan("r"), SetOp::UnionAll);

    let median3 = |f: &mut dyn FnMut()| {
        let mut times: Vec<_> = (0..3)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect();
        times.sort();
        times[1]
    };

    let mut snap = BenchSnapshot::new("batched");
    for dop in THREADS {
        for (mode, batch) in [("row", None), ("batched", Some(BATCH))] {
            let wall = median3(&mut || {
                run_planned(&catalog, &q, dop, batch).len();
            });
            snap.push(
                BenchEntry::new("batched_union_all", format!("{mode}_dop_{dop}"))
                    .metric("rows_per_table", SNAP_ROWS as f64)
                    .metric("dop", dop as f64)
                    .metric("batch_rows", batch.unwrap_or(0) as f64)
                    .wall("wall", wall),
            );
        }
    }
    match snap.write_to(std::path::Path::new(".")) {
        Ok(path) => println!("snapshot: wrote {}", path.display()),
        Err(e) => eprintln!("snapshot: failed to write {}: {e}", snap.file_name()),
    }
}

criterion_group!(
    benches,
    bench_batched_group_by,
    bench_batched_set_op,
    bench_batched_figure5,
    emit_snapshot
);
criterion_main!(benches);
