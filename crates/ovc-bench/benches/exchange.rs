//! Hypothesis 1, order-preserving (merging) exchange (Section 4.10):
//! merging pre-sorted partition streams with the OVC tree-of-losers vs a
//! conventional binary-heap merge with full comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_baseline::merge_runs_plain;
use ovc_bench::workload::{table, TableSpec};
use ovc_core::{Row, Stats};
use ovc_sort::{merge_runs, Run};

const ROWS_PER_PART: usize = 50_000;
const KEY_COLS: usize = 4;

fn parts(n_parts: usize) -> Vec<Vec<Row>> {
    (0..n_parts)
        .map(|i| {
            let mut rows = table(TableSpec {
                rows: ROWS_PER_PART,
                key_cols: KEY_COLS,
                payload_cols: 1,
                distinct_per_col: 8,
                seed: i as u64,
            });
            rows.sort();
            rows
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_merge");
    g.sample_size(10);
    for n_parts in [4usize, 16] {
        let partitions = parts(n_parts);
        g.throughput(Throughput::Elements((n_parts * ROWS_PER_PART) as u64));

        g.bench_with_input(
            BenchmarkId::new("ovc_tree_of_losers", n_parts),
            &partitions,
            |b, partitions| {
                b.iter(|| {
                    let stats = Stats::new_shared();
                    let runs: Vec<Run> = partitions
                        .iter()
                        .map(|p| Run::from_sorted_rows(p.clone(), KEY_COLS))
                        .collect();
                    merge_runs(runs, KEY_COLS, &stats).count()
                })
            },
        );

        g.bench_with_input(
            BenchmarkId::new("plain_heap_merge", n_parts),
            &partitions,
            |b, partitions| {
                b.iter(|| {
                    let stats = Stats::new_shared();
                    merge_runs_plain(partitions.clone(), KEY_COLS, &stats).len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
