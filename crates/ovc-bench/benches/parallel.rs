//! Threads sweep over the Figure-5/Figure-6 workloads: serial vs parallel
//! execution of the same coded sort and the same planned intersect query,
//! threads ∈ {1, 2, 4, 8}.
//!
//! Equivalence (identical rows *and* codes across thread counts) is
//! asserted once before timing; the timed loops then measure the speedup
//! of parallel run generation behind the order-preserving exchange.
//!
//! Interpreting the sweep: run generation is ~3/4 of the sort's work and
//! parallelizes linearly, so with ≥ 4 cores the 4-thread row should run
//! ≳ 2× the 1-thread row (Amdahl over the serial final merge).  On a
//! single-core host (the sweep prints what it detects) the same numbers
//! degenerate into an *overhead* measurement: parallel within a few
//! percent of serial means the threading machinery costs ~nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_bench::workload::{intersect_tables, table, TableSpec};
use ovc_core::{OvcRow, Stats};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::figure5::{catalog_unsorted, plan_intersect};
use ovc_plan::{PlannerConfig, Preference};
use ovc_sort::parallel::parallel_sort;

/// The sort-heavy workload: many rows, several key columns, few distinct
/// values per column (the paper's evaluation data shape).
const SORT_ROWS: usize = 300_000;
const KEY_COLS: usize = 4;
const MEMORY_ROWS: usize = 16 * 1024;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_sort(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("(host reports {cores} core(s) — speedup requires > 1)");
    let rows = table(TableSpec {
        rows: SORT_ROWS,
        key_cols: KEY_COLS,
        payload_cols: 1,
        distinct_per_col: 8,
        seed: 42,
    });

    // Serial/parallel equivalence, asserted outside the timed region.
    let reference: Vec<OvcRow> = parallel_sort(
        rows.clone(),
        KEY_COLS,
        1,
        MEMORY_ROWS,
        64,
        &Stats::new_shared(),
    )
    .collect();
    for threads in THREADS {
        let out: Vec<OvcRow> = parallel_sort(
            rows.clone(),
            KEY_COLS,
            threads,
            MEMORY_ROWS,
            64,
            &Stats::new_shared(),
        )
        .collect();
        assert_eq!(out, reference, "threads={threads} must match serial");
    }

    let mut g = c.benchmark_group("parallel_sort_threads");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SORT_ROWS as u64));
    for threads in THREADS {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let stats = Stats::new_shared();
                parallel_sort(rows.clone(), KEY_COLS, t, MEMORY_ROWS, 64, &stats).count()
            })
        });
    }
    g.finish();
}

fn bench_parallel_figure5(c: &mut Criterion) {
    let (t1, t2) = intersect_tables(200_000, 7);
    let catalog = catalog_unsorted(t1, t2);
    let base = PlannerConfig::default()
        .with_memory_rows(MEMORY_ROWS)
        .with_preference(Preference::ForceSortBased);

    let run = |dop: usize| -> Vec<OvcRow> {
        let cfg = base.with_dop(dop).with_parallel_threshold(1);
        let plan = plan_intersect(&catalog, cfg).expect("plans");
        let stats = Stats::new_shared();
        execute(&plan, &catalog, &stats, &ExecOptions::default()).into_coded()
    };
    let reference = run(1);
    for dop in THREADS {
        assert_eq!(run(dop), reference, "dop={dop} must match serial");
    }

    let mut g = c.benchmark_group("fig5_planned_query_dop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * 200_000));
    for dop in THREADS {
        g.bench_with_input(BenchmarkId::from_parameter(dop), &dop, |b, &d| {
            b.iter(|| run(d).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_sort, bench_parallel_figure5);
criterion_main!(benches);
