//! Threads sweep over the Figure-5/Figure-6 workloads: serial vs parallel
//! execution of the same coded sort, the same planned intersect query,
//! and (since the group-by/set-op exchange enforcer) the same planned
//! group-by and union-all queries, threads ∈ {1, 2, 4, 8}.
//!
//! Equivalence (identical rows *and* codes across thread counts) is
//! asserted once before timing; the timed loops then measure the speedup
//! of parallel run generation behind the order-preserving exchange.
//!
//! Interpreting the sweep: run generation is ~3/4 of the sort's work and
//! parallelizes linearly, so with ≥ 4 cores the 4-thread row should run
//! ≳ 2× the 1-thread row (Amdahl over the serial final merge).  On a
//! single-core host (the sweep prints what it detects) the same numbers
//! degenerate into an *overhead* measurement: parallel within a few
//! percent of serial means the threading machinery costs ~nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_bench::workload::{intersect_tables, table, TableSpec};
use ovc_core::{OvcRow, Stats};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::figure5::{catalog_unsorted, plan_intersect};
use ovc_plan::{PlannerConfig, Preference};
use ovc_sort::parallel::parallel_sort;

/// The sort-heavy workload: many rows, several key columns, few distinct
/// values per column (the paper's evaluation data shape).
const SORT_ROWS: usize = 300_000;
const KEY_COLS: usize = 4;
const MEMORY_ROWS: usize = 16 * 1024;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_sort(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("(host reports {cores} core(s) — speedup requires > 1)");
    let rows = table(TableSpec {
        rows: SORT_ROWS,
        key_cols: KEY_COLS,
        payload_cols: 1,
        distinct_per_col: 8,
        seed: 42,
    });

    // Serial/parallel equivalence, asserted outside the timed region.
    let reference: Vec<OvcRow> = parallel_sort(
        rows.clone(),
        KEY_COLS,
        1,
        MEMORY_ROWS,
        64,
        &Stats::new_shared(),
    )
    .collect();
    for threads in THREADS {
        let out: Vec<OvcRow> = parallel_sort(
            rows.clone(),
            KEY_COLS,
            threads,
            MEMORY_ROWS,
            64,
            &Stats::new_shared(),
        )
        .collect();
        assert_eq!(out, reference, "threads={threads} must match serial");
    }

    let mut g = c.benchmark_group("parallel_sort_threads");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SORT_ROWS as u64));
    for threads in THREADS {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let stats = Stats::new_shared();
                parallel_sort(rows.clone(), KEY_COLS, t, MEMORY_ROWS, 64, &stats).count()
            })
        });
    }
    g.finish();
}

fn bench_parallel_figure5(c: &mut Criterion) {
    let (t1, t2) = intersect_tables(200_000, 7);
    let catalog = catalog_unsorted(t1, t2);
    let base = PlannerConfig::default()
        .with_memory_rows(MEMORY_ROWS)
        .with_preference(Preference::ForceSortBased);

    let run = |dop: usize| -> Vec<OvcRow> {
        let cfg = base.with_dop(dop).with_parallel_threshold(1);
        let plan = plan_intersect(&catalog, cfg).expect("plans");
        let stats = Stats::new_shared();
        execute(&plan, &catalog, &stats, &ExecOptions::default()).into_coded()
    };
    let reference = run(1);
    for dop in THREADS {
        assert_eq!(run(dop), reference, "dop={dop} must match serial");
    }

    let mut g = c.benchmark_group("fig5_planned_query_dop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * 200_000));
    for dop in THREADS {
        g.bench_with_input(BenchmarkId::from_parameter(dop), &dop, |b, &d| {
            b.iter(|| run(d).len())
        });
    }
    g.finish();
}

/// Planned group-by behind the exchange sandwich: sort (parallel run
/// generation) -> Exchange hash(group key) x dop -> partition-wise
/// grouping -> gathering merge.
fn bench_parallel_group_by(c: &mut Criterion) {
    use ovc_plan::{Aggregate, Catalog, LogicalPlan, Planner, Table};

    const ROWS: usize = 200_000;
    let rows = table(TableSpec {
        rows: ROWS,
        key_cols: 2,
        payload_cols: 1,
        distinct_per_col: 64,
        seed: 7,
    });
    let mut catalog = Catalog::new();
    catalog.register("t", Table::unsorted(rows));
    let q = LogicalPlan::scan("t").group_by(
        1,
        vec![Aggregate::Count, Aggregate::Sum(2), Aggregate::Max(2)],
    );
    let base = PlannerConfig::default()
        .with_memory_rows(MEMORY_ROWS)
        .with_preference(Preference::ForceSortBased);
    let run = |dop: usize| -> Vec<OvcRow> {
        let cfg = base.with_dop(dop).with_parallel_threshold(1);
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        let stats = Stats::new_shared();
        execute(&plan, &catalog, &stats, &ExecOptions::default()).into_coded()
    };
    let reference = run(1);
    for dop in THREADS {
        assert_eq!(run(dop), reference, "dop={dop} must match serial");
    }

    let mut g = c.benchmark_group("planned_group_by_dop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    for dop in THREADS {
        g.bench_with_input(BenchmarkId::from_parameter(dop), &dop, |b, &d| {
            b.iter(|| run(d).len())
        });
    }
    g.finish();
}

/// Planned UNION ALL behind the exchange sandwich: both inputs sorted,
/// hash-split on the full row, one set-op worker per partition pair,
/// gathering merge.
fn bench_parallel_set_op(c: &mut Criterion) {
    use ovc_plan::{Catalog, LogicalPlan, Planner, SetOp, Table};

    let (t1, t2) = intersect_tables(100_000, 7);
    let total = (t1.len() + t2.len()) as u64;
    let mut catalog = Catalog::new();
    catalog.register("l", Table::unsorted(t1));
    catalog.register("r", Table::unsorted(t2));
    let q = LogicalPlan::scan("l").set_op(LogicalPlan::scan("r"), SetOp::UnionAll);
    let base = PlannerConfig::default()
        .with_memory_rows(MEMORY_ROWS)
        .with_preference(Preference::ForceSortBased);
    let run = |dop: usize| -> Vec<OvcRow> {
        let cfg = base.with_dop(dop).with_parallel_threshold(1);
        let plan = Planner::new(&catalog, cfg).plan(&q).expect("plans");
        let stats = Stats::new_shared();
        execute(&plan, &catalog, &stats, &ExecOptions::default()).into_coded()
    };
    let reference = run(1);
    for dop in THREADS {
        assert_eq!(run(dop), reference, "dop={dop} must match serial");
    }

    let mut g = c.benchmark_group("planned_union_all_dop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(total));
    for dop in THREADS {
        g.bench_with_input(BenchmarkId::from_parameter(dop), &dop, |b, &d| {
            b.iter(|| run(d).len())
        });
    }
    g.finish();
}

/// Final stage of the sweep: re-time a reduced version of each workload
/// with plain medians and write `BENCH_parallel.json` (schema in
/// `ovc_bench::snapshot`), so the sweep leaves machine-readable data
/// behind alongside criterion's console output.  The environment stanza
/// records `single_core`, which is how a reader distinguishes a speedup
/// measurement from an overhead measurement.
fn emit_snapshot(_c: &mut Criterion) {
    use ovc_bench::snapshot::{BenchEntry, BenchSnapshot};
    use std::time::Instant;

    const SNAP_ROWS: usize = 50_000;
    let rows = table(TableSpec {
        rows: SNAP_ROWS,
        key_cols: KEY_COLS,
        payload_cols: 1,
        distinct_per_col: 8,
        seed: 42,
    });
    let (t1, t2) = intersect_tables(SNAP_ROWS, 7);
    let catalog = catalog_unsorted(t1, t2);
    let base = PlannerConfig::default()
        .with_memory_rows(MEMORY_ROWS)
        .with_preference(Preference::ForceSortBased);

    let median3 = |f: &mut dyn FnMut()| {
        let mut times: Vec<_> = (0..3)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect();
        times.sort();
        times[1]
    };

    let mut snap = BenchSnapshot::new("parallel");
    for threads in THREADS {
        let wall = median3(&mut || {
            let stats = Stats::new_shared();
            parallel_sort(rows.clone(), KEY_COLS, threads, MEMORY_ROWS, 64, &stats).count();
        });
        snap.push(
            BenchEntry::new("parallel_sort", format!("threads_{threads}"))
                .metric("rows", SNAP_ROWS as f64)
                .metric("threads", threads as f64)
                .wall("wall", wall),
        );
        let wall = median3(&mut || {
            let cfg = base.with_dop(threads).with_parallel_threshold(1);
            let plan = plan_intersect(&catalog, cfg).expect("plans");
            let stats = Stats::new_shared();
            execute(&plan, &catalog, &stats, &ExecOptions::default())
                .into_coded()
                .len();
        });
        snap.push(
            BenchEntry::new("fig5_planned_query", format!("dop_{threads}"))
                .metric("rows_per_table", SNAP_ROWS as f64)
                .metric("dop", threads as f64)
                .wall("wall", wall),
        );
    }
    match snap.write_to(std::path::Path::new(".")) {
        Ok(path) => println!("snapshot: wrote {}", path.display()),
        Err(e) => eprintln!("snapshot: failed to write {}: {e}", snap.file_name()),
    }
}

criterion_group!(
    benches,
    bench_parallel_sort,
    bench_parallel_figure5,
    bench_parallel_group_by,
    bench_parallel_set_op,
    emit_snapshot
);
criterion_main!(benches);
