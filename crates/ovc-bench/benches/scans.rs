//! Ordered scans as OVC sources (Section 4.11): b-tree scans, RLE
//! column-store scans, and LSM merged scans all produce codes; the
//! baseline derives codes from scratch row by row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_bench::workload::{table, TableSpec};
use ovc_core::{Row, Stats};
use ovc_storage::{BTree, LsmConfig, LsmForest, RleColumnStore};
use std::sync::Arc;

const ROWS: usize = 200_000;
const KEY_COLS: usize = 3;

fn sorted_rows() -> Vec<Row> {
    let mut rows = table(TableSpec {
        rows: ROWS,
        key_cols: KEY_COLS,
        payload_cols: 1,
        distinct_per_col: 16,
        seed: 6,
    });
    rows.sort();
    rows
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordered_scans");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    let rows = sorted_rows();

    let btree = BTree::bulk_load(rows.clone(), KEY_COLS, 256, 64);
    g.bench_function(BenchmarkId::new("btree_scan_stored_codes", ROWS), |b| {
        b.iter(|| btree.scan().count())
    });

    let rle = RleColumnStore::build(&rows, KEY_COLS);
    g.bench_function(BenchmarkId::new("rle_scan_free_codes", ROWS), |b| {
        b.iter(|| rle.scan().count())
    });

    let stats = Stats::new_shared();
    let mut forest = LsmForest::new(KEY_COLS, LsmConfig { fanout: 4 }, Arc::clone(&stats));
    for chunk in rows.chunks(ROWS / 16) {
        forest.ingest(chunk.to_vec());
    }
    g.bench_function(BenchmarkId::new("lsm_merged_scan", ROWS), |b| {
        b.iter(|| forest.scan().count())
    });

    g.bench_with_input(
        BenchmarkId::new("derive_codes_from_scratch", ROWS),
        &rows,
        |b, rows| {
            b.iter(|| {
                let stats = Stats::default();
                ovc_core::derive::derive_codes_counted(rows, KEY_COLS, &stats).len()
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
