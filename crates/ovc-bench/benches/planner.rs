//! Planner overhead bench: the Figure 5 workload, planner-produced vs
//! hand-written.
//!
//! The planner must be a zero-cost abstraction on the hot path: a
//! planner-produced plan lowers onto exactly the operators the
//! hand-written pipelines call, so `plan + execute` should match the
//! hand-written wall time, and `plan` alone should be microseconds.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_baseline::hash_intersect_distinct;
use ovc_bench::workload::intersect_tables;
use ovc_core::Stats;
use ovc_exec::plans::{sort_intersect_distinct, IntersectConfig};
use ovc_plan::exec::{execute, ExecOptions};
use ovc_plan::figure5::{catalog_sorted, catalog_unsorted, intersect_distinct_query};
use ovc_plan::{Planner, PlannerConfig, Preference};
use ovc_sort::MemoryRunStorage;

const ROWS: usize = 100_000;

fn bench(c: &mut Criterion) {
    let (t1, t2) = intersect_tables(ROWS, 42);
    let mem = ROWS / 10;

    let mut g = c.benchmark_group("planner_fig5");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * ROWS as u64));

    // Hand-written sort-based plan (the seed's hard-wired pipeline).
    g.bench_with_input(
        BenchmarkId::new("hand_sort_plan", ROWS),
        &(t1.clone(), t2.clone()),
        |b, (t1, t2)| {
            b.iter(|| {
                let stats = Stats::new_shared();
                let mut s1 = MemoryRunStorage::new(Arc::clone(&stats));
                let mut s2 = MemoryRunStorage::new(Arc::clone(&stats));
                let cfg = IntersectConfig {
                    key_len: 1,
                    memory_rows: mem,
                    fan_in: 64,
                };
                sort_intersect_distinct(t1.clone(), t2.clone(), cfg, &mut s1, &mut s2, &stats).len()
            })
        },
    );

    // Planner-produced sort-based plan over the same unsorted inputs.
    let unsorted_cat = catalog_unsorted(t1.clone(), t2.clone());
    let sort_cfg = PlannerConfig::default()
        .with_memory_rows(mem)
        .with_preference(Preference::ForceSortBased);
    g.bench_function(BenchmarkId::new("planned_sort_plan", ROWS), |b| {
        b.iter(|| {
            let plan = Planner::new(&unsorted_cat, sort_cfg)
                .plan(&intersect_distinct_query())
                .expect("plans");
            let stats = Stats::new_shared();
            execute(&plan, &unsorted_cat, &stats, &ExecOptions::default())
                .into_rows()
                .len()
        })
    });

    // Hand-written hash-based plan.
    g.bench_with_input(
        BenchmarkId::new("hand_hash_plan", ROWS),
        &(t1.clone(), t2.clone()),
        |b, (t1, t2)| {
            b.iter(|| {
                let stats = Stats::new_shared();
                hash_intersect_distinct(t1.clone(), t2.clone(), mem, &stats).len()
            })
        },
    );

    // Planner-produced hash-based plan.
    let hash_cfg = PlannerConfig::default()
        .with_memory_rows(mem)
        .with_preference(Preference::ForceHashBased);
    g.bench_function(BenchmarkId::new("planned_hash_plan", ROWS), |b| {
        b.iter(|| {
            let plan = Planner::new(&unsorted_cat, hash_cfg)
                .plan(&intersect_distinct_query())
                .expect("plans");
            let stats = Stats::new_shared();
            execute(&plan, &unsorted_cat, &stats, &ExecOptions::default())
                .into_rows()
                .len()
        })
    });

    // Pre-sorted coded inputs: the elided-sort plan streams straight
    // through the merge — the paper's interesting-orderings payoff.
    let sorted_cat = catalog_sorted(t1, t2);
    let auto_cfg = PlannerConfig::default().with_memory_rows(mem);
    g.bench_function(BenchmarkId::new("planned_elided_sorts", ROWS), |b| {
        b.iter(|| {
            let plan = Planner::new(&sorted_cat, auto_cfg)
                .plan(&intersect_distinct_query())
                .expect("plans");
            let stats = Stats::new_shared();
            execute(&plan, &sorted_cat, &stats, &ExecOptions::default())
                .into_rows()
                .len()
        })
    });
    g.finish();

    // Planning alone: must be microseconds, independent of table size.
    let mut g = c.benchmark_group("planner_overhead");
    g.sample_size(20);
    g.bench_function(BenchmarkId::new("plan_only", ROWS), |b| {
        b.iter(|| {
            Planner::new(
                &unsorted_cat,
                PlannerConfig::default().with_memory_rows(mem),
            )
            .plan(&intersect_distinct_query())
            .expect("plans")
            .nodes()
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
