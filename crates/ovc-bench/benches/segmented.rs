//! Hypothesis 1, segmentation (Section 4.3): re-sorting a stream from
//! (A, B) to (A, C) order by segments — boundaries found by code
//! inspection — vs a full re-sort of the whole stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_core::{Row, Stats, VecStream};
use ovc_sort::{sort_rows_ovc, SegmentedSort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const ROWS: usize = 300_000;

fn make_input(segments: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(9);
    let mut rows: Vec<Row> = (0..ROWS)
        .map(|_| {
            Row::new(vec![
                rng.gen_range(0..segments),
                rng.gen_range(0..1000u64),
                rng.gen_range(0..1000u64),
            ])
        })
        .collect();
    rows.sort_by(|x, y| (x.cols()[0], x.cols()[2]).cmp(&(y.cols()[0], y.cols()[2])));
    rows
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmented_sort");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    for segments in [16u64, 256] {
        let rows = make_input(segments);
        g.bench_with_input(
            BenchmarkId::new("segmented_ovc", segments),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let stats = Stats::new_shared();
                    let stream = VecStream::from_sorted_rows(rows.clone(), 1);
                    SegmentedSort::new(stream, 1, 2, Arc::clone(&stats)).count()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("full_resort", segments),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let stats = Stats::new_shared();
                    sort_rows_ovc(rows.clone(), 2, &stats).len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
