//! The tree-of-losers priority queue itself (Section 3): run generation by
//! merging single-row runs, OVC vs quicksort, across key widths — the
//! wider the key and the fewer distinct values, the more the codes save.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_bench::workload::{table, TableSpec};
use ovc_core::Stats;
use ovc_sort::{sort_rows_ovc, sort_rows_quicksort};

const ROWS: usize = 100_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_generation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    for key_cols in [2usize, 8] {
        let rows = table(TableSpec {
            rows: ROWS,
            key_cols,
            payload_cols: 0,
            distinct_per_col: 4,
            seed: 5,
        });
        g.bench_with_input(
            BenchmarkId::new("ovc_priority_queue", key_cols),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let stats = Stats::new_shared();
                    sort_rows_ovc(rows.clone(), key_cols, &stats).len()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("quicksort_full_compare", key_cols),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let stats = Stats::new_shared();
                    sort_rows_quicksort(rows.clone(), key_cols, &stats).len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
