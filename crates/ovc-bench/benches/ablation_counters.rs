//! Counter-based ablation (custom harness, not Criterion): prints the
//! comparison and spill counters behind the paper's analytical claims —
//! the N×K bound with no log N factor (Section 3), the per-operator
//! comparison budget of Section 4, and the Figure 6 spill shape.
//!
//! Run with: `cargo bench -p ovc-bench --bench ablation_counters`

use std::sync::Arc;

use ovc_baseline::{external_sort_plain, hash_intersect_distinct};
use ovc_bench::workload::{grouped_sorted_table, intersect_tables, table, TableSpec};
use ovc_core::{Stats, VecStream};
use ovc_exec::plans::{sort_intersect_distinct, IntersectConfig};
use ovc_exec::{Aggregate, Dedup, GroupAggregate, JoinType, MergeJoin};
use ovc_sort::{external_sort_collect, sort_rows_ovc, MemoryRunStorage, SortConfig};

fn main() {
    println!("# Ablation: comparison counters (the claims behind the figures)\n");

    println!("## N x K bound, no log N factor (Section 3)\n");
    println!(
        "{:>10} {:>4} {:>14} {:>10} {:>16} {:>12}",
        "N", "K", "ovc col-cmps", "N*K", "plain col-cmps", "plain/ovc"
    );
    for exp in 0..5 {
        let n = 25_000usize << exp;
        let k = 3;
        let rows = table(TableSpec {
            rows: n,
            key_cols: k,
            payload_cols: 0,
            distinct_per_col: 4,
            seed: 1,
        });
        let s_ovc = Stats::new_shared();
        let _ = sort_rows_ovc(rows.clone(), k, &s_ovc);
        let s_plain = Stats::new_shared();
        let _ = ovc_baseline::sort_rows_plain(rows, k, &s_plain);
        println!(
            "{:>10} {:>4} {:>14} {:>10} {:>16} {:>12.1}",
            n,
            k,
            s_ovc.col_value_cmps(),
            n * k,
            s_plain.col_value_cmps(),
            s_plain.col_value_cmps() as f64 / s_ovc.col_value_cmps().max(1) as f64
        );
    }

    println!("\n## External sort: column comparisons per strategy (N = 400k, K = 4)\n");
    let rows = table(TableSpec {
        rows: 400_000,
        key_cols: 4,
        payload_cols: 1,
        distinct_per_col: 8,
        seed: 2,
    });
    let s = Stats::new_shared();
    let _ = external_sort_collect(rows.clone(), SortConfig::new(4, 40_000), &s);
    println!(
        "{:<28} col-cmps {:>12}  code-cmps {:>12}",
        "ovc external sort",
        s.col_value_cmps(),
        s.ovc_cmps()
    );
    let s = Stats::new_shared();
    let _ = external_sort_plain(rows, 4, 40_000, 128, &s);
    println!(
        "{:<28} col-cmps {:>12}  code-cmps {:>12}",
        "plain external sort",
        s.col_value_cmps(),
        s.ovc_cmps()
    );

    println!("\n## In-stream aggregation boundary tests (Figure 4's mechanism, N = 1M)\n");
    let rows = grouped_sorted_table(1_000_000, 4, 10, 3);
    let s = Stats::new_shared();
    let input = VecStream::from_sorted_rows(rows.clone(), 4);
    let _ = GroupAggregate::new(input, 2, vec![Aggregate::Count], Arc::clone(&s)).count();
    println!(
        "{:<28} col-cmps {:>12}",
        "ovc offset test",
        s.col_value_cmps()
    );
    let s = Stats::new_shared();
    let input = VecStream::from_sorted_rows(rows, 4);
    let _ = ovc_baseline::GroupFullCompare::new(input, 2, vec![Aggregate::Count], Arc::clone(&s))
        .count();
    println!(
        "{:<28} col-cmps {:>12}",
        "full column compare",
        s.col_value_cmps()
    );

    println!("\n## Merge join + dedup pipeline budget (2 x 200k rows, K = 2)\n");
    let mut l = table(TableSpec {
        rows: 200_000,
        key_cols: 2,
        payload_cols: 1,
        distinct_per_col: 64,
        seed: 4,
    });
    let mut r = table(TableSpec {
        rows: 200_000,
        key_cols: 2,
        payload_cols: 1,
        distinct_per_col: 64,
        seed: 5,
    });
    l.sort();
    r.sort();
    let s = Stats::new_shared();
    let ls = VecStream::from_sorted_rows(l, 2);
    let rs = VecStream::from_sorted_rows(r, 2);
    let join = MergeJoin::new(ls, rs, 2, JoinType::Inner, 3, 3, Arc::clone(&s));
    let n_out = Dedup::new(join).count();
    println!(
        "join+dedup output rows {n_out}; col-cmps {} (bound 2*N*K = {})",
        s.col_value_cmps(),
        2 * 200_000 * 2
    );

    println!("\n## Figure 6 spill shape (rows spilled; input 2 x N, memory N/10)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "N", "hash plan", "sort plan", "ratio"
    );
    for n in [50_000usize, 200_000] {
        let (t1, t2) = intersect_tables(n, 6);
        let hs = Stats::new_shared();
        let _ = hash_intersect_distinct(t1.clone(), t2.clone(), n / 10, &hs);
        let ss = Stats::new_shared();
        let mut s1 = MemoryRunStorage::new(Arc::clone(&ss));
        let mut s2 = MemoryRunStorage::new(Arc::clone(&ss));
        let cfg = IntersectConfig {
            key_len: 1,
            memory_rows: n / 10,
            fan_in: 128,
        };
        let _ = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &ss);
        println!(
            "{:>10} {:>14} {:>14} {:>8.2}",
            n,
            hs.rows_spilled(),
            ss.rows_spilled(),
            hs.rows_spilled() as f64 / ss.rows_spilled().max(1) as f64
        );
    }
}
