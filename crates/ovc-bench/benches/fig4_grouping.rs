//! Figure 4: "Group boundaries from offset-value codes."
//!
//! In-stream aggregation over 1,000,000 sorted rows; the ratio of input
//! rows to output groups varies.  OVC detects boundaries with one integer
//! test per row; the baseline compares the grouping columns in full.
//! The `figures` binary prints the full 7-point sweep of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_baseline::GroupFullCompare;
use ovc_bench::workload::grouped_sorted_table;
use ovc_core::{Stats, VecStream};
use ovc_exec::{Aggregate, GroupAggregate};
use std::sync::Arc;

const ROWS: usize = 1_000_000;
const KEY_COLS: usize = 8;
const GROUP_LEN: usize = 6;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_grouping");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));

    for ratio in [1usize, 10, 100] {
        let rows = grouped_sorted_table(ROWS, KEY_COLS, ratio, 4);

        g.bench_with_input(
            BenchmarkId::new("ovc_offset_test", ratio),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let input = VecStream::from_sorted_rows(rows.clone(), KEY_COLS);
                    GroupAggregate::new(
                        input,
                        GROUP_LEN,
                        vec![Aggregate::Count],
                        Stats::new_shared(),
                    )
                    .count()
                })
            },
        );

        g.bench_with_input(
            BenchmarkId::new("full_column_compare", ratio),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let stats = Stats::new_shared();
                    let input = VecStream::from_sorted_rows(rows.clone(), KEY_COLS);
                    GroupFullCompare::new(
                        input,
                        GROUP_LEN,
                        vec![Aggregate::Count],
                        Arc::clone(&stats),
                    )
                    .count()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
