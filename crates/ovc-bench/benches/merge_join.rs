//! Hypothesis 1, merge join: the OVC merge join (codes decide merge
//! comparisons, codes produced for free) vs a conventional merge join
//! that compares join keys column by column and derives output codes the
//! expensive way ("comparing an operator's output row-by-row,
//! column-by-column").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_bench::workload::{table, TableSpec};
use ovc_core::compare::{compare_keys_counted, derive_code};
use ovc_core::{Ovc, Row, Stats, VecStream};
use ovc_exec::{JoinType, MergeJoin};
use std::cmp::Ordering;
use std::sync::Arc;

const ROWS: usize = 200_000;
const KEY_COLS: usize = 3;

/// The pre-OVC method: plain merge join on sorted rows, with output codes
/// re-derived against each output's predecessor.
fn plain_merge_join_with_code_rederivation(
    l: &[Row],
    r: &[Row],
    join_len: usize,
    stats: &Arc<Stats>,
) -> usize {
    let mut out_count = 0usize;
    let mut prev_out: Option<Row> = None;
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match compare_keys_counted(l[i].key(join_len), r[j].key(join_len), stats) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Gather both groups.
                let key = l[i].key(join_len).to_vec();
                let li = i;
                while i < l.len()
                    && compare_keys_counted(l[i].key(join_len), &key, stats) == Ordering::Equal
                {
                    i += 1;
                }
                let rj = j;
                while j < r.len()
                    && compare_keys_counted(r[j].key(join_len), &key, stats) == Ordering::Equal
                {
                    j += 1;
                }
                for lrow in &l[li..i] {
                    for rrow in &r[rj..j] {
                        let mut cols = lrow.cols().to_vec();
                        cols.extend_from_slice(&rrow.cols()[join_len..]);
                        let out = Row::new(cols);
                        // Output code the expensive way.
                        let _code: Ovc = match &prev_out {
                            None => Ovc::initial(out.key(join_len)),
                            Some(p) => derive_code(p.key(join_len), out.key(join_len), stats),
                        };
                        prev_out = Some(out);
                        out_count += 1;
                    }
                }
            }
        }
    }
    out_count
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_join");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * ROWS as u64));
    let spec = |seed| TableSpec {
        rows: ROWS,
        key_cols: KEY_COLS,
        payload_cols: 1,
        distinct_per_col: 24,
        seed,
    };
    let mut l = table(spec(1));
    let mut r = table(spec(2));
    l.sort();
    r.sort();

    g.bench_with_input(
        BenchmarkId::new("ovc_merge_join", ROWS),
        &(l.clone(), r.clone()),
        |b, (l, r)| {
            b.iter(|| {
                let stats = Stats::new_shared();
                let ls = VecStream::from_sorted_rows(l.clone(), KEY_COLS);
                let rs = VecStream::from_sorted_rows(r.clone(), KEY_COLS);
                MergeJoin::new(
                    ls,
                    rs,
                    KEY_COLS,
                    JoinType::Inner,
                    KEY_COLS + 1,
                    KEY_COLS + 1,
                    stats,
                )
                .count()
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("plain_merge_join_rederive", ROWS),
        &(l, r),
        |b, (l, r)| {
            b.iter(|| {
                let stats = Stats::new_shared();
                plain_merge_join_with_code_rederivation(l, r, KEY_COLS, &stats)
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
