//! Figure 6: "Performance of 'intersect distinct' query plans."
//!
//! Hash-based plan (two spilling hash aggregations + Grace hash join) vs
//! sort-based plan (two in-sort aggregations + merge join consuming OVCs),
//! with memory a tenth of the input as in the paper.  Absolute numbers
//! scale down from the paper's 100M rows; the shape is the claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_baseline::hash_intersect_distinct;
use ovc_bench::workload::intersect_tables;
use ovc_core::Stats;
use ovc_exec::plans::{sort_intersect_distinct, IntersectConfig};
use ovc_sort::MemoryRunStorage;
use std::sync::Arc;

const ROWS: usize = 400_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_intersect");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * ROWS as u64));
    let (t1, t2) = intersect_tables(ROWS, 42);
    let mem = ROWS / 10;

    g.bench_with_input(
        BenchmarkId::new("hash_plan", ROWS),
        &(t1.clone(), t2.clone()),
        |b, (t1, t2)| {
            b.iter(|| {
                let stats = Stats::new_shared();
                hash_intersect_distinct(t1.clone(), t2.clone(), mem, &stats).len()
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("sort_plan_ovc", ROWS),
        &(t1, t2),
        |b, (t1, t2)| {
            b.iter(|| {
                let stats = Stats::new_shared();
                let mut s1 = MemoryRunStorage::new(Arc::clone(&stats));
                let mut s2 = MemoryRunStorage::new(Arc::clone(&stats));
                let cfg = IntersectConfig {
                    key_len: 1,
                    memory_rows: mem,
                    fan_in: 128,
                };
                sort_intersect_distinct(t1.clone(), t2.clone(), cfg, &mut s1, &mut s2, &stats).len()
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
