//! Hypothesis 1, sorting: external merge sort with offset-value coding vs
//! the conventional sort (quicksorted runs, heap merge, full comparisons),
//! plus the replacement-selection variant and the flat-to-run path (the
//! sort without the final boxed-row materialization).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovc_baseline::external_sort_plain;
use ovc_bench::workload::{table, TableSpec};
use ovc_core::{SortSpec, Stats};
use ovc_sort::{
    external_sort_collect, external_sort_spec_to_run, MemoryRunStorage, RunGenStrategy, SortConfig,
};

const ROWS: usize = 300_000;
const KEY_COLS: usize = 4;
const MEMORY: usize = 30_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_external");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    let spec = TableSpec {
        rows: ROWS,
        key_cols: KEY_COLS,
        payload_cols: 1,
        distinct_per_col: 8,
        seed: 7,
    };
    let rows = table(spec);

    g.bench_with_input(
        BenchmarkId::new("ovc_tree_of_losers", ROWS),
        &rows,
        |b, rows| {
            b.iter(|| {
                let stats = Stats::new_shared();
                external_sort_collect(rows.clone(), SortConfig::new(KEY_COLS, MEMORY), &stats).len()
            })
        },
    );

    // The same sort kept flat end-to-end: output is one contiguous run
    // (values + codes), no per-row boxed materialization at the boundary.
    g.bench_with_input(
        BenchmarkId::new("ovc_flat_to_run", ROWS),
        &rows,
        |b, rows| {
            b.iter(|| {
                let stats = Stats::new_shared();
                let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
                external_sort_spec_to_run(
                    rows.clone(),
                    SortConfig::new(KEY_COLS, MEMORY),
                    &SortSpec::asc(KEY_COLS),
                    &mut storage,
                    &stats,
                )
                .len()
            })
        },
    );

    g.bench_with_input(BenchmarkId::new("plain_no_ovc", ROWS), &rows, |b, rows| {
        b.iter(|| {
            let stats = Stats::new_shared();
            external_sort_plain(rows.clone(), KEY_COLS, MEMORY, 128, &stats).len()
        })
    });

    g.bench_with_input(
        BenchmarkId::new("replacement_selection", ROWS),
        &rows,
        |b, rows| {
            b.iter(|| {
                let stats = Stats::new_shared();
                let cfg = SortConfig::new(KEY_COLS, MEMORY)
                    .with_strategy(RunGenStrategy::ReplacementSelection);
                external_sort_collect(rows.clone(), cfg, &stats).len()
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
