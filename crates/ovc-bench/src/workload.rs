//! Synthetic workloads matching the paper's evaluation data.

use ovc_core::Row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A table specification: many rows, several 8-byte integer key columns
/// with few distinct values, optional payload columns.
#[derive(Clone, Copy, Debug)]
pub struct TableSpec {
    /// Row count.
    pub rows: usize,
    /// Number of key columns.
    pub key_cols: usize,
    /// Number of payload columns.
    pub payload_cols: usize,
    /// Distinct values per key column ("only a few distinct values").
    pub distinct_per_col: u64,
    /// RNG seed (all workloads are deterministic).
    pub seed: u64,
}

impl TableSpec {
    /// A convenient default shape.
    pub fn new(rows: usize, key_cols: usize) -> Self {
        TableSpec {
            rows,
            key_cols,
            payload_cols: 1,
            distinct_per_col: 8,
            seed: 42,
        }
    }
}

/// Generate an unsorted table.
pub fn table(spec: TableSpec) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.rows)
        .map(|_| {
            let mut cols = Vec::with_capacity(spec.key_cols + spec.payload_cols);
            for _ in 0..spec.key_cols {
                cols.push(rng.gen_range(0..spec.distinct_per_col));
            }
            for _ in 0..spec.payload_cols {
                cols.push(rng.gen::<u32>() as u64);
            }
            Row::new(cols)
        })
        .collect()
}

/// Generate a *sorted* table whose ratio of input rows to distinct keys is
/// exactly `ratio` (Figure 4's x-axis: "a ratio of 100 indicates that on
/// average 100 input rows contribute to each output row").
///
/// Keys have `key_cols` columns; each column's domain is kept as small as
/// possible while still providing enough distinct key combinations.
pub fn grouped_sorted_table(rows: usize, key_cols: usize, ratio: usize, seed: u64) -> Vec<Row> {
    assert!(ratio >= 1 && key_cols >= 1);
    let groups = (rows / ratio).max(1);
    // Smallest per-column domain whose key space covers `groups`.
    let mut base = 2u64;
    while base.pow(key_cols as u32) < groups as u64 {
        base += 1;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Distinct keys: mixed-radix digits of g, permuted within the domain
    // by a base-coprime multiplier so they look like data, not counters.
    let mut mult = 0x9E37_79B9u64 % base;
    while mult == 0 || gcd(mult, base) != 1 {
        mult = mult % base + 1;
    }
    let spread = |d: u64| -> u64 { (d * mult) % base };
    let mut out = Vec::with_capacity(rows);
    for g in 0..groups {
        let mut digits = Vec::with_capacity(key_cols);
        let mut x = g as u64;
        for _ in 0..key_cols {
            digits.push(spread(x % base));
            x /= base;
        }
        digits.reverse();
        let copies = if g + 1 == groups {
            rows - out.len()
        } else {
            ratio
        };
        for _ in 0..copies {
            let mut cols = digits.clone();
            cols.push(rng.gen::<u32>() as u64); // payload
            out.push(Row::new(cols));
        }
    }
    out.sort();
    out
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Generate the Figure 6 intersect inputs: two tables of single-column
/// rows over a domain sized so a meaningful fraction intersects.
pub fn intersect_tables(rows: usize, seed: u64) -> (Vec<Row>, Vec<Row>) {
    let domain = (rows as u64).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| -> Vec<Row> {
        (0..rows)
            .map(|_| Row::new(vec![rng.gen_range(0..domain)]))
            .collect()
    };
    (gen(&mut rng), gen(&mut rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn table_shape() {
        let rows = table(TableSpec::new(100, 3));
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| r.width() == 4));
        assert!(rows.iter().all(|r| r.key(3).iter().all(|&v| v < 8)));
    }

    #[test]
    fn grouped_table_has_exact_ratio() {
        for ratio in [1usize, 2, 5, 10, 100] {
            let rows = grouped_sorted_table(10_000, 4, ratio, 1);
            assert_eq!(rows.len(), 10_000);
            let distinct: BTreeSet<Vec<u64>> = rows.iter().map(|r| r.key(4).to_vec()).collect();
            let expect = (10_000 / ratio).max(1);
            assert_eq!(distinct.len(), expect, "ratio {ratio}");
            assert!(ovc_core::derive::is_sorted(&rows, 4));
        }
    }

    #[test]
    fn intersect_tables_overlap() {
        let (a, b) = intersect_tables(1000, 2);
        let sa: BTreeSet<u64> = a.iter().map(|r| r.cols()[0]).collect();
        let sb: BTreeSet<u64> = b.iter().map(|r| r.cols()[0]).collect();
        assert!(sa.intersection(&sb).count() > 100);
    }
}
