//! # ovc-bench — workloads and harness support for the paper's evaluation
//!
//! Section 6 of the paper: "Test data are synthetic yet similar to the
//! actual data in our daily production web analysis with many rows and
//! many key columns.  Each key column is an 8-byte integer with only a
//! few distinct values."  The [`workload`] module generates exactly that
//! data shape, parameterized the way the figures sweep it; [`snapshot`]
//! gives the figure binaries a machine-readable output channel
//! (`BENCH_<name>.json`, schema-validated in CI).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod snapshot;
pub mod workload;
