//! Machine-readable bench snapshots: `BENCH_<name>.json`.
//!
//! The figure binaries and benches print human-readable tables; CI and
//! regression tooling need the same numbers as data.  This module is a
//! self-contained JSON layer (this workspace builds without crates.io,
//! so no serde): a [`Json`] value type with a writer *and* a parser, the
//! [`BenchSnapshot`] builder the binaries use, and [`validate_snapshot`]
//! — the schema check CI runs against every emitted file.
//!
//! ## Snapshot schema (`schema_version` 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "figures",
//!   "environment": {
//!     "available_parallelism": 1,
//!     "single_core": true,
//!     "debug_assertions": false,
//!     "rustc": "rustc 1.99.0 (...)",
//!     "os": "linux",
//!     "arch": "x86_64"
//!   },
//!   "entries": [
//!     { "group": "figure_6", "label": "sort_plan",
//!       "metrics": { "wall_ns": 12345.0, "rows_spilled": 2000.0 } }
//!   ]
//! }
//! ```
//!
//! Every metric is a JSON number (f64 — exact for the counter ranges
//! involved).  The `environment` stanza exists so a snapshot is
//! meaningless-proof: a single-core container or a debug build is
//! recorded in the file itself, not remembered out of band (this repo's
//! dev container has one core, where parallel sweeps measure overhead,
//! not speedup).

use std::fmt::Write as _;
use std::time::Duration;

/// A JSON value.  Object member order is preserved (insertion order),
/// which keeps emitted snapshots diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                let pad = "  ".repeat(depth + 1);
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad);
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                let pad = "  ".repeat(depth + 1);
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the subset this module emits: no
    /// scientific-notation requirement on the writer side, but the
    /// parser accepts standard number syntax).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                // Non-empty: the `Some(_)` peek above saw a byte here.
                let Some(c) = rest.chars().next() else {
                    return Err("truncated string".into());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| format!("invalid number at byte {start}"))
}

/// The `environment` stanza: everything needed to judge whether two
/// snapshots are comparable.
#[derive(Clone, Debug)]
pub struct Environment {
    /// `std::thread::available_parallelism()` at snapshot time.
    pub available_parallelism: usize,
    /// `available_parallelism == 1` — parallel sweeps on such a host
    /// measure coordination overhead, not speedup.
    pub single_core: bool,
    /// Was the binary compiled with debug assertions (a debug profile)?
    pub debug_assertions: bool,
    /// `rustc --version` output, when the compiler is on `PATH`.
    pub rustc: Option<String>,
    /// Target OS.
    pub os: String,
    /// Target architecture.
    pub arch: String,
}

impl Environment {
    /// Probe the current process's environment.
    pub fn capture() -> Environment {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let rustc = std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string());
        Environment {
            available_parallelism: parallelism,
            single_core: parallelism == 1,
            debug_assertions: cfg!(debug_assertions),
            rustc,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "available_parallelism".into(),
                Json::Num(self.available_parallelism as f64),
            ),
            ("single_core".into(), Json::Bool(self.single_core)),
            ("debug_assertions".into(), Json::Bool(self.debug_assertions)),
            (
                "rustc".into(),
                match &self.rustc {
                    Some(v) => Json::Str(v.clone()),
                    None => Json::Null,
                },
            ),
            ("os".into(), Json::Str(self.os.clone())),
            ("arch".into(), Json::Str(self.arch.clone())),
        ])
    }
}

/// One measured data point: a `(group, label)` name plus named metrics.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Which table/figure/sweep this point belongs to.
    pub group: String,
    /// The point within the group (parameter setting, plan name, …).
    pub label: String,
    /// Named measurements, insertion order preserved.
    pub metrics: Vec<(String, f64)>,
}

impl BenchEntry {
    /// An entry with no metrics yet.
    pub fn new(group: impl Into<String>, label: impl Into<String>) -> BenchEntry {
        BenchEntry {
            group: group.into(),
            label: label.into(),
            metrics: Vec::new(),
        }
    }

    /// Append a named metric.
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> BenchEntry {
        self.metrics.push((name.into(), value));
        self
    }

    /// Append a wall time as `<name>_ns`.
    pub fn wall(self, name: &str, d: Duration) -> BenchEntry {
        self.metric(format!("{name}_ns"), d.as_nanos() as f64)
    }
}

/// Version stamped into every snapshot; bump when the shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A full `BENCH_<name>.json` document under construction.
#[derive(Clone, Debug)]
pub struct BenchSnapshot {
    /// Snapshot name (the `<name>` in the file name).
    pub name: String,
    /// Environment at capture time.
    pub environment: Environment,
    /// Measured points, in emission order.
    pub entries: Vec<BenchEntry>,
}

impl BenchSnapshot {
    /// A snapshot named `name`, capturing the current environment.
    pub fn new(name: impl Into<String>) -> BenchSnapshot {
        BenchSnapshot {
            name: name.into(),
            environment: Environment::capture(),
            entries: Vec::new(),
        }
    }

    /// Record one entry.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// The snapshot as a [`Json`] document (schema above).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("name".into(), Json::Str(self.name.clone())),
            ("environment".into(), self.environment.to_json()),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("group".into(), Json::Str(e.group.clone())),
                                ("label".into(), Json::Str(e.label.clone())),
                                (
                                    "metrics".into(),
                                    Json::Obj(
                                        e.metrics
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The file name this snapshot is written under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Write `BENCH_<name>.json` into `dir`, returning the path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }
}

/// Validate a parsed snapshot document against the documented schema
/// (see the module docs).  Returns the first violation found.
pub fn validate_snapshot(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing numeric `schema_version`")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    doc.get("name")
        .and_then(Json::as_str)
        .ok_or("missing string `name`")?;
    let env = doc.get("environment").ok_or("missing `environment`")?;
    env.get("available_parallelism")
        .and_then(Json::as_num)
        .ok_or("environment: missing numeric `available_parallelism`")?;
    env.get("single_core")
        .and_then(Json::as_bool)
        .ok_or("environment: missing boolean `single_core`")?;
    env.get("debug_assertions")
        .and_then(Json::as_bool)
        .ok_or("environment: missing boolean `debug_assertions`")?;
    match env.get("rustc") {
        Some(Json::Str(_)) | Some(Json::Null) => {}
        _ => return Err("environment: `rustc` must be string or null".into()),
    }
    env.get("os")
        .and_then(Json::as_str)
        .ok_or("environment: missing string `os`")?;
    env.get("arch")
        .and_then(Json::as_str)
        .ok_or("environment: missing string `arch`")?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing array `entries`")?;
    for (i, entry) in entries.iter().enumerate() {
        entry
            .get("group")
            .and_then(Json::as_str)
            .ok_or(format!("entries[{i}]: missing string `group`"))?;
        entry
            .get("label")
            .and_then(Json::as_str)
            .ok_or(format!("entries[{i}]: missing string `label`"))?;
        match entry.get("metrics") {
            Some(Json::Obj(metrics)) => {
                for (k, v) in metrics {
                    if v.as_num().is_none() {
                        return Err(format!("entries[{i}]: metric `{k}` is not a number"));
                    }
                }
            }
            _ => return Err(format!("entries[{i}]: missing object `metrics`")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let doc = Json::Obj(vec![
            ("s".into(), Json::Str("a \"quoted\"\nline\t\\".into())),
            (
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)]),
            ),
            ("b".into(), Json::Bool(true)),
            ("n".into(), Json::Null),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut out = String::new();
        write_num(&mut out, 1234567.0);
        assert_eq!(out, "1234567");
        out.clear();
        write_num(&mut out, 0.5);
        assert_eq!(out, "0.5");
    }

    #[test]
    fn snapshot_emits_valid_schema() {
        let mut snap = BenchSnapshot::new("unit");
        snap.push(
            BenchEntry::new("g", "l")
                .metric("rows", 100.0)
                .wall("sort", Duration::from_micros(250)),
        );
        let text = snap.to_json().to_pretty();
        let parsed = Json::parse(&text).unwrap();
        validate_snapshot(&parsed).unwrap();
        assert_eq!(snap.file_name(), "BENCH_unit.json");
        let entry = &parsed.get("entries").unwrap().as_arr().unwrap()[0];
        let metrics = entry.get("metrics").unwrap();
        assert_eq!(metrics.get("rows").unwrap().as_num(), Some(100.0));
        assert_eq!(metrics.get("sort_ns").unwrap().as_num(), Some(250_000.0));
    }

    #[test]
    fn validation_pinpoints_violations() {
        let mut snap = BenchSnapshot::new("unit");
        snap.push(BenchEntry::new("g", "l"));
        let mut doc = snap.to_json();
        validate_snapshot(&doc).unwrap();
        if let Json::Obj(members) = &mut doc {
            members.retain(|(k, _)| k != "environment");
        }
        let err = validate_snapshot(&doc).unwrap_err();
        assert!(err.contains("environment"), "{err}");
    }

    #[test]
    fn environment_capture_is_consistent() {
        let env = Environment::capture();
        assert_eq!(env.single_core, env.available_parallelism == 1);
        assert_eq!(env.debug_assertions, cfg!(debug_assertions));
        assert!(!env.os.is_empty());
        assert!(!env.arch.is_empty());
    }
}
