//! Regenerate every table and figure of the paper as plain text, and
//! emit the same measurements as a machine-readable snapshot
//! (`BENCH_figures.json`, schema in [`ovc_bench::snapshot`]).
//!
//! Run with: `cargo run --release -p ovc-bench --bin figures`
//! Scale Figure 4 / Figure 6 with `--fig4-rows N` / `--fig6-rows N`.
//! `--quick` shrinks both to a smoke-test scale (CI runs this mode and
//! validates the emitted snapshot against the documented schema).

use std::sync::Arc;
use std::time::Instant;

use ovc_baseline::hash_intersect_distinct;
use ovc_bench::snapshot::{BenchEntry, BenchSnapshot};
use ovc_bench::workload::{grouped_sorted_table, intersect_tables};
use ovc_core::compare::compare_same_base;
use ovc_core::derive::derive_codes;
use ovc_core::desc::{derive_desc_code, DescOvc};
use ovc_core::{table1, Row, Stats, VecStream};
use ovc_exec::plans::{sort_intersect_distinct, IntersectConfig};
use ovc_exec::Filter;
use ovc_sort::MemoryRunStorage;

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let quick = flag("--quick");
    let default_rows = if quick { 20_000 } else { 1_000_000 };

    let mut snap = BenchSnapshot::new("figures");
    if snap.environment.single_core {
        println!("==================================================================");
        println!("!! WARNING: available_parallelism() == 1 on this host.");
        println!("!! Timings below measure single-core behavior only; any");
        println!("!! parallel sweep run here measures coordination overhead,");
        println!("!! not speedup.  The emitted snapshot records this");
        println!("!! (environment.single_core = true).");
        println!("==================================================================\n");
    }

    table_1();
    table_2();
    table_3();
    figure_4(arg("--fig4-rows", default_rows), &mut snap);
    figure_5();
    figure_6(arg("--fig6-rows", default_rows), &mut snap);

    match snap.write_to(std::path::Path::new(".")) {
        Ok(path) => println!("snapshot: wrote {}", path.display()),
        Err(e) => eprintln!("snapshot: failed to write {}: {e}", snap.file_name()),
    }
}

fn table_1() {
    println!("==================================================================");
    println!("Table 1: Offset-value codes in a sorted file or stream");
    println!("==================================================================\n");
    let rows = table1::rows();
    let asc = derive_codes(&rows, 4);
    let stats = Stats::default();
    println!(
        "{:<18} {:>7} {:>10} {:>9} {:>8}",
        "rows", "d-offs", "desc OVC", "a-offs", "asc OVC"
    );
    let mut prev: Option<&Row> = None;
    for (row, code) in rows.iter().zip(&asc) {
        let desc = match prev {
            None => DescOvc::initial(row.key(4)),
            Some(p) => derive_desc_code(p.key(4), row.key(4), &stats),
        };
        println!(
            "{:<18} {:>7} {:>10} {:>9} {:>8}",
            format!("{:?}", row.cols()),
            desc.offset(),
            desc.paper_decimal(4, 100),
            4 - code.arity_minus_offset(),
            code.paper_decimal(),
        );
        prev = Some(row);
    }
    println!("\npaper:   desc 95, 388, 192, 191, 400, 297, 393");
    println!("paper:   asc  405, 112, 308, 309,   0, 203, 107\n");
}

fn table_2() {
    println!("==================================================================");
    println!("Table 2: Offset-value code decisions and adjustment");
    println!("==================================================================\n");
    let stats = Stats::default();
    let base = [3u64, 4, 2, 5];
    let cases = [
        ([3u64, 5, 8, 2], [3u64, 4, 6, 1]),
        ([3u64, 4, 3, 8], [3u64, 4, 9, 1]),
        ([3u64, 7, 4, 7], [3u64, 7, 4, 9]),
    ];
    println!(
        "{:<6} {:<14} {:<14} {:>6} {:>6} {:>16}",
        "case", "key B", "key C", "B ovc", "C ovc", "loser-to-winner"
    );
    for (i, (b, c)) in cases.iter().enumerate() {
        let mut bc = ovc_core::compare::derive_code(&base, b, &stats);
        let mut cc = ovc_core::compare::derive_code(&base, c, &stats);
        let (bd, cd) = (bc.paper_decimal(), cc.paper_decimal());
        let ord = compare_same_base(b, c, &mut bc, &mut cc, &stats);
        let loser = if ord == std::cmp::Ordering::Less {
            cc
        } else {
            bc
        };
        println!(
            "{:<6} {:<14} {:<14} {:>6} {:>6} {:>16}",
            i + 1,
            format!("{b:?}"),
            format!("{c:?}"),
            bd,
            cd,
            loser.paper_decimal()
        );
    }
    println!("\npaper: 305/206 -> 305;  203/209 -> 209;  307/307 -> 109\n");
}

fn table_3() {
    println!("==================================================================");
    println!("Table 3: Offset-value codes after a filter");
    println!("==================================================================\n");
    let rows = table1::rows();
    let keep = [rows[0].clone(), rows[6].clone()];
    let input = VecStream::from_sorted_rows(rows, 4);
    println!("{:<18} {:>9} {:>8}", "rows", "a-offs", "asc OVC");
    for r in Filter::new(input, |row| keep.contains(row), Stats::new_shared()) {
        println!(
            "{:<18} {:>9} {:>8}",
            format!("{:?}", r.row.cols()),
            4 - r.code.arity_minus_offset(),
            r.code.paper_decimal()
        );
    }
    println!("\npaper: (5,7,3,9) -> 405;  (5,9,3,7) -> 309\n");
}

fn figure_4(rows_n: usize, snap: &mut BenchSnapshot) {
    println!("==================================================================");
    println!("Figure 4: Group boundaries from offset-value codes");
    println!("         (in-stream aggregation over materialized sorted input,");
    println!("          N = {rows_n}, 8 key columns, grouping on 6 columns;");
    println!("          medians of 5 runs)");
    println!("==================================================================\n");
    println!(
        "{:>8} {:>14} {:>18} {:>9}",
        "ratio", "ovc offsets", "full comparisons", "speedup"
    );
    const K: usize = 8; // "many key columns" (Section 6)
    const G: usize = 6; // grouping-key length
    for ratio in [1usize, 2, 5, 10, 20, 50, 100] {
        let rows = grouped_sorted_table(rows_n, K, ratio, 4);
        // The sort already ran: rows are materialized with their codes,
        // exactly the state Figure 4 starts from.
        let codes = derive_codes(&rows, K);
        let coded: Vec<(Row, ovc_core::Ovc)> = rows.into_iter().zip(codes).collect();

        // OVC: one integer test per row against the code threshold, plus
        // the aggregation itself (count, sum of the payload).
        let t_ovc = median5(|| {
            let (mut groups, mut cnt, mut sum) = (0u64, 0u64, 0u64);
            for (row, code) in &coded {
                let boundary = !(code.is_valid() && code.offset(K) >= G);
                if boundary {
                    groups += 1;
                    std::hint::black_box((cnt, sum));
                    (cnt, sum) = (0, 0);
                }
                cnt += 1;
                sum = sum.wrapping_add(row.cols()[K]);
            }
            std::hint::black_box((groups, cnt, sum))
        });

        // Baseline: full comparisons of the grouping columns per row — the
        // generic column-by-column comparator a pre-OVC engine uses.
        let t_full = median5(|| {
            let (mut groups, mut cnt, mut sum) = (0u64, 0u64, 0u64);
            let mut prev: Option<&Row> = None;
            for (row, _) in &coded {
                let boundary = match prev {
                    None => true,
                    Some(p) => {
                        let (pk, rk) = (p.key(G), row.key(G));
                        let mut differ = false;
                        for i in 0..G {
                            match std::hint::black_box(pk[i]).cmp(&rk[i]) {
                                std::cmp::Ordering::Equal => continue,
                                _ => {
                                    differ = true;
                                    break;
                                }
                            }
                        }
                        differ
                    }
                };
                if boundary {
                    groups += 1;
                    std::hint::black_box((cnt, sum));
                    (cnt, sum) = (0, 0);
                }
                cnt += 1;
                sum = sum.wrapping_add(row.cols()[K]);
                prev = Some(row);
            }
            std::hint::black_box((groups, cnt, sum))
        });

        println!(
            "{:>8} {:>12.1?} {:>16.1?} {:>8.2}x",
            ratio,
            t_ovc,
            t_full,
            t_full.as_secs_f64() / t_ovc.as_secs_f64()
        );
        snap.push(
            BenchEntry::new("figure_4", format!("ratio_{ratio}"))
                .metric("rows", rows_n as f64)
                .wall("ovc", t_ovc)
                .wall("full_compare", t_full)
                .metric("speedup", t_full.as_secs_f64() / t_ovc.as_secs_f64()),
        );
    }
    println!("\nThe library operators (GroupAggregate / GroupFullCompare) implement");
    println!("the same two mechanisms and are tested to produce identical output;");
    println!("this measurement isolates boundary detection as the paper does.\n");
}

fn figure_5() {
    println!("==================================================================");
    println!("Figure 5: Query plans for an 'intersect distinct' query");
    println!("==================================================================\n");
    println!("  hash-based plan                     sort-based plan");
    println!("  ---------------                     ---------------");
    println!("        hash join (intersect)               merge join (intersect,");
    println!("        /          \\                        consumes OVCs for free)");
    println!("   hash agg      hash agg               /            \\");
    println!("   (dedup)       (dedup)         in-sort agg      in-sort agg");
    println!("      |             |            (dedup by offset == arity)");
    println!("   scan T1       scan T2               |              |");
    println!("                                    scan T1        scan T2");
    println!("\n  3 blocking operators                2 blocking operators\n");
}

fn figure_6(rows_n: usize, snap: &mut BenchSnapshot) {
    println!("==================================================================");
    println!("Figure 6: Performance of 'intersect distinct' query plans");
    println!("         (N = {rows_n} rows per table, memory = N/10 rows,");
    println!("          paper scale: 100M rows / 10M memory — same 10:1 ratio)");
    println!("==================================================================\n");
    let (t1, t2) = intersect_tables(rows_n, 42);
    let mem = rows_n / 10;

    let hs = Stats::new_shared();
    let start = Instant::now();
    let h = hash_intersect_distinct(t1.clone(), t2.clone(), mem, &hs);
    let t_hash = start.elapsed();

    let ss = Stats::new_shared();
    let mut s1 = MemoryRunStorage::new(Arc::clone(&ss));
    let mut s2 = MemoryRunStorage::new(Arc::clone(&ss));
    let cfg = IntersectConfig {
        key_len: 1,
        memory_rows: mem,
        fan_in: 128,
    };
    let start = Instant::now();
    let s = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &ss);
    let t_sort = start.elapsed();
    assert_eq!(h.len(), s.len());

    println!("result rows: {}\n", s.len());
    println!("{:<30} {:>14} {:>14}", "", "hash plan", "sort plan");
    println!("{:<30} {:>12.1?} {:>12.1?}", "wall time", t_hash, t_sort);
    println!(
        "{:<30} {:>14} {:>14}",
        "rows spilled",
        hs.rows_spilled(),
        ss.rows_spilled()
    );
    println!(
        "{:<30} {:>14.2} {:>14.2}",
        "spills per input row",
        hs.rows_spilled() as f64 / (2 * rows_n) as f64,
        ss.rows_spilled() as f64 / (2 * rows_n) as f64
    );
    println!(
        "{:<30} {:>14} {:>14}",
        "bytes spilled",
        hs.bytes_spilled(),
        ss.bytes_spilled()
    );
    println!(
        "{:<30} {:>14} {:>14}",
        "column accesses/comparisons",
        hs.col_value_cmps(),
        ss.col_value_cmps()
    );
    println!(
        "{:<30} {:>14} {:>14}",
        "code comparisons",
        hs.ovc_cmps(),
        ss.ovc_cmps()
    );
    println!("\npaper shape: sort plan spills each row once (hash: many rows twice)");
    println!("and the merge join rides on the aggregation's offset-value codes\n");

    for (label, wall, stats, result_rows) in [
        ("hash_plan", t_hash, &hs, h.len()),
        ("sort_plan", t_sort, &ss, s.len()),
    ] {
        snap.push(
            BenchEntry::new("figure_6", label)
                .metric("input_rows_per_table", rows_n as f64)
                .metric("result_rows", result_rows as f64)
                .wall("wall", wall)
                .metric("rows_spilled", stats.rows_spilled() as f64)
                .metric("bytes_spilled", stats.bytes_spilled() as f64)
                .metric("col_value_cmps", stats.col_value_cmps() as f64)
                .metric("ovc_cmps", stats.ovc_cmps() as f64),
        );
    }
}

fn median5<T>(mut f: impl FnMut() -> T) -> std::time::Duration {
    let mut times: Vec<std::time::Duration> = (0..5)
        .map(|_| {
            let start = Instant::now();
            let _ = f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[2]
}
