//! Validate `BENCH_<name>.json` files against the documented snapshot
//! schema (see `ovc_bench::snapshot`).  CI runs this on every snapshot
//! the figure binaries emit.
//!
//! Usage: `cargo run -p ovc-bench --bin validate_snapshot -- FILE...`
//! Exits non-zero (with the first violation on stderr) on any failure.

use ovc_bench::snapshot::{validate_snapshot, Json};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_snapshot FILE...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| format!("read failed: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("parse failed: {e}")))
            .and_then(|doc| validate_snapshot(&doc).map_err(|e| format!("schema violation: {e}")));
        match verdict {
            Ok(()) => println!("{path}: OK"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
