//! Phase-by-phase wall-clock breakdown of the flat external sort — the
//! measurement companion to EXPERIMENTS.md §1 (input clone, run
//! generation, flat merge, boundary materialization).
//!
//! Run with `cargo run --release -p ovc-bench --example phase_timing`.

use std::sync::Arc;
use std::time::Instant;

use ovc_bench::workload::{table, TableSpec};
use ovc_core::{OvcRow, Stats};
use ovc_sort::{
    external_sort, generate_runs, merge_runs, MemoryRunStorage, RunGenStrategy, RunStorage,
    SortConfig,
};

const ROWS: usize = 300_000;
const KEY_COLS: usize = 4;
const MEMORY: usize = 30_000;

fn main() {
    let rows = table(TableSpec {
        rows: ROWS,
        key_cols: KEY_COLS,
        payload_cols: 1,
        distinct_per_col: 8,
        seed: 7,
    });

    println!("phase breakdown, {ROWS} rows x {} cols:", KEY_COLS + 1);
    for _ in 0..3 {
        let stats = Stats::new_shared();
        let t0 = Instant::now();
        let cloned = rows.clone();
        let t1 = Instant::now();
        let runs = generate_runs(
            cloned,
            KEY_COLS,
            MEMORY,
            RunGenStrategy::OvcPriorityQueue,
            &stats,
        );
        let t2 = Instant::now();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        let handles: Vec<usize> = runs
            .into_iter()
            .map(|r| storage.write_run(r).expect("in-memory spill"))
            .collect();
        let final_runs: Vec<_> = handles
            .into_iter()
            .map(|h| storage.read_run(h).expect("in-memory read-back"))
            .collect();
        let run = merge_runs(final_runs, KEY_COLS, &stats).into_run();
        let t3 = Instant::now();
        let out: Vec<OvcRow> = run.cursor().collect();
        let t4 = Instant::now();
        println!(
            "  clone {:>9.3?}  run_gen {:>9.3?}  flat_merge {:>9.3?}  materialize {:>9.3?}  ({} rows)",
            t1 - t0,
            t2 - t1,
            t3 - t2,
            t4 - t3,
            out.len()
        );
    }

    println!("\nfull pipeline (external_sort, streamed and counted):");
    for _ in 0..3 {
        let stats = Stats::new_shared();
        let t0 = Instant::now();
        let mut storage = MemoryRunStorage::new(Arc::clone(&stats));
        let n = external_sort(
            rows.clone(),
            SortConfig::new(KEY_COLS, MEMORY),
            &mut storage,
            &stats,
        )
        .count();
        println!("  {:>9.3?}  ({n} rows)", t0.elapsed());
    }
}
