//! The hash-based query plan of Figure 5: "select B from T1 intersect
//! select B from T2" with "three blocking operators: two hash aggregation
//! operators for duplicate removal and a hash join for set intersection".
//!
//! Since the `ovc-plan` crate landed, this pipeline too is planner
//! territory: forcing the hash preference on the one logical query in
//! `ovc_plan::figure5` reproduces exactly this plan — two `HashDistinct`
//! blocking operators feeding a `GraceHashJoin`.  The hand-written
//! [`hash_intersect_distinct`] stays as the reference the planner's
//! property tests compare against row for row.

use std::sync::Arc;

use ovc_core::{Row, Stats};

use crate::hash_agg::hash_aggregate_distinct;
use crate::hash_join::grace_hash_join;

/// The hash-based "intersect distinct" plan of Figure 5 (left side).
///
/// Result order is arbitrary; spill volume accumulates in `stats`, where
/// Figure 6's "many rows are spilled twice" shows up directly.
pub fn hash_intersect_distinct(
    t1: Vec<Row>,
    t2: Vec<Row>,
    memory_rows: usize,
    stats: &Arc<Stats>,
) -> Vec<Row> {
    let width = t1
        .first()
        .or_else(|| t2.first())
        .map(Row::width)
        .unwrap_or(1);
    let d1 = hash_aggregate_distinct(t1, memory_rows, stats);
    let d2 = hash_aggregate_distinct(t2, memory_rows, stats);
    // Inputs are distinct, so an inner join on the whole row is exactly
    // set intersection.
    grace_hash_join(d1, d2, width, memory_rows, stats)
        .into_iter()
        .map(|r| Row::new(r.cols()[..width].to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_exec::plans::{sort_intersect_distinct, IntersectConfig};
    use ovc_sort::MemoryRunStorage;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..domain)]))
            .collect()
    }

    #[test]
    fn hash_and_sort_plans_agree() {
        let t1 = table(3000, 500, 1);
        let t2 = table(3000, 700, 2);

        let hs = Stats::new_shared();
        let mut hash_result: Vec<Row> = hash_intersect_distinct(t1.clone(), t2.clone(), 200, &hs);
        hash_result.sort();

        let ss = Stats::new_shared();
        let mut s1 = MemoryRunStorage::new(Arc::clone(&ss));
        let mut s2 = MemoryRunStorage::new(Arc::clone(&ss));
        let cfg = IntersectConfig {
            key_len: 1,
            memory_rows: 200,
            fan_in: 64,
        };
        let sort_result: Vec<Row> = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &ss)
            .into_iter()
            .map(|r| r.row)
            .collect();

        assert_eq!(hash_result, sort_result);
    }

    #[test]
    fn figure6_spill_shape_sort_beats_hash() {
        // The Figure 6 claim: with memory a tenth of the input, the hash
        // plan spills rows in both the aggregations and the join, while
        // the sort plan spills each input row at most once.
        let n = 5000;
        let t1 = table(n, 4000, 3);
        let t2 = table(n, 4000, 4);
        let mem = n / 10;

        let hs = Stats::new_shared();
        let _ = hash_intersect_distinct(t1.clone(), t2.clone(), mem, &hs);

        let ss = Stats::new_shared();
        let mut s1 = MemoryRunStorage::new(Arc::clone(&ss));
        let mut s2 = MemoryRunStorage::new(Arc::clone(&ss));
        let cfg = IntersectConfig {
            key_len: 1,
            memory_rows: mem,
            fan_in: 64,
        };
        let _ = sort_intersect_distinct(t1, t2, cfg, &mut s1, &mut s2, &ss);

        assert!(
            ss.rows_spilled() <= 2 * n as u64,
            "sort plan spills each row at most once: {}",
            ss.rows_spilled()
        );
        assert!(
            hs.rows_spilled() > ss.rows_spilled() * 5 / 4,
            "hash plan must spill substantially more: hash {} vs sort {}",
            hs.rows_spilled(),
            ss.rows_spilled()
        );
    }

    #[test]
    fn empty_inputs() {
        let stats = Stats::new_shared();
        assert!(hash_intersect_distinct(vec![], vec![], 10, &stats).is_empty());
        assert!(hash_intersect_distinct(table(10, 5, 5), vec![], 10, &stats).is_empty());
    }
}
