//! # ovc-baseline — the algorithms the paper compares against
//!
//! Every baseline in the paper's evaluation (Section 6), implemented so
//! the figures can be regenerated:
//!
//! * [`group_full`] — in-stream aggregation detecting group boundaries by
//!   "full comparisons of multiple key columns" (Figure 4's baseline);
//! * [`hash_agg`] — spilling (Grace-style) hash aggregation for duplicate
//!   removal (Figure 5's hash plan, first two blocking operators);
//! * [`hash_join`] — spilling Grace hash join (Figure 5's hash plan,
//!   third blocking operator);
//! * [`sort_plain`] — external merge sort without offset-value coding
//!   (baseline for hypothesis 1);
//! * [`plans`] — the hash-based "intersect distinct" plan of Figure 5.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod group_full;
pub mod hash_agg;
pub mod hash_join;
pub mod plans;
pub mod sort_plain;

pub use group_full::GroupFullCompare;
pub use hash_agg::hash_aggregate_distinct;
pub use hash_join::grace_hash_join;
pub use plans::hash_intersect_distinct;
pub use sort_plain::{
    external_sort_plain, merge_runs_plain, sort_rows_plain, sort_rows_plain_spec,
};
