//! Figure 4's baseline: in-stream aggregation with *full comparisons of
//! multiple key columns* for group-boundary detection.
//!
//! Identical semantics to [`ovc_exec::GroupAggregate`], but each boundary
//! test compares the current row's grouping columns against the previous
//! row's, column by column — the cost the paper's Figure 4 measures
//! against the offset-test version.

use std::sync::Arc;

use ovc_core::{OvcRow, Row, Stats, Value};
use ovc_exec::Aggregate;

/// In-stream grouping with column-by-column boundary detection.
///
/// The output intentionally omits offset-value codes (this is the
/// pre-OVC operator), so it yields plain rows.
pub struct GroupFullCompare<S> {
    input: S,
    group_len: usize,
    aggregates: Vec<Aggregate>,
    pending: Option<(Row, Vec<Value>)>,
    stats: Arc<Stats>,
}

impl<S: Iterator<Item = OvcRow>> GroupFullCompare<S> {
    /// Build the baseline operator over any sorted row stream.
    pub fn new(input: S, group_len: usize, aggregates: Vec<Aggregate>, stats: Arc<Stats>) -> Self {
        GroupFullCompare {
            input,
            group_len,
            aggregates,
            pending: None,
            stats,
        }
    }

    fn finish(&self, (row, accs): (Row, Vec<Value>)) -> Row {
        let mut cols = Vec::with_capacity(self.group_len + accs.len());
        cols.extend_from_slice(row.key(self.group_len));
        cols.extend_from_slice(&accs);
        Row::new(cols)
    }

    /// The measured cost: compare all grouping columns.
    fn same_group(&self, prev: &Row, cur: &Row) -> bool {
        self.stats.count_row_cmp();
        for i in 0..self.group_len {
            self.stats.count_col_cmp();
            if prev.cols()[i] != cur.cols()[i] {
                return false;
            }
        }
        true
    }
}

impl<S: Iterator<Item = OvcRow>> Iterator for GroupFullCompare<S> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            match self.input.next() {
                None => return self.pending.take().map(|g| self.finish(g)),
                Some(OvcRow { row, .. }) => {
                    let same = self
                        .pending
                        .as_ref()
                        .is_some_and(|(prev, _)| self.same_group(prev, &row));
                    if same {
                        let aggs = &self.aggregates;
                        let (_, accs) = self.pending.as_mut().expect("pending");
                        for (acc, agg) in accs.iter_mut().zip(aggs) {
                            *acc = agg.fold(*acc, &row);
                        }
                    } else {
                        let accs = self.aggregates.iter().map(|a| a.init(&row)).collect();
                        if let Some(done) = self.pending.replace((row, accs)) {
                            return Some(self.finish(done));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::VecStream;
    use ovc_exec::GroupAggregate;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_ovc_grouping_output() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut rows: Vec<Row> = (0..600)
            .map(|_| {
                Row::new(vec![
                    rng.gen_range(0..5u64),
                    rng.gen_range(0..5u64),
                    rng.gen_range(0..50u64),
                ])
            })
            .collect();
        rows.sort();
        let aggs = vec![Aggregate::Count, Aggregate::Sum(2)];
        let stats = Stats::new_shared();
        let baseline: Vec<Row> = GroupFullCompare::new(
            VecStream::from_sorted_rows(rows.clone(), 3),
            2,
            aggs.clone(),
            Arc::clone(&stats),
        )
        .collect();
        let ovc: Vec<Row> =
            GroupAggregate::new(VecStream::from_sorted_rows(rows, 3), 2, aggs, stats)
                .map(|r| r.row)
                .collect();
        assert_eq!(baseline, ovc);
    }

    #[test]
    fn baseline_pays_column_comparisons_where_ovc_pays_none() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut rows: Vec<Row> = (0..1000)
            .map(|_| Row::new(vec![rng.gen_range(0..3u64), rng.gen_range(0..3u64)]))
            .collect();
        rows.sort();
        let stats = Stats::new_shared();
        let n: usize = GroupFullCompare::new(
            VecStream::from_sorted_rows(rows, 2),
            2,
            vec![Aggregate::Count],
            Arc::clone(&stats),
        )
        .count();
        assert!(n <= 9);
        // 999 boundary tests, each comparing 1-2 columns.
        assert!(stats.col_value_cmps() >= 999);
        assert_eq!(stats.row_cmps(), 999);
    }

    #[test]
    fn empty_input() {
        let stats = Stats::new_shared();
        let g = GroupFullCompare::new(
            VecStream::from_sorted_rows(vec![], 2),
            1,
            vec![Aggregate::Count],
            stats,
        );
        assert_eq!(g.count(), 0);
    }
}
