//! Grace-style spilling hash join — the join operator of Figure 5's
//! hash-based plan.
//!
//! If the build input exceeds memory, both inputs partition by join-key
//! hash to temporary storage and the join proceeds partition by partition
//! (recursively if needed).  Combined with the spilling hash aggregation
//! upstream, "many rows are spilled twice" in the hash-based plan —
//! the Figure 6 contrast with the sort-based plan's single spill.

use std::collections::HashMap;
use std::sync::Arc;

use ovc_core::{Row, Stats, Value};

fn key_hash(key: &[Value], level: u64) -> u64 {
    let mut h = 0x84222325_cbf29ce4u64 ^ level.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &c in key {
        h ^= c;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

use crate::hash_agg::{decode_rows, encode_rows};

/// Inner hash join on the first `join_len` columns with a `memory_rows`
/// build-side budget.  Output rows are `left ++ right past the join key`,
/// in arbitrary (hash) order.
pub fn grace_hash_join(
    left: Vec<Row>,
    right: Vec<Row>,
    join_len: usize,
    memory_rows: usize,
    stats: &Arc<Stats>,
) -> Vec<Row> {
    assert!(memory_rows > 0);
    join_recursive(left, right, join_len, memory_rows, 0, stats)
}

fn join_recursive(
    left: Vec<Row>,
    right: Vec<Row>,
    join_len: usize,
    memory_rows: usize,
    level: u64,
    stats: &Arc<Stats>,
) -> Vec<Row> {
    // Build on the smaller input, probe with the larger.
    let (build, probe, build_is_left) = if left.len() <= right.len() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    if build.len() <= memory_rows {
        let mut table: HashMap<Box<[Value]>, Vec<Row>> = HashMap::with_capacity(build.len());
        for row in build {
            stats.count_col_cmps(join_len as u64); // hash-function accesses
            table
                .entry(row.cols()[..join_len].to_vec().into_boxed_slice())
                .or_default()
                .push(row);
        }
        let mut out = Vec::new();
        for p in probe {
            stats.count_col_cmps(join_len as u64); // hash-function accesses
            if let Some(matches) = table.get(&p.cols()[..join_len]) {
                for b in matches {
                    let (l, r) = if build_is_left { (b, &p) } else { (&p, b) };
                    let mut cols = l.cols().to_vec();
                    cols.extend_from_slice(&r.cols()[join_len..]);
                    out.push(Row::new(cols));
                }
            }
        }
        return out;
    }
    assert!(level < 8, "hash recursion too deep (degenerate join keys?)");
    // Overflow: partition both inputs to temporary storage.
    let parts = build.len().div_ceil(memory_rows).max(2);
    let mut bp: Vec<Vec<Row>> = vec![Vec::new(); parts];
    let mut pp: Vec<Vec<Row>> = vec![Vec::new(); parts];
    for row in build {
        let h = (key_hash(&row.cols()[..join_len], level) % parts as u64) as usize;
        bp[h].push(row);
    }
    for row in probe {
        let h = (key_hash(&row.cols()[..join_len], level) % parts as u64) as usize;
        pp[h].push(row);
    }
    let mut out = Vec::new();
    for (b, p) in bp.into_iter().zip(pp) {
        // Byte-image spill, symmetric with the sort plan's run encoding.
        let rows = (b.len() + p.len()) as u64;
        let (bb, pb) = (encode_rows(&b), encode_rows(&p));
        let bytes = (bb.len() + pb.len()) as u64;
        stats.count_spill(rows, bytes);
        drop((b, p));
        let (b, p) = (decode_rows(&bb), decode_rows(&pb));
        stats.count_read_back(rows, bytes);
        let (l, r) = if build_is_left { (b, p) } else { (p, b) };
        out.extend(join_recursive(
            l,
            r,
            join_len,
            memory_rows,
            level + 1,
            stats,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn reference_inner(l: &[Row], r: &[Row], j: usize) -> Vec<Vec<u64>> {
        let mut rmap: BTreeMap<Vec<u64>, Vec<&Row>> = BTreeMap::new();
        for row in r {
            rmap.entry(row.cols()[..j].to_vec()).or_default().push(row);
        }
        let mut out = Vec::new();
        for lrow in l {
            if let Some(ms) = rmap.get(&lrow.cols()[..j]) {
                for m in ms {
                    let mut c = lrow.cols().to_vec();
                    c.extend_from_slice(&m.cols()[j..]);
                    out.push(c);
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn matches_reference_in_memory() {
        let mut rng = StdRng::seed_from_u64(4);
        let l: Vec<Row> = (0..80)
            .map(|_| Row::new(vec![rng.gen_range(0..10u64), rng.gen()]))
            .collect();
        let r: Vec<Row> = (0..80)
            .map(|_| Row::new(vec![rng.gen_range(0..10u64), rng.gen()]))
            .collect();
        let stats = Stats::new_shared();
        let mut got: Vec<Vec<u64>> = grace_hash_join(l.clone(), r.clone(), 1, 1000, &stats)
            .into_iter()
            .map(|x| x.cols().to_vec())
            .collect();
        got.sort();
        assert_eq!(got, reference_inner(&l, &r, 1));
        assert_eq!(stats.rows_spilled(), 0);
    }

    #[test]
    fn matches_reference_with_spilling() {
        let mut rng = StdRng::seed_from_u64(5);
        let l: Vec<Row> = (0..1500)
            .map(|_| Row::new(vec![rng.gen_range(0..200u64), rng.gen_range(0..4u64)]))
            .collect();
        let r: Vec<Row> = (0..1500)
            .map(|_| Row::new(vec![rng.gen_range(0..200u64), rng.gen_range(0..4u64)]))
            .collect();
        let stats = Stats::new_shared();
        let mut got: Vec<Vec<u64>> = grace_hash_join(l.clone(), r.clone(), 1, 100, &stats)
            .into_iter()
            .map(|x| x.cols().to_vec())
            .collect();
        got.sort();
        assert_eq!(got, reference_inner(&l, &r, 1));
        assert!(
            stats.rows_spilled() >= 3000,
            "both inputs spill when the build side overflows"
        );
    }

    #[test]
    fn empty_sides() {
        let stats = Stats::new_shared();
        assert!(grace_hash_join(vec![], vec![Row::new(vec![1])], 1, 10, &stats).is_empty());
        assert!(grace_hash_join(vec![Row::new(vec![1])], vec![], 1, 10, &stats).is_empty());
    }
}
