//! Spilling hash aggregation — the duplicate-removal operator of
//! Figure 5's hash-based plan.
//!
//! When the input exceeds memory, the operator partitions all input rows
//! by hash to temporary storage (Grace-style) and deduplicates each
//! partition in memory, recursing if a partition still does not fit.
//! Every overflowing row is spilled (at least) once here — and then again
//! inside the hash join — which is exactly the "many rows are spilled
//! twice" behaviour the paper contrasts with the sort-based plan
//! (Section 6).

use std::collections::HashSet;
use std::sync::Arc;

use ovc_core::{Row, Stats};

/// Multiplicative hash of a row with a per-recursion-level seed, so that
/// re-partitioning a partition actually splits it.
fn row_hash(row: &Row, level: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ level.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &c in row.cols() {
        h ^= c;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Flat little-endian serialization of spilled rows (the hash plan has no
/// codes to truncate prefixes with), so the simulated spill pays the same
/// kind of serialization work as the sort plan's run encoding.
pub(crate) fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows.iter().map(|r| r.width() * 8 + 8).sum());
    for row in rows {
        out.extend_from_slice(&(row.width() as u64).to_le_bytes());
        for &c in row.cols() {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

/// Inverse of [`encode_rows`].
pub(crate) fn decode_rows(bytes: &[u8]) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let w = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8")) as usize;
        pos += 8;
        let mut cols = Vec::with_capacity(w);
        for _ in 0..w {
            cols.push(u64::from_le_bytes(
                bytes[pos..pos + 8].try_into().expect("8"),
            ));
            pos += 8;
        }
        rows.push(Row::new(cols));
    }
    rows
}

/// Hash-based duplicate removal with a `memory_rows` budget.  Output order
/// is arbitrary (hash order) — the hash plan has no interesting ordering
/// to offer downstream.
pub fn hash_aggregate_distinct(rows: Vec<Row>, memory_rows: usize, stats: &Arc<Stats>) -> Vec<Row> {
    assert!(memory_rows > 0);
    distinct_recursive(rows, memory_rows, 0, stats)
}

fn distinct_recursive(
    rows: Vec<Row>,
    memory_rows: usize,
    level: u64,
    stats: &Arc<Stats>,
) -> Vec<Row> {
    // Hybrid hash aggregation: the in-memory table holds up to
    // `memory_rows` *distinct* rows; duplicates of resident rows collapse
    // on the fly, rows that would grow the table past the budget overflow
    // to temporary storage.
    let mut seen: HashSet<Row> = HashSet::with_capacity(memory_rows.min(rows.len()));
    let mut out = Vec::new();
    let mut overflow: Vec<Row> = Vec::new();
    for row in rows {
        // Section 7: "hash-based query execution requires accessing N x K
        // column values just for the hash function" — counted here.
        stats.count_col_cmps(row.width() as u64);
        if seen.contains(&row) {
            continue;
        }
        if seen.len() < memory_rows {
            seen.insert(row.clone());
            out.push(row);
        } else {
            overflow.push(row);
        }
    }
    if overflow.is_empty() {
        return out;
    }
    assert!(level < 64, "hash recursion too deep");
    // Partition the overflow to "temporary storage": each overflowing row
    // spills once and is read back once per level.
    let parts = overflow.len().div_ceil(memory_rows).max(2);
    let mut partitions: Vec<Vec<Row>> = vec![Vec::new(); parts];
    for row in overflow {
        let p = (row_hash(&row, level) % parts as u64) as usize;
        partitions[p].push(row);
    }
    for part in partitions {
        // Spill through the same kind of byte image the sort plan writes,
        // so simulated I/O work is comparable.
        let n = part.len() as u64;
        let bytes = encode_rows(&part);
        stats.count_spill(n, bytes.len() as u64);
        drop(part);
        let part = decode_rows(&bytes);
        stats.count_read_back(n, bytes.len() as u64);
        // Recursion dedups within the partition; rows already produced
        // from the in-memory table are filtered afterwards.
        for row in distinct_recursive(part, memory_rows, level + 1, stats) {
            if !seen.contains(&row) {
                out.push(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn table(n: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..domain)]))
            .collect()
    }

    #[test]
    fn in_memory_dedup_no_spill() {
        let rows = table(100, 20, 1);
        let stats = Stats::new_shared();
        let out = hash_aggregate_distinct(rows.clone(), 1000, &stats);
        let expect: BTreeSet<Row> = rows.into_iter().collect();
        let got: BTreeSet<Row> = out.into_iter().collect();
        assert_eq!(got, expect);
        assert_eq!(stats.rows_spilled(), 0);
    }

    #[test]
    fn overflow_spills_every_row() {
        let rows = table(1000, 800, 2);
        let stats = Stats::new_shared();
        let out = hash_aggregate_distinct(rows.clone(), 100, &stats);
        let expect: BTreeSet<Row> = rows.into_iter().collect();
        assert_eq!(out.len(), expect.len());
        // The hybrid table keeps the first `memory_rows` distinct rows
        // resident; everything else overflows and spills.
        assert!(
            stats.rows_spilled() >= 700,
            "most rows spill at least once, got {}",
            stats.rows_spilled()
        );
    }

    #[test]
    fn heavy_duplicates_still_correct() {
        let rows = table(2000, 5, 3);
        let stats = Stats::new_shared();
        let out = hash_aggregate_distinct(rows, 100, &stats);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn empty_input() {
        let stats = Stats::new_shared();
        assert!(hash_aggregate_distinct(vec![], 10, &stats).is_empty());
    }
}
