//! External merge sort *without* offset-value coding — the baseline for
//! the paper's first hypothesis ("offset-value coding can speed up
//! external merge sort and also its consumers").
//!
//! Run generation uses quicksort with full key comparisons; merging uses a
//! conventional binary heap whose every comparison walks the key columns
//! from the start.  Same spill pattern as the OVC sorter, so time and
//! comparison-count differences isolate the coding technique itself.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use ovc_core::compare::compare_keys_counted;
use ovc_core::{Row, Stats};

fn spill_bytes(rows: &[Row]) -> u64 {
    rows.iter().map(|r| (r.width() as u64) * 8).sum()
}

/// Sort rows with instrumented full-key comparisons.
pub fn sort_rows_plain(mut rows: Vec<Row>, key_len: usize, stats: &Arc<Stats>) -> Vec<Row> {
    rows.sort_by(|a, b| compare_keys_counted(a.key(key_len), b.key(key_len), stats));
    rows
}

/// Direction-aware [`sort_rows_plain`]: the same instrumented
/// column-by-column full comparisons under an arbitrary leading-prefix
/// [`ovc_core::SortSpec`] — the reference the planner's direction-aware
/// sort plans are property-tested against, row for row.
pub fn sort_rows_plain_spec(
    mut rows: Vec<Row>,
    spec: &ovc_core::SortSpec,
    stats: &Arc<Stats>,
) -> Vec<Row> {
    let k = spec.len();
    rows.sort_by(|a, b| {
        stats.count_row_cmp();
        let (ak, bk) = (a.key(k), b.key(k));
        for i in 0..k {
            stats.count_col_cmp();
            match spec.cmp_values(i, ak[i], bk[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    });
    rows
}

/// A heap entry: (row, run index, position) ordered by key, inverted for
/// the max-heap, with full comparisons counted.
struct HeapEntry<'a> {
    key: &'a [u64],
    run: usize,
    pos: usize,
    stats: &'a Stats,
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry<'_> {}
impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-merge on a max-heap; tie-break on run for
        // stability.
        compare_keys_counted(other.key, self.key, self.stats).then_with(|| other.run.cmp(&self.run))
    }
}

/// Merge sorted runs with a binary heap and full key comparisons.
pub fn merge_runs_plain(runs: Vec<Vec<Row>>, key_len: usize, stats: &Arc<Stats>) -> Vec<Row> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<HeapEntry<'_>> = BinaryHeap::with_capacity(runs.len());
    for (run, rows) in runs.iter().enumerate() {
        if let Some(first) = rows.first() {
            heap.push(HeapEntry {
                key: first.key(key_len),
                run,
                pos: 0,
                stats,
            });
        }
    }
    while let Some(HeapEntry { run, pos, .. }) = heap.pop() {
        out.push(runs[run][pos].clone());
        if pos + 1 < runs[run].len() {
            heap.push(HeapEntry {
                key: runs[run][pos + 1].key(key_len),
                run,
                pos: pos + 1,
                stats,
            });
        }
    }
    out
}

/// External merge sort without OVC: quicksorted runs, heap-based merging,
/// spill accounting identical to the OVC sorter's.
pub fn external_sort_plain(
    input: Vec<Row>,
    key_len: usize,
    memory_rows: usize,
    fan_in: usize,
    stats: &Arc<Stats>,
) -> Vec<Row> {
    assert!(memory_rows > 0 && fan_in >= 2);
    if input.len() <= memory_rows {
        return sort_rows_plain(input, key_len, stats);
    }
    let mut runs: Vec<Vec<Row>> = Vec::new();
    let mut buffer = Vec::with_capacity(memory_rows);
    for row in input {
        buffer.push(row);
        if buffer.len() == memory_rows {
            let run = sort_rows_plain(std::mem::take(&mut buffer), key_len, stats);
            stats.count_spill(run.len() as u64, spill_bytes(&run));
            runs.push(run);
        }
    }
    if !buffer.is_empty() {
        let run = sort_rows_plain(buffer, key_len, stats);
        stats.count_spill(run.len() as u64, spill_bytes(&run));
        runs.push(run);
    }
    // Multi-level merging with the given fan-in.
    while runs.len() > fan_in {
        let mut next = Vec::new();
        for chunk in runs.chunks(fan_in) {
            for r in chunk {
                stats.count_read_back(r.len() as u64, spill_bytes(r));
            }
            let merged = merge_runs_plain(chunk.to_vec(), key_len, stats);
            stats.count_spill(merged.len() as u64, spill_bytes(&merged));
            next.push(merged);
        }
        runs = next;
    }
    for r in &runs {
        stats.count_read_back(r.len() as u64, spill_bytes(r));
    }
    merge_runs_plain(runs, key_len, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_sort::{external_sort_collect, SortConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, k: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new((0..k).map(|_| rng.gen_range(0..domain)).collect()))
            .collect()
    }

    #[test]
    fn sorts_correctly() {
        let rows = random_rows(700, 3, 10, 1);
        let stats = Stats::new_shared();
        let got = external_sort_plain(rows.clone(), 3, 64, 8, &stats);
        let mut expect = rows;
        expect.sort();
        assert_eq!(got, expect);
        assert!(stats.rows_spilled() >= 700);
    }

    #[test]
    fn agrees_with_ovc_sorter() {
        let rows = random_rows(500, 2, 6, 2);
        let s1 = Stats::new_shared();
        let s2 = Stats::new_shared();
        let plain = external_sort_plain(rows.clone(), 2, 50, 128, &s1);
        let ovc: Vec<Row> = external_sort_collect(rows, SortConfig::new(2, 50), &s2)
            .into_iter()
            .map(|r| r.row)
            .collect();
        // Key order must agree (payload ties may differ in order).
        let keys = |v: &[Row]| -> Vec<Vec<u64>> { v.iter().map(|r| r.key(2).to_vec()).collect() };
        assert_eq!(keys(&plain), keys(&ovc));
    }

    #[test]
    fn ovc_sorter_needs_fewer_column_comparisons() {
        // The headline claim of hypothesis 1, in counter form.
        let rows = random_rows(4000, 4, 4, 3);
        let s_plain = Stats::new_shared();
        let s_ovc = Stats::new_shared();
        let _ = external_sort_plain(rows.clone(), 4, 256, 64, &s_plain);
        let _ = external_sort_collect(rows, SortConfig::new(4, 256), &s_ovc);
        assert!(
            s_ovc.col_value_cmps() * 2 < s_plain.col_value_cmps(),
            "ovc {} vs plain {}",
            s_ovc.col_value_cmps(),
            s_plain.col_value_cmps()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let stats = Stats::new_shared();
        assert!(external_sort_plain(vec![], 1, 10, 2, &stats).is_empty());
        let one = vec![Row::new(vec![5])];
        assert_eq!(external_sort_plain(one.clone(), 1, 10, 2, &stats), one);
    }
}
