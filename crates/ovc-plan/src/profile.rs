//! `EXPLAIN ANALYZE`: profile trees mirroring physical plans, and the
//! renderer that interleaves planner estimates with measured counters.
//!
//! [`build_profile`] stamps out one [`ProfileNode`] per plan operator
//! (children in plan child order, so profile and plan walk in lockstep);
//! [`PhysOp::Exchange`] nodes get per-partition [`ChannelGauge`]s sized
//! from the plan's partitioning.  The executor
//! ([`crate::exec::execute_profiled`]) fills the tree in;
//! [`PhysicalPlan::explain_analyze`] runs the plan to completion and
//! renders each operator as
//!
//! ```text
//! SortOvc key=[c0 asc]  (est rows~1000, spill~0)  [rows out=1000, wall=1.8ms, col cmps=9211, code cmps=8964]
//! ```
//!
//! — the estimate the planner priced next to what the run actually did,
//! the Postgres `EXPLAIN ANALYZE` shape.  All measured figures are
//! inclusive of the subtree (see [`ovc_core::metrics`]); `col cmps` are
//! column-value comparisons (the expensive kind the paper eliminates)
//! and `code cmps` are comparisons resolved by offset-value-code
//! inspection alone.
//!
//! [`ChannelGauge`]: ovc_core::metrics::ChannelGauge

use std::sync::Arc;

use ovc_core::metrics::{PlanProfile, ProfileNode};
use ovc_core::Stats;

use crate::catalog::Catalog;
use crate::exec::{execute_profiled, ExecOptions, Output};
use crate::physical::{Partitioning, PhysOp, PhysicalPlan};

/// Build the live accumulator tree for one profiled run of `plan`:
/// one node per plan operator, mirroring the plan's shape child for
/// child.  Exchange operators get one channel gauge per partition of
/// the side that crosses threads (the target layout for a splitting
/// exchange, the input layout for a gathering one).
pub fn build_profile(plan: &PhysicalPlan) -> Arc<ProfileNode> {
    let children: Vec<Arc<ProfileNode>> = plan.children().into_iter().map(build_profile).collect();
    let name = plan.op_name();
    let detail = plan.op_detail();
    Arc::new(match &plan.op {
        PhysOp::Exchange { input, to, .. } => {
            let channels = match to {
                Partitioning::Hash { parts, .. } => *parts,
                Partitioning::Single => input.props.partitioning.parts(),
                Partitioning::Any => 0,
            };
            ProfileNode::with_gauges(name, detail, children, channels)
        }
        _ => ProfileNode::new(name, detail, children),
    })
}

/// Render a plan and its measured profile side by side, one line per
/// operator: the planner's estimates in parentheses, the measurements
/// in brackets, channel gauges indented beneath their exchange.
///
/// `profile` must come from a run of this very `plan`
/// ([`build_profile`] + [`execute_profiled`]); the trees are walked in
/// lockstep and a shape mismatch panics.
pub fn render_analyze(plan: &PhysicalPlan, profile: &PlanProfile) -> String {
    let mut out = String::new();
    render_into(plan, profile, &mut out, 0);
    out
}

fn render_into(plan: &PhysicalPlan, profile: &PlanProfile, out: &mut String, depth: usize) {
    use std::fmt::Write;
    assert_eq!(
        plan.op_name(),
        profile.name,
        "profile tree does not mirror this plan"
    );
    let pad = "  ".repeat(depth);
    let m = &profile.metrics;
    let _ = writeln!(
        out,
        "{pad}{}{}  (est rows~{:.0}, spill~{:.0})  [rows out={}, wall={:.3?}, col cmps={}, code cmps={}]",
        plan.op_name(),
        plan.op_detail(),
        plan.props.rows,
        plan.cost.spill_rows,
        m.rows_out,
        m.wall,
        m.col_cmps(),
        m.code_resolved_cmps(),
    );
    for (p, g) in profile.gauges.iter().enumerate() {
        let _ = writeln!(
            out,
            "{pad}  ~ channel {p}: rows={}, send wait={:.3?}, recv wait={:.3?}, peak depth={}",
            g.rows, g.send_wait, g.recv_wait, g.peak_depth
        );
    }
    let children = plan.children();
    assert_eq!(
        children.len(),
        profile.children.len(),
        "profile tree does not mirror this plan"
    );
    for (c, cp) in children.into_iter().zip(&profile.children) {
        render_into(c, cp, out, depth + 1);
    }
}

impl PhysicalPlan {
    /// Run this plan to completion against `catalog` with per-operator
    /// profiling, and render estimates next to measurements — the
    /// `EXPLAIN ANALYZE` of this planner.
    ///
    /// A fresh [`Stats`] is used for the run, so the rendered counters
    /// are exactly this execution's.  Ordered roots are drained; the
    /// output rows are discarded (run [`execute_profiled`] directly to
    /// keep them alongside the profile).
    pub fn explain_analyze(&self, catalog: &Catalog, options: &ExecOptions) -> String {
        let stats = Stats::new_shared();
        let (out, root) = execute_profiled(self, catalog, &stats, options);
        match out {
            Output::Stream(s) => for _ in s {},
            Output::Rows(_) | Output::Partitions(_) => {}
        }
        render_analyze(self, &root.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure5;
    use crate::planner::PlannerConfig;
    use ovc_core::Row;

    fn rows(vals: &[u64]) -> Vec<Row> {
        vals.iter().map(|&v| Row::new(vec![v])).collect()
    }

    #[test]
    fn profile_tree_mirrors_plan_shape() {
        let catalog = figure5::catalog_unsorted(rows(&[3, 1, 2, 2]), rows(&[2, 4]));
        let plan = figure5::plan_intersect(&catalog, PlannerConfig::default()).unwrap();
        let root = build_profile(&plan);
        let profile = root.snapshot();
        let plan_nodes = plan.nodes();
        let prof_nodes = profile.nodes();
        assert_eq!(plan_nodes.len(), prof_nodes.len());
        for (p, n) in plan_nodes.iter().zip(&prof_nodes) {
            assert_eq!(p.op_name(), n.name);
            assert_eq!(p.op_detail(), n.detail);
        }
    }

    #[test]
    fn explain_analyze_reports_measured_counters() {
        let catalog = figure5::catalog_unsorted(rows(&[3, 1, 2, 2, 5]), rows(&[2, 4, 5]));
        let plan = figure5::plan_intersect(&catalog, PlannerConfig::default()).unwrap();
        let text = plan.explain_analyze(&catalog, &ExecOptions::default());
        // One line per operator, estimates and measurements side by side.
        assert_eq!(text.lines().count(), plan.nodes().len(), "{text}");
        assert!(text.contains("SetOpMerge"), "{text}");
        assert!(text.contains("(est rows~"), "{text}");
        assert!(text.contains("rows out="), "{text}");
        assert!(text.contains("wall="), "{text}");
        assert!(text.contains("col cmps="), "{text}");
        assert!(text.contains("code cmps="), "{text}");
        // The intersection result is {2, 5}: the root reports 2 rows.
        let first = text.lines().next().unwrap();
        assert!(first.contains("rows out=2"), "{text}");
    }

    #[test]
    fn profiled_run_matches_unprofiled_output() {
        use crate::exec::execute;
        let catalog = figure5::catalog_unsorted(rows(&[9, 1, 4, 4, 7, 1]), rows(&[4, 1, 8]));
        let plan = figure5::plan_intersect(&catalog, PlannerConfig::default()).unwrap();

        let plain_stats = Stats::new_shared();
        let plain: Vec<_> = execute(&plan, &catalog, &plain_stats, &ExecOptions::default())
            .into_coded()
            .into_iter()
            .map(|r| (r.row, r.code))
            .collect();

        let prof_stats = Stats::new_shared();
        let (out, root) = execute_profiled(&plan, &catalog, &prof_stats, &ExecOptions::default());
        let profiled: Vec<_> = out
            .into_coded()
            .into_iter()
            .map(|r| (r.row, r.code))
            .collect();

        assert_eq!(plain, profiled, "profiling must not perturb rows or codes");
        assert_eq!(
            plain_stats.snapshot(),
            prof_stats.snapshot(),
            "profiling must not perturb the Stats totals"
        );
        // The root node observed every emitted row.
        assert_eq!(root.snapshot().metrics.rows_out, plain.len() as u64);
    }
}
