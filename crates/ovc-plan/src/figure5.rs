//! The paper's Figure 5 experiment, expressed through the planner.
//!
//! The repository's first generation hand-wired both Figure 5 plans:
//! `ovc_exec::plans::sort_intersect_distinct` (two in-sort duplicate
//! removals feeding a code-consuming merge join) and
//! `ovc_baseline::plans::hash_intersect_distinct` (two hash aggregations
//! and a Grace hash join).  This module derives both from one logical
//! query — `select B from T1 intersect select B from T2` — so the choice
//! the paper's authors made by hand is now the planner's to make, and
//! every future workload flows through the same machinery.

use std::sync::Arc;

use ovc_core::{Row, Stats};

use crate::catalog::{Catalog, Table};
use crate::exec::{execute, ExecOptions, Output};
use crate::logical::{LogicalPlan, SetOp};
use crate::physical::PhysicalPlan;
use crate::planner::{PlanError, Planner, PlannerConfig};

/// The Figure 5 logical query: `select B from T1 intersect select B from
/// T2` over tables registered as `t1` and `t2`.
pub fn intersect_distinct_query() -> LogicalPlan {
    LogicalPlan::scan("t1").set_op(LogicalPlan::scan("t2"), SetOp::Intersect)
}

/// Catalog holding the two Figure 5 inputs as unsorted heap tables (the
/// experiment's setting: no interesting ordering exists yet, both plans
/// must earn their own).
pub fn catalog_unsorted(t1: Vec<Row>, t2: Vec<Row>) -> Catalog {
    let mut cat = Catalog::new();
    cat.register("t1", Table::unsorted(t1));
    cat.register("t2", Table::unsorted(t2));
    cat
}

/// Catalog holding the two inputs stored sorted (and therefore coded):
/// the "interesting orderings available" regime in which the planner
/// should elide every sort.
pub fn catalog_sorted(mut t1: Vec<Row>, mut t2: Vec<Row>) -> Catalog {
    t1.sort();
    t2.sort();
    let w1 = t1.first().map(Row::width).unwrap_or(1);
    let w2 = t2.first().map(Row::width).unwrap_or(1);
    let mut cat = Catalog::new();
    cat.register("t1", Table::sorted(t1, w1));
    cat.register("t2", Table::sorted(t2, w2));
    cat
}

/// Plan the Figure 5 query against `catalog`.
pub fn plan_intersect(catalog: &Catalog, config: PlannerConfig) -> Result<PhysicalPlan, PlanError> {
    Planner::new(catalog, config).plan(&intersect_distinct_query())
}

/// Plan and run the Figure 5 query in one call, returning its output and
/// the chosen plan (spills and comparisons accumulate in `stats`).
pub fn run_intersect(
    catalog: &Catalog,
    config: PlannerConfig,
    stats: &Arc<Stats>,
) -> Result<(PhysicalPlan, Output), PlanError> {
    let plan = plan_intersect(catalog, config)?;
    let out = execute(&plan, catalog, stats, &ExecOptions::default());
    Ok((plan, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Preference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn table(n: usize, domain: u64, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Row::new(vec![rng.gen_range(0..domain)]))
            .collect()
    }

    fn reference(t1: &[Row], t2: &[Row]) -> Vec<u64> {
        let a: BTreeSet<u64> = t1.iter().map(|r| r.cols()[0]).collect();
        let b: BTreeSet<u64> = t2.iter().map(|r| r.cols()[0]).collect();
        a.intersection(&b).copied().collect()
    }

    #[test]
    fn planner_reproduces_figure5_sort_plan() {
        let (t1, t2) = (table(3000, 40, 1), table(3000, 60, 2));
        let cat = catalog_unsorted(t1.clone(), t2.clone());
        let cfg = PlannerConfig::default()
            .with_memory_rows(256)
            .with_preference(Preference::ForceSortBased);
        let plan = plan_intersect(&cat, cfg).expect("plans");
        // Two in-sort dedups under one merge set operation — Figure 5's
        // sort side, with only two blocking operators.
        assert_eq!(plan.count_op("InSortDistinct"), 2, "{plan}");
        assert_eq!(plan.count_op("SetOpMerge"), 1, "{plan}");
        assert!(!plan.uses_hash_based_ops(), "{plan}");

        let stats = Stats::new_shared();
        let out = execute(&plan, &cat, &stats, &ExecOptions::default());
        let got: Vec<u64> = out.into_rows().iter().map(|r| r.cols()[0]).collect();
        assert_eq!(got, reference(&t1, &t2));
    }

    #[test]
    fn planner_reproduces_figure5_hash_plan() {
        let (t1, t2) = (table(3000, 40, 3), table(3000, 60, 4));
        let cat = catalog_unsorted(t1.clone(), t2.clone());
        let cfg = PlannerConfig::default()
            .with_memory_rows(256)
            .with_preference(Preference::ForceHashBased);
        let plan = plan_intersect(&cat, cfg).expect("plans");
        // Three blocking hash operators — Figure 5's hash side.
        assert_eq!(plan.count_op("HashDistinct"), 2, "{plan}");
        assert_eq!(plan.count_op("GraceHashJoin"), 1, "{plan}");
        assert!(!plan.uses_sort_based_ops(), "{plan}");

        let stats = Stats::new_shared();
        let out = execute(&plan, &cat, &stats, &ExecOptions::default());
        let mut got: Vec<u64> = out.into_rows().iter().map(|r| r.cols()[0]).collect();
        got.sort();
        assert_eq!(got, reference(&t1, &t2));
    }

    #[test]
    fn sorted_coded_inputs_make_the_planner_elide_every_sort() {
        let (t1, t2) = (table(2000, 50, 5), table(2000, 70, 6));
        let cat = catalog_sorted(t1.clone(), t2.clone());
        let cfg = PlannerConfig::default().with_memory_rows(200);
        let plan = plan_intersect(&cat, cfg).expect("plans");
        // The acceptance shape: sort-based, sorts elided, coded scans in.
        assert!(plan.uses_sort_based_ops(), "{plan}");
        assert!(!plan.uses_hash_based_ops(), "{plan}");
        assert_eq!(plan.elided_sorts().len(), 2, "{plan}");
        assert_eq!(
            plan.count_op("SortOvc") + plan.count_op("InSortDistinct"),
            0,
            "{plan}"
        );

        let stats = Stats::new_shared();
        let out = execute(
            &plan,
            &cat,
            &stats,
            &ExecOptions {
                verify_trusted: true,
                ..Default::default()
            },
        );
        let got: Vec<u64> = out.into_rows().iter().map(|r| r.cols()[0]).collect();
        assert_eq!(got, reference(&t1, &t2));
        // Nothing blocked, so nothing spilled.
        assert_eq!(stats.rows_spilled(), 0);
    }

    #[test]
    fn parallel_figure5_matches_serial_rows_and_codes() {
        let (t1, t2) = (table(4000, 500, 9), table(4000, 700, 10));
        let cat = catalog_unsorted(t1, t2);
        let serial_cfg = PlannerConfig::default()
            .with_memory_rows(256)
            .with_preference(Preference::ForceSortBased);
        let parallel_cfg = serial_cfg.with_dop(4).with_parallel_threshold(1);

        let serial_plan = plan_intersect(&cat, serial_cfg).expect("plans");
        let parallel_plan = plan_intersect(&cat, parallel_cfg).expect("plans");
        assert!(parallel_plan.explain().contains("dop=4"), "{parallel_plan}");
        assert_eq!(parallel_plan.props.dop, 4, "{parallel_plan}");
        assert_eq!(serial_plan.props.dop, 1, "{serial_plan}");

        let (s_stats, p_stats) = (Stats::new_shared(), Stats::new_shared());
        let serial = execute(&serial_plan, &cat, &s_stats, &ExecOptions::default()).into_coded();
        let parallel =
            execute(&parallel_plan, &cat, &p_stats, &ExecOptions::default()).into_coded();
        // The acceptance bar: identical rows *and* identical exact codes.
        assert_eq!(serial, parallel);
        // Counters follow the lowering: the serial plan spills (memory is
        // a sixteenth of the input), the parallel sorts keep their runs
        // resident and spill nothing — exactly what the parallel cost
        // functions promised at planning time.
        assert!(s_stats.rows_spilled() > 0);
        assert_eq!(p_stats.rows_spilled(), 0);
        assert_eq!(parallel_plan.cost.spill_rows, 0.0, "{parallel_plan}");
        assert!(serial_plan.cost.spill_rows > 0.0, "{serial_plan}");
        // Both lowerings respect the N × K column-comparison regime on
        // the sort inputs (8000 rows, 1 key column, plus merge slack).
        assert!(p_stats.col_value_cmps() <= s_stats.col_value_cmps() * 2);
    }

    #[test]
    fn auto_preference_picks_sort_when_memory_is_scarce() {
        // Figure 6's regime: memory a tenth of the input, mostly distinct
        // rows, so the hash plan spills (much of it twice) while the sort
        // plan spills each row at most once.  The cost model must see it.
        let n = 4000;
        let (t1, t2) = (table(n, 3000, 7), table(n, 3000, 8));
        let cat = catalog_unsorted(t1, t2);
        let cfg = PlannerConfig::default().with_memory_rows(n / 10);
        let plan = plan_intersect(&cat, cfg).expect("plans");
        assert!(
            plan.uses_sort_based_ops() && !plan.uses_hash_based_ops(),
            "expected the sort-based plan under spill pressure:\n{plan}"
        );
    }
}
