//! Lowering physical plans onto the operator library and running them.
//!
//! The executor walks a [`PhysicalPlan`] bottom-up, building real
//! operator pipelines: coded paths become [`OvcStream`] stacks over
//! `ovc-exec`/`ovc-sort` operators, hash paths call the `ovc-baseline`
//! algorithms on materialized rows, and **exchange sandwiches** run on
//! real threads — [`PhysOp::Exchange`] to a hash layout lowers onto the
//! threaded splitting shuffle (`split_threaded`); a partitioned
//! [`PhysOp::MergeJoinOvc`] joins partition pairs on worker threads
//! (`merge_join_partitions`), a partitioned [`PhysOp::GroupOvc`] groups
//! partition-wise (`group_partitions`, hash on the full group key), a
//! partitioned [`PhysOp::SetOpMerge`] runs one set-operation worker per
//! partition pair (`set_op_partitions`, hash on the whole row); and the
//! gathering exchange merges the partition streams back with the
//! threaded tree-of-losers (`merge_threaded`).  The boundaries between the three worlds
//! (stream / rows / partitions) are explicit in the plan, so the
//! executor never guesses.
//!
//! [`ExecOptions::verify_trusted`] turns every [`PhysOp::TrustSorted`]
//! marker — an *elided sort* — into a checked assertion: the stream the
//! planner trusted is drained and audited with
//! [`ovc_core::derive::assert_codes_exact_spec`] against the stream's
//! own [`SortSpec`] before flowing on.  The planner property tests run
//! with this enabled, which is what "every elided sort is justified"
//! means operationally.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ovc_core::ctx::{self, ExecError, QueryCtx};
use ovc_core::derive::{assert_codes_exact_spec, derive_codes_spec_counted};
use ovc_core::metrics::ProfileNode;
use ovc_core::{
    CodedBatch, Ovc, OvcRow, OvcStream, Row, SortSpec, Stats, StatsSnapshot, VecStream,
};
use ovc_exec::exchange::partition;
use ovc_exec::plans::in_sort_distinct;
use ovc_exec::{
    group_partitions, merge_join_partitions, merge_threaded_spec_gauged, set_op_partitions,
    split_threaded_gauged, Dedup, Filter as FilterOp, GroupAggregate, MergeJoin,
    Project as ProjectOp, SetOperation, DEFAULT_CHANNEL_CAPACITY,
};
use ovc_sort::{
    external_sort, external_sort_spec, external_sort_spec_resilient, MemoryRunStorage, Run,
    RunStorage, SortConfig,
};

use crate::catalog::Catalog;
use crate::physical::{Partitioning, PhysOp, PhysicalPlan};

/// Executor knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Audit every elided sort: drain each trusted stream and panic
    /// unless its codes are exact under its spec (test harness for the
    /// planner).
    pub verify_trusted: bool,
    /// Run the plan on the batched executor
    /// ([`crate::batch_exec`]) with this many rows per [`ovc_core::FlatRows`]
    /// batch: operators pass flat batches instead of boxed rows, and
    /// exchanges forward batches through their channels instead of
    /// materializing whole inputs at split/merge boundaries.  A plan
    /// node's own stamped batch size ([`PhysOp::Exchange`]) takes
    /// precedence on its exchange edges.  `None` runs the row-at-a-time
    /// executor.  Rows, codes, and [`Stats`] totals are byte-identical
    /// either way (`tests/batch_pipeline_properties.rs`).
    pub batch_size: Option<usize>,
}

/// What a (sub)plan produced: a coded sorted stream, bare rows, or — in
/// the middle of an exchange sandwich — hash partitions of a coded
/// stream.
pub enum Output {
    /// Sorted stream carrying exact offset-value codes.
    Stream(Box<dyn OvcStream + Send>),
    /// Materialized rows in arbitrary order (hash-side operators).
    Rows(Vec<Row>),
    /// Hash-partitioned coded batches (between a splitting
    /// [`PhysOp::Exchange`] and the gathering one); each batch is sorted
    /// and exactly coded on its own.
    Partitions(Vec<CodedBatch>),
}

impl Output {
    /// Materialize as rows, dropping codes if present.
    pub fn into_rows(self) -> Vec<Row> {
        match self {
            Output::Stream(s) => s.map(|r| r.row).collect(),
            Output::Rows(rows) => rows,
            Output::Partitions(_) => {
                panic!("plan output is partitioned; gather it with an Exchange to single")
            }
        }
    }

    /// Materialize as coded rows; panics if this output is unordered
    /// (callers decide via the plan's properties, not by trial).
    pub fn into_coded(self) -> Vec<OvcRow> {
        match self {
            Output::Stream(s) => s.collect(),
            Output::Rows(_) => panic!("plan output is unordered; no codes to collect"),
            Output::Partitions(_) => {
                panic!("plan output is partitioned; gather it with an Exchange to single")
            }
        }
    }

    /// The coded stream; panics if this output is unordered.
    pub fn into_stream(self) -> Box<dyn OvcStream + Send> {
        match self {
            Output::Stream(s) => s,
            Output::Rows(_) => panic!("plan output is unordered; not a coded stream"),
            Output::Partitions(_) => {
                panic!("plan output is partitioned; gather it with an Exchange to single")
            }
        }
    }

    /// The hash partitions; panics unless this output sits between a
    /// splitting and a gathering exchange.
    pub fn into_partitions(self) -> Vec<CodedBatch> {
        match self {
            Output::Partitions(p) => p,
            _ => panic!("plan output is not partitioned"),
        }
    }

    /// Is this a coded stream?
    pub fn is_stream(&self) -> bool {
        matches!(self, Output::Stream(_))
    }
}

/// Run a physical plan against a catalog, accounting into `stats`.
///
/// Panics if the plan references tables missing from `catalog` or if its
/// structure violates operator contracts — both are planner bugs, not
/// runtime conditions, so they fail loudly.
pub fn execute(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Arc<Stats>,
    options: &ExecOptions,
) -> Output {
    if options.batch_size.is_some() {
        return crate::batch_exec::execute_batched(plan, catalog, stats, options, None);
    }
    let cx = Cx {
        catalog,
        stats,
        options,
        ctx: None,
    };
    cx.run(plan, None)
}

/// As [`execute`], but fault-tolerant: run the plan under a
/// [`QueryCtx`] and return a typed [`ExecError`] instead of unwinding.
///
/// The context is checked at every operator boundary (each lowered
/// stream re-checks every 256 rows), spills charge the context's
/// budget, serial sorts take the re-sort-from-source retry path on
/// spill faults, and the root is drained *inside* the containment
/// boundary so worker panics, poisoned exchange channels, cancellation,
/// deadline expiry, and spill corruption all surface here as `Err`.
/// On success the output is fully materialized — rows, codes, and
/// [`Stats`] totals byte-identical to [`execute`] of the same plan.
pub fn execute_ctx(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Arc<Stats>,
    options: &ExecOptions,
    qctx: &QueryCtx,
) -> Result<Output, ExecError> {
    qctx.check()?;
    ctx::contain(|| {
        let out = if options.batch_size.is_some() {
            crate::batch_exec::execute_batched(plan, catalog, stats, options, None)
        } else {
            let cx = Cx {
                catalog,
                stats,
                options,
                ctx: Some(qctx),
            };
            cx.run(plan, None)
        };
        materialize_checked(out, qctx)
    })
}

/// As [`execute_profiled`], but fault-tolerant (see [`execute_ctx`]).
/// The profile tree is returned even though the output is already
/// materialized: streaming adapters have flushed by the time this
/// returns, so [`ProfileNode::snapshot`] is immediately meaningful.
pub fn execute_ctx_profiled(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Arc<Stats>,
    options: &ExecOptions,
    qctx: &QueryCtx,
) -> Result<(Output, Arc<ProfileNode>), ExecError> {
    qctx.check()?;
    let root = crate::profile::build_profile(plan);
    let out = ctx::contain(|| {
        let out = if options.batch_size.is_some() {
            crate::batch_exec::execute_batched(plan, catalog, stats, options, Some(&root))
        } else {
            let cx = Cx {
                catalog,
                stats,
                options,
                ctx: Some(qctx),
            };
            cx.run(plan, Some(&root))
        };
        materialize_checked(out, qctx)
    })?;
    Ok((out, root))
}

/// Drain a root stream eagerly under periodic context checks so that
/// every late failure (a poison frame deep in an exchange, a deadline
/// crossed mid-drain) is raised while still inside [`ctx::contain`].
/// Already-materialized outputs get a single closing check.
fn materialize_checked(out: Output, qctx: &QueryCtx) -> Output {
    match out {
        Output::Stream(mut s) => {
            let spec = s.sort_spec();
            let mut coded = Vec::new();
            loop {
                qctx.check_or_propagate();
                let mut chunk = 0;
                for row in s.by_ref() {
                    coded.push(row);
                    chunk += 1;
                    if chunk == CHECK_INTERVAL {
                        break;
                    }
                }
                if chunk < CHECK_INTERVAL {
                    break;
                }
            }
            drop(s);
            Output::Stream(Box::new(VecStream::from_coded_spec(coded, spec)))
        }
        other => {
            qctx.check_or_propagate();
            other
        }
    }
}

/// As [`execute`], but with per-operator profiling: every lowered
/// operator reports rows, wall time, and counter deltas into a
/// [`ProfileNode`] tree mirroring the plan's shape, and threaded
/// exchanges report per-channel wait/occupancy gauges.
///
/// The returned stream (when the root is ordered) is lazily profiled:
/// drain it fully, then take [`ProfileNode::snapshot`] — streaming
/// adapters flush their tallies when dropped.  Profiling only observes:
/// rows, codes, and the [`Stats`] totals are byte-identical to an
/// unprofiled [`execute`] of the same plan.
pub fn execute_profiled(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Arc<Stats>,
    options: &ExecOptions,
) -> (Output, Arc<ProfileNode>) {
    let root = crate::profile::build_profile(plan);
    if options.batch_size.is_some() {
        let out = crate::batch_exec::execute_batched(plan, catalog, stats, options, Some(&root));
        return (out, root);
    }
    let cx = Cx {
        catalog,
        stats,
        options,
        ctx: None,
    };
    let out = cx.run(plan, Some(&root));
    (out, root)
}

/// As [`execute`], but demand a coded stream (the plan root must be
/// ordered; the planner's `Sort`/`TopK` roots and all merge-side plans
/// are).
pub fn execute_stream(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Arc<Stats>,
    options: &ExecOptions,
) -> Box<dyn OvcStream + Send> {
    execute(plan, catalog, stats, options).into_stream()
}

/// Rows drained between two context checks on a guarded stream.
const CHECK_INTERVAL: usize = 256;

struct Cx<'a> {
    catalog: &'a Catalog,
    stats: &'a Arc<Stats>,
    options: &'a ExecOptions,
    /// Present only under [`execute_ctx`]: operators check it at their
    /// boundaries and spills charge its budget.  `None` costs nothing.
    ctx: Option<&'a QueryCtx>,
}

/// The profile node for child `i` of a profiled node (the profile tree
/// mirrors the plan tree child-for-child, by construction).
fn child(prof: Option<&Arc<ProfileNode>>, i: usize) -> Option<&Arc<ProfileNode>> {
    prof.map(|n| &n.children[i])
}

impl Cx<'_> {
    fn table(&self, name: &str) -> &crate::catalog::Table {
        self.catalog
            .get(name)
            .unwrap_or_else(|| panic!("plan references unknown table {name}"))
    }

    /// Lower and (when profiled) instrument one plan node.
    ///
    /// With `prof == None` this is exactly the unprofiled executor: no
    /// clock reads, no snapshots, no adapters.  With a node, the eager
    /// part of lowering (materializing sorts, threaded exchanges, …) is
    /// timed around [`Cx::lower`], and stream outputs are wrapped in a
    /// [`ProfiledStream`] that meters every subsequent `next()`.  Both
    /// windows are disjoint in time, so a node's total is eager work +
    /// streamed work, inclusive of its subtree (children run inside one
    /// window or the other).
    fn run(&self, plan: &PhysicalPlan, prof: Option<&Arc<ProfileNode>>) -> Output {
        let Some(node) = prof else {
            return self.guard(self.lower(plan, None));
        };
        let before = self.stats.snapshot();
        let start = Instant::now();
        let out = self.lower(plan, prof);
        node.add_wall(start.elapsed());
        node.absorb_stats(&self.stats.snapshot().since(&before));
        let out = match out {
            Output::Stream(inner) => {
                let spec = inner.sort_spec();
                Output::Stream(Box::new(ProfiledStream {
                    inner,
                    spec,
                    node: Arc::clone(node),
                    stats: Arc::clone(self.stats),
                    rows: 0,
                    wall: Duration::ZERO,
                    delta: StatsSnapshot::default(),
                }))
            }
            Output::Rows(rows) => {
                node.add_rows_out(rows.len() as u64);
                Output::Rows(rows)
            }
            Output::Partitions(parts) => {
                node.add_batches(parts.len() as u64);
                node.add_rows_out(parts.iter().map(|b| b.len() as u64).sum());
                Output::Partitions(parts)
            }
        };
        self.guard(out)
    }

    /// Under a [`QueryCtx`], every operator boundary is a cancellation
    /// point: materialized outputs get one check, stream outputs are
    /// wrapped so the check repeats every [`CHECK_INTERVAL`] rows of the
    /// drain.  Without a context this is the identity — no wrapper, no
    /// atomic loads, byte-identical profiling windows.
    fn guard(&self, out: Output) -> Output {
        let Some(qctx) = self.ctx else { return out };
        qctx.check_or_propagate();
        match out {
            Output::Stream(inner) => {
                let spec = inner.sort_spec();
                Output::Stream(Box::new(CheckStream {
                    inner,
                    spec,
                    ctx: qctx.clone(),
                    tick: 0,
                }))
            }
            other => other,
        }
    }

    fn lower(&self, plan: &PhysicalPlan, prof: Option<&Arc<ProfileNode>>) -> Output {
        match &plan.op {
            PhysOp::ScanRows { table } => Output::Rows(self.table(table).rows().to_vec()),
            PhysOp::ScanCoded { table } => {
                let t = self.table(table);
                let coded = t
                    .coded()
                    .unwrap_or_else(|| panic!("table {table} is not stored sorted"))
                    .to_vec();
                Output::Stream(Box::new(VecStream::from_coded_spec(
                    coded,
                    t.sort_spec().clone(),
                )))
            }
            PhysOp::SortOvc {
                input,
                spec,
                memory_rows,
                fan_in,
                dop,
            } => {
                let rows = self.run(input, child(prof, 0)).into_rows();
                if *dop > 1 {
                    // Parallel run generation over row-range slices: rows
                    // and codes are byte-identical to the serial sort
                    // (tests/parallel_properties.rs holds it to that).
                    // The planner stamps dop > 1 onto leading-prefix,
                    // non-normalized specs; mixed directions take the
                    // spec-aware lowering.
                    debug_assert!(spec.is_prefix() && !spec.normalized());
                    if spec.is_asc_prefix() {
                        Output::Stream(Box::new(ovc_sort::parallel::parallel_sort(
                            rows,
                            spec.len(),
                            *dop,
                            *memory_rows,
                            *fan_in,
                            self.stats,
                        )))
                    } else {
                        Output::Stream(Box::new(ovc_sort::parallel_sort_spec(
                            rows,
                            spec,
                            *dop,
                            *memory_rows,
                            *fan_in,
                            self.stats,
                        )))
                    }
                } else if let Some(qctx) = self.ctx {
                    // Fault-tolerant serial sort: spills run through the
                    // context (budget + cancellation at run boundaries)
                    // and a spill fault triggers the re-sort-from-source
                    // retry — rows and codes are byte-identical to the
                    // plain arms below because codes are a function of
                    // the output sequence alone (§3).
                    let mut storage = CtxStorage {
                        inner: MemoryRunStorage::new(Arc::clone(self.stats)),
                        ctx: qctx.clone(),
                    };
                    let cfg = SortConfig::new(spec.len(), *memory_rows).with_fan_in(*fan_in);
                    match external_sort_spec_resilient(rows, cfg, spec, &mut storage, self.stats) {
                        Ok(out) => Output::Stream(Box::new(out)),
                        Err(err) => ctx::propagate(err),
                    }
                } else if spec.is_asc_prefix() && !spec.normalized() {
                    let mut storage = MemoryRunStorage::new(Arc::clone(self.stats));
                    let cfg = SortConfig::new(spec.len(), *memory_rows).with_fan_in(*fan_in);
                    Output::Stream(Box::new(external_sort(rows, cfg, &mut storage, self.stats)))
                } else {
                    // Direction-aware (and/or normalized-key) external
                    // sort: same cascade, spec-driven comparisons.
                    let mut storage = MemoryRunStorage::new(Arc::clone(self.stats));
                    let cfg = SortConfig::new(spec.len(), *memory_rows).with_fan_in(*fan_in);
                    Output::Stream(Box::new(external_sort_spec(
                        rows,
                        cfg,
                        spec,
                        &mut storage,
                        self.stats,
                    )))
                }
            }
            PhysOp::TrustSorted { input, spec } => {
                let stream = self.run(input, child(prof, 0)).into_stream();
                if self.options.verify_trusted {
                    // Audit the elision: the stream the planner trusted
                    // must carry exact codes under its own spec (which
                    // implies the required prefix ordering).
                    let stream_spec = stream.sort_spec();
                    debug_assert!(stream_spec.satisfies(spec));
                    let coded: Vec<OvcRow> = stream.collect();
                    let pairs: Vec<(Row, Ovc)> =
                        coded.iter().map(|r| (r.row.clone(), r.code)).collect();
                    assert_codes_exact_spec(&pairs, &stream_spec);
                    Output::Stream(Box::new(VecStream::from_coded_spec(coded, stream_spec)))
                } else {
                    Output::Stream(stream)
                }
            }
            PhysOp::Reverse { input, spec } => {
                // Opposite-direction reuse: materialize, reverse, and
                // re-prime codes in one linear pass (priced by
                // cost::reverse).  The input is sorted on spec.reversed(),
                // so the reversed row sequence satisfies `spec` — only
                // the codes need re-deriving.
                let stream = self.run(input, child(prof, 0)).into_stream();
                debug_assert!(stream.sort_spec().satisfies(&spec.reversed()));
                let mut rows: Vec<Row> = stream.map(|r| r.row).collect();
                rows.reverse();
                let codes = derive_codes_spec_counted(&rows, spec, self.stats);
                let coded: Vec<OvcRow> = rows
                    .into_iter()
                    .zip(codes)
                    .map(|(row, code)| OvcRow::new(row, code))
                    .collect();
                Output::Stream(Box::new(VecStream::from_coded_spec(coded, spec.clone())))
            }
            PhysOp::InSortDistinct {
                input,
                spec,
                memory_rows,
                fan_in,
                dop,
            } => {
                // The planner only requests ascending full-width specs
                // for distinct semantics.
                debug_assert!(spec.is_asc_prefix());
                let key_len = spec.len();
                let rows = self.run(input, child(prof, 0)).into_rows();
                if *dop > 1 {
                    Output::Stream(Box::new(ovc_sort::parallel::parallel_sort_distinct(
                        rows,
                        key_len,
                        *dop,
                        *memory_rows,
                        *fan_in,
                        self.stats,
                    )))
                } else if let Some(qctx) = self.ctx {
                    // Context-checked spills (budget + cancellation at
                    // run boundaries); device faults surface as typed
                    // errors through the containment boundary.
                    let mut storage = CtxStorage {
                        inner: MemoryRunStorage::new(Arc::clone(self.stats)),
                        ctx: qctx.clone(),
                    };
                    Output::Stream(Box::new(in_sort_distinct(
                        rows,
                        key_len,
                        *memory_rows,
                        *fan_in,
                        &mut storage,
                        self.stats,
                    )))
                } else {
                    let mut storage = MemoryRunStorage::new(Arc::clone(self.stats));
                    Output::Stream(Box::new(in_sort_distinct(
                        rows,
                        key_len,
                        *memory_rows,
                        *fan_in,
                        &mut storage,
                        self.stats,
                    )))
                }
            }
            PhysOp::DedupCodes { input } => {
                let stream = self.run(input, child(prof, 0)).into_stream();
                Output::Stream(Box::new(Dedup::new(stream)))
            }
            PhysOp::HashDistinct { input, memory_rows } => {
                let rows = self.run(input, child(prof, 0)).into_rows();
                Output::Rows(ovc_baseline::hash_aggregate_distinct(
                    rows,
                    *memory_rows,
                    self.stats,
                ))
            }
            PhysOp::Filter { input, pred } => match self.run(input, child(prof, 0)) {
                Output::Stream(s) => {
                    let p = pred.clone();
                    Output::Stream(Box::new(FilterOp::new(
                        s,
                        move |row: &Row| p.eval(row),
                        Arc::clone(self.stats),
                    )))
                }
                Output::Rows(rows) => {
                    Output::Rows(rows.into_iter().filter(|r| pred.eval(r)).collect())
                }
                Output::Partitions(_) => panic!("filter over partitions is not planned"),
            },
            PhysOp::Project {
                input,
                cols,
                surviving_key,
            } => match self.run(input, child(prof, 0)) {
                Output::Stream(s) => {
                    let cols = cols.clone();
                    Output::Stream(Box::new(ProjectOp::new(
                        s,
                        *surviving_key,
                        move |row: &Row| row.project(&cols),
                    )))
                }
                Output::Rows(rows) => Output::Rows(rows.iter().map(|r| r.project(cols)).collect()),
                Output::Partitions(_) => panic!("projection over partitions is not planned"),
            },
            PhysOp::GroupOvc {
                input,
                group_len,
                aggs,
            } => match self.run(input, child(prof, 0)) {
                // Partition-parallel: the input arrives hash-partitioned
                // on the full group key from an explicit Exchange child;
                // every group is local to one partition, so each worker
                // completes its groups and the gathering exchange above
                // reproduces the serial rows and codes.
                Output::Partitions(parts) => Output::Partitions(group_partitions(
                    parts,
                    *group_len,
                    aggs.clone(),
                    self.stats,
                )),
                other => Output::Stream(Box::new(GroupAggregate::new(
                    other.into_stream(),
                    *group_len,
                    aggs.clone(),
                    Arc::clone(self.stats),
                ))),
            },
            PhysOp::MergeJoinOvc {
                left,
                right,
                join_len,
                join_type,
            } => {
                let (lw, rw) = (left.props.width, right.props.width);
                match (
                    self.run(left, child(prof, 0)),
                    self.run(right, child(prof, 1)),
                ) {
                    // Partition-parallel: both inputs arrive hash-co-
                    // partitioned from explicit Exchange children; join
                    // each partition pair on its own worker thread.
                    (Output::Partitions(lp), Output::Partitions(rp)) => Output::Partitions(
                        merge_join_partitions(lp, rp, *join_len, *join_type, lw, rw, self.stats),
                    ),
                    (Output::Stream(l), Output::Stream(r)) => Output::Stream(Box::new(
                        MergeJoin::new(l, r, *join_len, *join_type, lw, rw, Arc::clone(self.stats)),
                    )),
                    _ => panic!("merge join inputs must both be streams or both partitioned"),
                }
            }
            PhysOp::GraceHashJoin {
                left,
                right,
                join_len,
                memory_rows,
            } => {
                let l = self.run(left, child(prof, 0)).into_rows();
                let r = self.run(right, child(prof, 1)).into_rows();
                Output::Rows(ovc_baseline::grace_hash_join(
                    l,
                    r,
                    *join_len,
                    *memory_rows,
                    self.stats,
                ))
            }
            PhysOp::SetOpMerge { left, right, op } => {
                match (
                    self.run(left, child(prof, 0)),
                    self.run(right, child(prof, 1)),
                ) {
                    // Partition-parallel: both inputs hash-co-partitioned
                    // on the full row by explicit Exchange children; run
                    // one set-operation worker per partition pair.
                    (Output::Partitions(lp), Output::Partitions(rp)) => {
                        Output::Partitions(set_op_partitions(lp, rp, *op, self.stats))
                    }
                    (Output::Stream(l), Output::Stream(r)) => Output::Stream(Box::new(
                        SetOperation::new(l, r, *op, Arc::clone(self.stats)),
                    )),
                    _ => panic!("set operation inputs must both be streams or both partitioned"),
                }
            }
            PhysOp::TopK { input, k } => {
                let stream = self.run(input, child(prof, 0)).into_stream();
                Output::Stream(Box::new(TakeStream {
                    spec: stream.sort_spec(),
                    inner: stream,
                    left: *k,
                }))
            }
            PhysOp::Exchange { input, to, .. } => match to {
                // Splitting shuffle: one producer thread routes rows by
                // hash of the partitioning columns, repairing codes with
                // one accumulator per partition; consumers drain
                // concurrently (collect_all fans out — sequential
                // draining against bounded channels deadlocks, §4.10).
                Partitioning::Hash { cols, parts } => {
                    let stream = self.run(input, child(prof, 0)).into_stream();
                    // Flat-backed batch: the materialized stream lands in
                    // one contiguous buffer and crosses the producer
                    // thread without per-row pointer chasing.
                    let batch = CodedBatch::from_stream_flat(stream);
                    let split = split_threaded_gauged(
                        batch,
                        *parts,
                        partition::by_cols_hash(cols.clone(), *parts),
                        DEFAULT_CHANNEL_CAPACITY,
                        prof.and_then(|n| n.gauges()),
                    );
                    Output::Partitions(split.collect_all())
                }
                // Gathering shuffle: feeder threads push each partition
                // into a bounded channel; the calling thread consumes
                // the order-preserving tree-of-losers merge under the
                // partitions' actual ordering contract.
                Partitioning::Single => {
                    let parts = self.run(input, child(prof, 0)).into_partitions();
                    let spec = parts
                        .first()
                        .map(|b| b.sort_spec().clone())
                        .unwrap_or_else(|| input.props.order.clone());
                    Output::Stream(Box::new(merge_threaded_spec_gauged(
                        parts,
                        spec,
                        DEFAULT_CHANNEL_CAPACITY,
                        self.stats,
                        prof.and_then(|n| n.gauges()),
                    )))
                }
                Partitioning::Any => panic!("Exchange to `any` is not a layout"),
            },
            PhysOp::Repartition { input, cols, parts } => {
                let batches = self.run(input, child(prof, 0)).into_partitions();
                let key_len = batches
                    .first()
                    .map(|b| b.key_len())
                    .unwrap_or_else(|| input.props.order.len());
                let cols = cols.clone();
                Output::Partitions(ovc_exec::parallel::repartition_threaded(
                    batches,
                    key_len,
                    *parts,
                    || partition::by_cols_hash(cols.clone(), *parts),
                    DEFAULT_CHANNEL_CAPACITY,
                    self.stats,
                ))
            }
        }
    }
}

/// Spill device wrapper that routes every run transfer through the
/// query context: cancellation and deadline are re-checked at each run
/// boundary (runs are the natural quantum of sort I/O) and written
/// bytes charge the context's spill budget before touching the device.
struct CtxStorage<S: RunStorage> {
    inner: S,
    ctx: QueryCtx,
}

impl<S: RunStorage> RunStorage for CtxStorage<S> {
    fn write_run(&mut self, run: Run) -> Result<usize, ExecError> {
        self.ctx.check()?;
        self.ctx.charge_spill(run.spill_bytes())?;
        self.inner.write_run(run)
    }

    fn read_run(&mut self, handle: usize) -> Result<Run, ExecError> {
        self.ctx.check()?;
        self.inner.read_run(handle)
    }

    fn stored_runs(&self) -> usize {
        self.inner.stored_runs()
    }
}

/// Cancellation-point adapter: re-checks the query context every
/// [`CHECK_INTERVAL`] rows so a long pipelined drain notices
/// cancellation or a crossed deadline without per-row overhead.  Rows
/// and codes pass through untouched.
struct CheckStream {
    inner: Box<dyn OvcStream + Send>,
    spec: SortSpec,
    ctx: QueryCtx,
    tick: usize,
}

impl Iterator for CheckStream {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.tick += 1;
        if self.tick >= CHECK_INTERVAL {
            self.tick = 0;
            self.ctx.check_or_propagate();
        }
        self.inner.next()
    }
}

impl OvcStream for CheckStream {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// First-`k` adapter: a prefix of a coded stream stays exactly coded.
struct TakeStream {
    inner: Box<dyn OvcStream + Send>,
    spec: SortSpec,
    left: usize,
}

impl Iterator for TakeStream {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.inner.next()
    }
}

impl OvcStream for TakeStream {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Metering adapter around one operator's output stream: times every
/// `next()` and attributes the [`Stats`] counter delta observed across
/// it to the operator's [`ProfileNode`].
///
/// Rows and codes pass through untouched, and the shared [`Stats`] is
/// only *read* (two snapshots per `next()`), so profiled output is
/// byte-identical to unprofiled.  Tallies accumulate in plain fields and
/// flush to the node's atomics on drop — one flush per stream, covering
/// early termination (`TopK` abandoning its input) as well as full
/// drains.  Nested adapters nest their windows, which is exactly the
/// inclusive accounting convention of `EXPLAIN ANALYZE`.
struct ProfiledStream {
    inner: Box<dyn OvcStream + Send>,
    spec: SortSpec,
    node: Arc<ProfileNode>,
    stats: Arc<Stats>,
    rows: u64,
    wall: Duration,
    delta: StatsSnapshot,
}

impl Iterator for ProfiledStream {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        let before = self.stats.snapshot();
        let start = Instant::now();
        let item = self.inner.next();
        self.wall += start.elapsed();
        self.delta.add(&self.stats.snapshot().since(&before));
        if item.is_some() {
            self.rows += 1;
        }
        item
    }
}

impl OvcStream for ProfiledStream {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

impl Drop for ProfiledStream {
    fn drop(&mut self) {
        self.node.add_rows_out(self.rows);
        self.node.add_wall(self.wall);
        self.node.absorb_stats(&self.delta);
    }
}
